//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Instead of the full serde data model and a proc-macro derive, this
//! shim serializes through an explicit [`Value`] tree: [`Serialize`]
//! lowers a type into a [`Value`], [`Deserialize`] reconstructs it. The
//! companion `serde_json` shim renders and parses `Value` as JSON.
//!
//! Structs opt in with [`impl_serde_struct!`]; transparent newtypes with
//! [`impl_serde_newtype!`]. Both produce impls equivalent to
//! `#[derive(Serialize, Deserialize)]` for the types this workspace
//! persists (maps, sequences, integers, strings, booleans).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A serialized value tree (the JSON data model, with exact integers).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized exactly).
    U64(u64),
    /// Signed integer (serialized exactly).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from anything displayable.
    pub fn msg(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::msg(concat!("out of range for ", stringify!($ty)))),
                    Value::I64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::msg(concat!("out of range for ", stringify!($ty)))),
                    other => Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::msg(concat!("out of range for ", stringify!($ty)))),
                    Value::U64(v) => <$ty>::try_from(*v)
                        .map_err(|_| Error::msg(concat!("out of range for ", stringify!($ty)))),
                    other => Err(Error::msg(format!(
                        "expected integer, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(v) => Ok(*v),
            Value::U64(v) => Ok(*v as f64),
            Value::I64(v) => Ok(*v as f64),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = <Vec<T>>::from_value(value)?;
        if items.len() != N {
            return Err(Error::msg(format!("expected array of length {N}, got {}", items.len())));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

/// Map keys must render to (and parse from) strings — the JSON object
/// key model. Implemented for `String` and the unsigned integers.
pub trait MapKey: Ord {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key.
    fn from_key(key: &str) -> Result<Self, Error>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_uint {
    ($($ty:ty),*) => {$(
        impl MapKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::msg(format!("bad integer key {key:?}")))
            }
        }
    )*};
}

impl_map_key_uint!(u8, u16, u32, u64, usize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(Error::msg(format!("expected map, found {other:?}"))),
        }
    }
}

/// Implements [`Serialize`]/[`Deserialize`] for a struct with named
/// fields, equivalent to `#[derive(Serialize, Deserialize)]`.
///
/// ```
/// #[derive(Default, PartialEq, Debug)]
/// struct Counts { hits: u64, label: String }
/// serde::impl_serde_struct!(Counts { hits, label });
///
/// let v = serde::Serialize::to_value(&Counts { hits: 3, label: "x".into() });
/// let back: Counts = serde::Deserialize::from_value(&v).unwrap();
/// assert_eq!(back, Counts { hits: 3, label: "x".into() });
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Map(vec![
                    $( (stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field)) ),+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                Ok($ty {
                    $(
                        $field: $crate::Deserialize::from_value(
                            value.get(stringify!($field)).ok_or_else(|| {
                                $crate::Error::msg(concat!(
                                    "missing field `", stringify!($field), "` in ", stringify!($ty)
                                ))
                            })?,
                        )?,
                    )+
                })
            }
        }
    };
}

/// Implements transparent [`Serialize`]/[`Deserialize`] for a tuple
/// newtype (`struct Id(pub u32)`), matching serde's newtype handling.
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Id(pub u32);
/// serde::impl_serde_newtype!(Id);
///
/// let v = serde::Serialize::to_value(&Id(7));
/// assert_eq!(v, serde::Value::U64(7));
/// let back: Id = serde::Deserialize::from_value(&v).unwrap();
/// assert_eq!(back, Id(7));
/// ```
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                Ok($ty($crate::Deserialize::from_value(value)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Default)]
    struct Inner {
        a: u32,
        b: bool,
    }
    impl_serde_struct!(Inner { a, b });

    #[derive(Debug, PartialEq, Default)]
    struct Outer {
        inner: Inner,
        tags: Vec<String>,
        by_id: BTreeMap<u32, u64>,
    }
    impl_serde_struct!(Outer { inner, tags, by_id });

    #[test]
    fn struct_round_trip() {
        let outer = Outer {
            inner: Inner { a: 7, b: true },
            tags: vec!["x".into(), "y".into()],
            by_id: [(3u32, 30u64), (1, 10)].into_iter().collect(),
        };
        let v = outer.to_value();
        assert_eq!(v.get("inner").and_then(|i| i.get("a")), Some(&Value::U64(7)));
        let back = Outer::from_value(&v).unwrap();
        assert_eq!(back, outer);
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        let err = Inner::from_value(&v).unwrap_err();
        assert!(err.0.contains("missing field `b`"), "{err}");
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(<Option<u64>>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(<Option<u64>>::from_value(&Value::U64(4)).unwrap(), Some(4));
    }

    #[test]
    fn integer_range_checked() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(u8::from_value(&Value::U64(255)).unwrap(), 255);
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
    }
}
