//! Offline shim for the subset of `crossbeam::channel` this workspace
//! uses: multi-producer multi-consumer channels, [`channel::unbounded`]
//! and [`channel::bounded`], with blocking `send`, non-blocking
//! `try_send`/`try_recv`, draining `try_iter`, and `recv_timeout`.
//! Backed by a `Mutex<VecDeque>` + `Condvar` pair — not as fast as real
//! crossbeam, but semantically equivalent for the cluster runtime's
//! message rates.

#![forbid(unsafe_code)]

/// Channel flavours and endpoint types.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message is pushed or all senders drop.
        not_empty: Condvar,
        /// Signalled when a message is popped or all receivers drop.
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is at capacity.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = self
                            .shared
                            .not_full
                            .wait(queue)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Sends without blocking; fails if full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match queue.pop_front() {
                Some(msg) => {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    Ok(msg)
                }
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receives, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue =
                self.shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Drains every message currently available, without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Iterator over currently-available messages (see
    /// [`Receiver::try_iter`]).
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel holding at most `cap` messages; `send`
    /// blocks while full (backpressure).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn bounded_send_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the 1 is consumed
                "sent"
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(2));
            assert_eq!(h.join().unwrap(), "sent");
        }

        #[test]
        fn disconnect_propagates() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let start = Instant::now();
            assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Err(RecvTimeoutError::Timeout));
            assert!(start.elapsed() >= Duration::from_millis(25));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded();
            let mut handles = Vec::new();
            for t in 0..4 {
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            for h in handles {
                h.join().unwrap();
            }
            let mut got: Vec<i32> = rx.try_iter().collect();
            got.sort_unstable();
            assert_eq!(got.len(), 400);
            assert_eq!(got, (0..400).collect::<Vec<_>>());
        }
    }
}
