//! Offline shim for the subset of `parking_lot` this workspace uses:
//! [`Mutex`] and [`RwLock`] with panic-free, non-poisoning `lock()`
//! signatures, backed by `std::sync`. Poisoned locks are recovered
//! transparently (parking_lot has no poisoning, so recovery preserves
//! its semantics).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock — the poison is cleared, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(*l.read(), "ab");
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
