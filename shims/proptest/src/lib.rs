//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: every `proptest!` test derives its RNG seed from
//!   the test's name, so runs are reproducible across machines and
//!   invocations (no persistence files needed).
//! * **No shrinking**: a failing case panics with the generated inputs
//!   printed; minimize by hand or pin the case as a named test (see
//!   `tests/proptest_protocols.rs` for the pattern).
//! * Strategies implemented: ranges over the primitive integers,
//!   [`Just`], `prop_map`, [`any`] for `bool`/integers,
//!   [`collection::vec`], [`sample::subsequence`], weighted
//!   [`prop_oneof!`].

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// The per-test RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds a deterministic RNG from a test identifier.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Uniform draw from a half-open `u64` range (used by strategies).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.0.gen_range(0..bound)
        }
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.gen_u64()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}

/// A value generator. Unlike real proptest there is no shrink tree —
/// `Value` is the generated type itself.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy, erasing its concrete type (used by
    /// [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = rng.bits() as u128;
                self.start.wrapping_add(((draw * span) >> 64) as $ty)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = rng.bits() as u128;
                lo.wrapping_add(((draw * span) >> 64) as $ty)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Generates any value of a primitive type uniformly.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

macro_rules! impl_any_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.bits() as $ty
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size specification for [`vec()`](vec()): a fixed length or a half-open
    /// range of lengths.
    pub trait IntoSizeRange {
        /// Lower and upper (exclusive) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// `vec(element, len)` — a `Vec` of `len` (or a length drawn from a
    /// range) elements.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty vec size range");
        VecStrategy { element, min, max_exclusive }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Generates subsequences of a fixed source vector.
    pub struct Subsequence<T: Clone> {
        source: Vec<T>,
        count: usize,
    }

    /// `subsequence(source, count)` — a uniformly chosen subsequence of
    /// exactly `count` elements, in source order.
    pub fn subsequence<T: Clone>(source: Vec<T>, count: usize) -> Subsequence<T> {
        assert!(count <= source.len(), "subsequence longer than source");
        Subsequence { source, count }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            // Floyd's algorithm for a uniform k-subset, emitted in order.
            let n = self.source.len();
            let mut chosen = vec![false; n];
            for j in (n - self.count)..n {
                let t = rng.below(j as u64 + 1) as usize;
                if chosen[t] {
                    chosen[j] = true;
                } else {
                    chosen[t] = true;
                }
            }
            self.source.iter().zip(&chosen).filter(|(_, &c)| c).map(|(v, _)| v.clone()).collect()
        }
    }
}

/// A weighted union of boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof: all weights zero");
        Union { variants, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.below(self.total_weight);
        for (weight, strategy) in &self.variants {
            let weight = u64::from(*weight);
            if draw < weight {
                return strategy.generate(rng);
            }
            draw -= weight;
        }
        unreachable!("weights changed mid-draw")
    }
}

/// Runner configuration; only `cases` is consulted.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Weighted choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a `proptest!` body (panics with the message; the
/// harness prints the generated inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test that runs `config.cases` deterministic cases.
/// On failure the generated inputs are printed before the panic
/// propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs:",
                        stringify!($name), case + 1, config.cases,
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        let s = 5u64..10;
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let mut rng = TestRng::deterministic("weights");
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let trues = (0..1000).filter(|_| s.generate(&mut rng)).count();
        assert!((800..1000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::deterministic("vec");
        let fixed = crate::collection::vec(0u8..3, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = crate::collection::vec(any::<bool>(), 2..5);
        for _ in 0..50 {
            let len = ranged.generate(&mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    #[test]
    fn subsequence_is_ordered_subset() {
        let mut rng = TestRng::deterministic("subseq");
        let source = vec![0, 1, 2, 3, 4, 5, 6, 7, 8];
        let s = crate::sample::subsequence(source.clone(), 3);
        for _ in 0..100 {
            let sub = s.generate(&mut rng);
            assert_eq!(sub.len(), 3);
            assert!(sub.windows(2).all(|w| w[0] < w[1]), "ordered: {sub:?}");
            assert!(sub.iter().all(|v| source.contains(v)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut rng = TestRng::deterministic("det");
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_smoke(v in crate::collection::vec(0u32..50, 1..6), flag in any::<bool>()) {
            prop_assert!(v.len() < 6 && !v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 50));
            prop_assert_eq!(flag, flag);
        }
    }
}
