//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] over the serde
//! shim's [`serde::Value`] tree.

#![forbid(unsafe_code)]

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let text = format!("{v}");
        out.push_str(&text);
        // Keep the float/integer distinction through a round trip.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null"); // matches serde_json's lossy default
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(*v, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(v, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::msg("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        other => return Err(Error::msg(format!("bad escape {:?}", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error::msg(format!("integer out of range: {text}")));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::msg(format!("bad number {text:?}")))
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Default)]
    struct Stats {
        words: u64,
        tags: Vec<String>,
        per: BTreeMap<u32, u64>,
        ok: bool,
    }
    serde::impl_serde_struct!(Stats { words, tags, per, ok });

    #[test]
    fn round_trip_struct() {
        let s = Stats {
            words: 42,
            tags: vec!["bb/vetting".into(), "weak \"ba\"".into()],
            per: [(0u32, 5u64), (7, 9)].into_iter().collect(),
            ok: true,
        };
        let json = to_string(&s).unwrap();
        let back: Stats = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn escapes_and_unicode() {
        let s = "line\nbreak \"quoted\" π → δ".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn negative_and_large_integers() {
        let json = to_string(&(-42i64)).unwrap();
        assert_eq!(json, "-42");
        let v: i64 = from_str(&json).unwrap();
        assert_eq!(v, -42);
        let big = u64::MAX;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let s = Stats { words: 1, tags: vec!["t".into()], per: BTreeMap::new(), ok: false };
        let pretty = to_string_pretty(&s).unwrap();
        assert!(pretty.contains('\n'));
        let back: Stats = from_str(&pretty).unwrap();
        assert_eq!(back, s);
    }
}
