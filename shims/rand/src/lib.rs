//! Offline shim for the subset of the `rand` crate API this workspace
//! uses: [`rngs::StdRng`], [`Rng`], [`SeedableRng`], uniform ranges and
//! Bernoulli draws. Deterministic by construction — `StdRng` is a
//! xoshiro256** generator seeded via SplitMix64, so the same seed always
//! yields the same stream on every platform.
//!
//! Not cryptographically secure; suitable for simulation and fuzzing only.

#![forbid(unsafe_code)]

/// Low-level generator interface.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (via SplitMix64
    /// expansion, mirroring `rand`'s behaviour of deriving full state
    /// from the word).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used for seed expansion.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A type that can be sampled uniformly from a generator — the subset of
/// `rand::distributions::uniform` needed for `Rng::gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift rejection-free mapping is fine for
                // simulation use; bias is < 2^-64 per draw.
                let draw = rng.next_u64() as u128;
                low.wrapping_add(((draw * span) >> 64) as $ty)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = rng.next_u64() as u128;
                (low as i128 + ((draw * span) >> 64) as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        // 53 bits of precision, like rand's Bernoulli.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Returns a uniformly random `u64`.
    fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
