//! Offline shim for the subset of `criterion` this workspace uses:
//! [`Criterion::bench_function`], benchmark groups with
//! `bench_with_input`, [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] entry points.
//!
//! Timing model: each benchmark is warmed up briefly, then measured for a
//! fixed number of batches; median batch time is reported as ns/iter on
//! stdout. No statistics files, no HTML — just enough to keep the
//! workspace's benches runnable and their regressions eyeballable.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Measurement harness handed to benchmark closures.
pub struct Bencher {
    /// (batch_iters, per-batch durations) recorded by `iter`.
    samples: Vec<Duration>,
    iters_per_batch: u64,
}

impl Bencher {
    /// Times `routine`, recording batched samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for batches of ~10 ms.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let per_batch =
            (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_batch = per_batch;
        self.samples.clear();
        let batches = 12usize;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> u128 {
        if self.samples.is_empty() || self.iters_per_batch == 0 {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2] / u128::from(self.iters_per_batch)
    }
}

fn report(label: &str, bencher: &Bencher) {
    let ns = bencher.median_ns_per_iter();
    let human = if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    };
    println!("bench: {label:<50} {human}/iter");
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, mirroring criterion's display form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` against one input value.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_batch: 0 };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.label), &bencher);
        self
    }

    /// Benchmarks an unparameterized routine within the group.
    pub fn bench_function<R>(&mut self, name: impl fmt::Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_batch: 0 };
        routine(&mut bencher);
        report(&format!("{}/{name}", self.name), &bencher);
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::new(), iters_per_batch: 0 };
        routine(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }
}

/// Declares a benchmark group function list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        c.bench_function("shim/noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
