#!/usr/bin/env bash
# Full verification pipeline: format, build, lint, test, docs, experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --all -- --check

echo "== build =="
cargo build --workspace --all-targets --locked

echo "== clippy (incl. perf lints: redundant_clone, needless_collect) =="
cargo clippy --workspace --all-targets --locked -- \
  -D warnings -D clippy::perf \
  -D clippy::redundant_clone -D clippy::needless_collect

echo "== tests =="
cargo test --workspace --locked

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --locked

echo "== example smoke (pipelined replicated log) =="
cargo run --release --locked --example replicated_log

echo "== loopback TCP integration (meba-wire) =="
cargo test --locked --test cluster_integration -- tcp handshake

echo "== recovery chaos (crash-restart sweep, both runtimes) =="
cargo test --release --locked --test recovery_integration

echo "== example smoke (TCP cluster; includes one process killed and relaunched) =="
cargo run --release --locked --example tcp_cluster

echo "== large-n smoke (discrete-event backend: n = 65 f=0 and f=t, n = 129 and n = 4097 acceptance) =="
cargo test --release --locked -p meba-testkit --test large_n -- --include-ignored

echo "== reactor-mesh scale (real loopback sockets: n = 65 smoke, n = 101 acceptance; words vs DES, O(n) threads) =="
cargo test --release --locked -p meba-testkit --test tcp_scale -- --include-ignored

echo "== timing chaos (event-driven rounds: skew, mis-estimated delta, GST matrix) =="
cargo test --release --locked -p meba-testkit --test timing_chaos

echo "== example smoke (101-replica log on the discrete-event backend) =="
cargo run --release --locked --example large_n

echo "== service integration (admission control + crash-restart exactly-once) =="
cargo test --release --locked --test service_integration

echo "== example smoke (SMR service: 3 replicas + 2 client processes over loopback, one client killed and relaunched) =="
cargo run --release --locked --example smr_service

echo "== state-transfer churn (rolling restarts converge to the committed prefix; lying donor rejected) =="
cargo test --release --locked --test state_transfer

echo "== experiments (release) =="
cargo bench -p meba-bench

echo "All checks passed."
