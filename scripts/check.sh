#!/usr/bin/env bash
# Full verification pipeline: build, lint, test, docs, experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --all-targets

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== docs =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== experiments (release) =="
cargo bench -p meba-bench

echo "All checks passed."
