//! # meba — Make Every Word Count
//!
//! A production-quality Rust reproduction of *"Make Every Word Count:
//! Adaptive Byzantine Agreement with Fewer Words"* (Cohen, Keidar,
//! Spiegelman — PODC 2022): Byzantine Broadcast and weak Byzantine
//! Agreement with **adaptive** `O(n(f+1))` communication at optimal
//! resilience `n = 2t + 1`, plus a binary strong BA that is linear when
//! failure-free — together with every substrate they need (ideal
//! threshold signatures, a deterministic synchronous simulator, a
//! quadratic fallback BA, a Byzantine strategy library, and a threaded
//! real-time runtime).
//!
//! This crate re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `meba-core` | Algorithms 1–5: adaptive BB, adaptive weak BA, failure-free-linear strong BA |
//! | [`crypto`] | `meba-crypto` | SHA-256, HMAC, PKI, individual/threshold/aggregate signatures |
//! | [`sim`] | `meba-sim` | lockstep synchronous simulator with word accounting |
//! | [`fallback`] | `meba-fallback` | recursive quadratic strong BA, Dolev–Strong baseline |
//! | [`journal`] | `meba-journal` | crash-recovery write-ahead journal with CRC framing |
//! | [`adversary`] | `meba-adversary` | Byzantine strategies |
//! | [`smr`] | `meba-smr` | replicated log over repeated BB instances |
//! | [`service`] | `meba-service` | client front door: sessions, batching, admission control, reads |
//! | [`testkit`] | `meba-testkit` | fault-matrix harness for adversarial testing |
//! | [`engine`] | `meba-engine` | backend-agnostic round engine: transports, pacers, fates, discrete-event backend |
//! | [`net`] | `meba-net` | threaded wall-clock cluster runtime |
//! | [`wire`] | `meba-wire` | real TCP transport: canonical codec, handshake, byte accounting |
//!
//! # Quickstart
//!
//! Run adaptive Byzantine Broadcast among 7 simulated processes:
//!
//! ```
//! use meba::prelude::*;
//!
//! let n = 7;
//! let cfg = SystemConfig::new(n, 0)?;
//! let (pki, keys) = trusted_setup(n, 42);
//! let sender = ProcessId(0);
//!
//! let mut actors: Vec<Box<dyn AnyActor<Msg = _>>> = Vec::new();
//! for (i, key) in keys.into_iter().enumerate() {
//!     let id = ProcessId(i as u32);
//!     let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
//!     let bb = if id == sender {
//!         Bb::new_sender(cfg, id, key, pki.clone(), factory, 42u64)
//!     } else {
//!         Bb::new(cfg, id, key, pki.clone(), factory, sender)
//!     };
//!     actors.push(Box::new(LockstepAdapter::new(id, bb)));
//! }
//! let mut sim = SimBuilder::new(actors).build();
//! sim.run_until_done(1_000)?;
//!
//! // Every process decided the sender's value, in O(n) words (f = 0).
//! for i in 0..n as u32 {
//!     let actor: &LockstepAdapter<Bb<u64, RecursiveBaFactory>> =
//!         sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
//!     assert_eq!(actor.inner().output(), Some(Decision::Value(42)));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use meba_adversary as adversary;
pub use meba_core as core;
pub use meba_crypto as crypto;
pub use meba_engine as engine;
pub use meba_fallback as fallback;
pub use meba_journal as journal;
pub use meba_net as net;
pub use meba_service as service;
pub use meba_sim as sim;
pub use meba_smr as smr;
pub use meba_testkit as testkit;
pub use meba_wire as wire;

/// The most common imports for building and running the protocols.
pub mod prelude {
    pub use meba_core::{
        AlwaysValid, Bb, BbBaValue, BbMsg, BbValidity, Decision, EchoFallbackFactory,
        FallbackFactory, LockstepAdapter, RotatingStrongBa, StrongBa, StrongBaMsg, SubProtocol,
        SystemConfig, Validity, Value, WeakBa, WeakBaMsg,
    };
    pub use meba_crypto::{trusted_setup, Pki, ProcessId, SecretKey, WordCost};
    pub use meba_fallback::{DolevStrongBb, RecursiveBa, RecursiveBaFactory};
    pub use meba_service::{
        Batch, BatchPolicy, Op, ServiceClient, ServiceConfig, ServiceGateway, ServicePort,
        ServiceReplica,
    };
    pub use meba_sim::{
        Actor, AnyActor, IdleActor, Message, Metrics, Mux, MuxHost, Round, SessionEnvelope,
        SessionId, SimBuilder, Simulation,
    };
    pub use meba_smr::{LogEntry, ReplicatedLog, SmrMsg};
}
