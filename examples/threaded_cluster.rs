//! Run the protocols on the real-time threaded runtime: one OS thread per
//! process, crossbeam channels as links, wall-clock rounds.
//!
//! ```text
//! cargo run --example threaded_cluster [n] [delta_ms]
//! ```

use meba::net::{run_cluster, ClusterConfig, OverrunAction};
use meba::prelude::*;
use std::time::{Duration, Instant};

type SbaProc = StrongBa<RecursiveBaFactory>;
type Msg = <SbaProc as SubProtocol>::Msg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(7);
    let delta_ms: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2);

    let cfg = SystemConfig::new(n, 0)?;
    let (pki, keys) = trusted_setup(n, 99);
    println!("Binary strong BA on {n} OS threads, δ = {delta_ms} ms, crashing one follower\n");

    let crashed = ProcessId((n - 1) as u32);
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == crashed {
            actors.push(Box::new(IdleActor::new(id)));
            continue;
        }
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        // Everyone proposes `true`; strong unanimity must deliver `true`
        // even though the crash forces the quadratic fallback.
        let sba = StrongBa::new(cfg, id, key, pki.clone(), factory, true);
        actors.push(Box::new(LockstepAdapter::new(id, sba)));
    }

    let started = Instant::now();
    let report = run_cluster(
        actors,
        ClusterConfig {
            delta: Duration::from_millis(delta_ms),
            max_rounds: 5_000,
            corrupt: vec![crashed],
            // If δ turns out too small for this machine, stretch it
            // instead of producing garbage timing.
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: Duration::from_millis(250),
            },
            ..ClusterConfig::default()
        },
    );
    let elapsed = started.elapsed();

    assert!(report.completed, "cluster did not terminate");
    println!("Decisions:");
    for a in report.actors.iter().filter(|a| a.id() != crashed) {
        let l: &LockstepAdapter<SbaProc> = a.as_any().downcast_ref().unwrap();
        println!(
            "  {}: {:?} (used fallback: {})",
            a.id(),
            l.inner().output().unwrap(),
            l.inner().used_fallback()
        );
        assert_eq!(l.inner().output(), Some(true), "strong unanimity");
    }
    let m = &report.metrics;
    println!("\nWall clock      : {elapsed:?}");
    println!("Rounds          : {}", report.rounds);
    println!("Words (correct) : {}", m.correct.words);
    println!("Overruns        : {}", report.overruns);
    println!("Backpressure    : {}", report.backpressure);
    for e in &report.escalations {
        println!("  δ escalated at round {}: {:?} -> {:?}", e.at_round, e.old_delta, e.new_delta);
    }
    println!(
        "Round latency   : p50 ≤ {} µs, p99 ≤ {} µs, max {} µs ({} samples)",
        m.round_latency.quantile(0.50),
        m.round_latency.quantile(0.99),
        m.round_latency.max_us(),
        m.round_latency.count(),
    );
    let (links, sent, delivered): (usize, u64, u64) =
        m.per_link.values().fold((0, 0, 0), |(l, s, d), st| (l + 1, s + st.sent, d + st.delivered));
    println!("Links           : {links} directed, {sent} sent / {delivered} delivered");
    println!("\nThe crash of {crashed} broke the (n,n) fast path, the cluster fell");
    println!("back to the quadratic recursive BA, and unanimity still delivered `true`.");
    Ok(())
}
