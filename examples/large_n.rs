//! A 101-process replicated log on the discrete-event backend.
//!
//! The paced runtimes spend two OS threads and a real δ of wall clock per
//! process per round, which caps them around a few dozen processes in
//! practice. The discrete-event backend replaces both with a seeded
//! virtual clock and a single-threaded event queue, so a cluster of 101
//! replicas (t = 50) committing a pipelined slot runs in well under a
//! second of host time — while producing the *same* decisions and word
//! counts the lockstep simulator would.
//!
//! (101, not 100: optimal resilience needs odd `n = 2t + 1`.)
//!
//! ```text
//! cargo run --release --example large_n
//! ```

use meba::testkit::{log_des, log_report_entries, Fault};
use std::time::Instant;

const N: usize = 101;
const SLOTS: u64 = 2;
const WINDOW: u64 = 2;

fn main() {
    let faults = vec![Fault::None; N];

    println!("replicated log: n = {N} (t = {}), {SLOTS} slots, window {WINDOW}", (N - 1) / 2);
    let started = Instant::now();
    let report = log_des(SLOTS, WINDOW, &faults, 0x1009);
    let elapsed = started.elapsed();
    assert!(report.completed, "the run must commit every slot");

    let logs = log_report_entries(&report, &faults);
    let first = &logs[0];
    assert_eq!(first.len(), SLOTS as usize, "every slot committed");
    assert!(logs.iter().all(|l| l == first), "all {N} replicas agree on the log");

    println!("committed log (all replicas identical):");
    for entry in first {
        println!("  slot {} (proposer {:?}) -> {:?}", entry.slot, entry.proposer, entry.entry);
    }
    println!();
    println!("virtual rounds      : {}", report.rounds);
    println!("correct words       : {}", report.metrics.correct.words);
    println!("words per replica   : {:.1}", report.metrics.correct.words as f64 / N as f64);
    println!("host wall-clock time: {elapsed:?}");
}
