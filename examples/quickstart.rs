//! Quickstart: run adaptive Byzantine Broadcast among `n` simulated
//! processes and inspect decisions and word counts.
//!
//! ```text
//! cargo run --example quickstart [n]
//! ```

use meba::prelude::*;

type BbProc = Bb<u64, RecursiveBaFactory>;
type Msg = <BbProc as SubProtocol>::Msg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(7);
    let cfg = SystemConfig::new(n, 0)?;
    println!("Adaptive Byzantine Broadcast: n = {n}, t = {}, f = 0", cfg.t());

    // Trusted setup: PKI plus one secret key per process.
    let (pki, keys) = trusted_setup(n, 42);
    let sender = ProcessId(0);
    let value = 1_000_007u64;

    // Every process runs the BB state machine; the quadratic recursive BA
    // is plugged in as the fallback black box (it will stay unused: f = 0).
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let bb = if id == sender {
            Bb::new_sender(cfg, id, key, pki.clone(), factory, value)
        } else {
            Bb::new(cfg, id, key, pki.clone(), factory, sender)
        };
        actors.push(Box::new(LockstepAdapter::new(id, bb)));
    }

    let mut sim = SimBuilder::new(actors).build();
    sim.run_until_done(10_000)?;

    println!("\nDecisions:");
    for i in 0..n as u32 {
        let a: &LockstepAdapter<BbProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        println!(
            "  p{i}: {:?} (decided at round {})",
            a.inner().output().unwrap(),
            a.inner().decided_at().unwrap()
        );
    }

    let m = sim.metrics();
    println!("\nComplexity:");
    println!("  rounds                  : {}", m.rounds);
    println!("  words (correct)         : {}", m.correct.words);
    println!("  messages (correct)      : {}", m.correct.messages);
    println!("  constituent signatures  : {}", m.correct.constituent_sigs);
    println!("\nPer component:");
    for (comp, c) in &m.by_component {
        println!("  {comp:<18} {:>6} words", c.words);
    }
    println!(
        "\nFailure-free run: {} words ≈ {:.1}·n — linear, as Table 1 promises.",
        m.correct.words,
        m.correct.words as f64 / n as f64
    );
    Ok(())
}
