//! The `meba-smr` crate in action: a replicated log where each slot is
//! one adaptive BB instance with a rotating proposer, including a slot
//! with a crashed proposer — run **pipelined**, with up to `W` slots in
//! flight at once behind one session-multiplexed wire.
//!
//! Unlike `state_machine_replication.rs` (which wires BB instances by
//! hand), this uses the packaged [`ReplicatedLog`] actor: slots are
//! mux-hosted sessions with per-slot signature domains, so overlapping
//! instances cannot interfere. The same log is run sequentially
//! (`W = 1`) and pipelined (`W = 3`) to show the round savings.
//!
//! ```text
//! cargo run --example replicated_log
//! ```

use meba::prelude::*;
use meba::smr::SmrMsg;

type Log = ReplicatedLog<u64, RecursiveBaFactory>;
type Msg = SmrMsg<u64, <RecursiveBa<BbBaValue<u64>> as SubProtocol>::Msg>;

const N: usize = 5;
const SLOTS: u64 = 5;

/// Builds the cluster (p2 crashed) at the given pipeline window and runs
/// it to completion, returning the finished simulation.
fn run(window: u64) -> Result<Simulation<Msg>, Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(N, 0)?;
    let (pki, keys) = trusted_setup(N, 2024);
    let crashed = ProcessId(2); // slot 2's proposer will be down

    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == crashed {
            actors.push(Box::new(IdleActor::new(id)));
            continue;
        }
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let commands = vec![10 * (i as u64 + 1), 10 * (i as u64 + 1) + 1];
        let log: Log = ReplicatedLog::new(cfg, id, key, pki.clone(), factory, SLOTS, commands, 0)
            .with_window(window);
        actors.push(Box::new(log));
    }
    let mut sim = SimBuilder::new(actors).corrupt(crashed).build();
    sim.run_until_done(100_000)?;
    Ok(sim)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sequential = run(1)?;
    let sim = run(3)?;

    println!("Pipelined replicated log over {SLOTS} adaptive-BB slots (n = {N}, p2 crashed)\n");
    let reference: &Log = sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
    println!(
        "window W = {} → a new slot opens every {} rounds (slot schedule: {})",
        reference.window(),
        reference.stride(),
        reference.stride() * reference.window(),
    );
    println!("{:<6} {:<10} {:<12}", "slot", "proposer", "entry");
    for e in reference.log() {
        let entry = match &e.entry {
            Decision::Value(v) => format!("commit {v}"),
            Decision::Bot => "skip (⊥)".to_string(),
        };
        println!("{:<6} {:<10} {:<12}", e.slot, e.proposer.to_string(), entry);
    }

    // Every live replica holds the identical log, and the pipelined run
    // commits exactly what the sequential run commits — only sooner.
    let crashed = ProcessId(2);
    for i in (0..N as u32).filter(|&i| ProcessId(i) != crashed) {
        let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(l.log(), reference.log(), "replica p{i} diverged");
    }
    let seq_ref: &Log = sequential.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
    assert_eq!(seq_ref.log(), reference.log(), "pipelining changed the log");
    assert!(sim.metrics().rounds < sequential.metrics().rounds);

    let committed: Vec<u64> = reference.committed().copied().collect();
    println!("\ncommitted commands : {committed:?}");
    println!(
        "rounds             : {} pipelined vs {} sequential",
        sim.metrics().rounds,
        sequential.metrics().rounds
    );
    println!("total words        : {}", sim.metrics().correct_words());
    println!("\nper-slot word bill (session metrics):");
    for (session, s) in &sim.metrics().per_session {
        println!(
            "  slot {session}: {:>4} words over rounds {}..={}",
            s.counters.words, s.first_round, s.last_round
        );
    }
    println!("\nAll replicas hold the identical log; the crashed proposer's slot");
    println!("committed ⊥ and the log moved on — and with W = 3 slots in flight");
    println!("the whole log lands in a fraction of the sequential rounds.");
    Ok(())
}
