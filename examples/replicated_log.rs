//! The `meba-smr` crate in action: a replicated log where each slot is
//! one adaptive BB instance with a rotating proposer, including a slot
//! with a crashed proposer.
//!
//! Unlike `state_machine_replication.rs` (which wires BB instances by
//! hand), this uses the packaged [`ReplicatedLog`] actor: slots run back
//! to back inside a single simulation, with per-slot signature domains.
//!
//! ```text
//! cargo run --example replicated_log
//! ```

use meba::prelude::*;
use meba::smr::SmrMsg;

type Log = ReplicatedLog<u64, RecursiveBaFactory>;
type Msg = SmrMsg<u64, <RecursiveBa<BbBaValue<u64>> as SubProtocol>::Msg>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5usize;
    let slots = 5u64;
    let cfg = SystemConfig::new(n, 0)?;
    let (pki, keys) = trusted_setup(n, 2024);
    let crashed = ProcessId(2); // slot 2's proposer will be down

    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == crashed {
            actors.push(Box::new(IdleActor::new(id)));
            continue;
        }
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let commands = vec![10 * (i as u64 + 1), 10 * (i as u64 + 1) + 1];
        let log: Log = ReplicatedLog::new(cfg, id, key, pki.clone(), factory, slots, commands, 0);
        actors.push(Box::new(log));
    }
    let mut sim = SimBuilder::new(actors).corrupt(crashed).build();
    sim.run_until_done(100_000)?;

    println!("Replicated log over {slots} adaptive-BB slots (n = {n}, p2 crashed)\n");
    let reference: &Log = sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
    println!("{:<6} {:<10} {:<12}", "slot", "proposer", "entry");
    for e in reference.log() {
        let entry = match &e.entry {
            Decision::Value(v) => format!("commit {v}"),
            Decision::Bot => "skip (⊥)".to_string(),
        };
        println!("{:<6} {:<10} {:<12}", e.slot, e.proposer.to_string(), entry);
    }

    // Every live replica holds the identical log.
    for i in (0..n as u32).filter(|&i| ProcessId(i) != crashed) {
        let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(l.log(), reference.log(), "replica p{i} diverged");
    }
    let committed: Vec<u64> = reference.committed().copied().collect();
    println!("\ncommitted commands : {committed:?}");
    println!("total words        : {}", sim.metrics().correct_words());
    println!("\nAll replicas hold the identical log; the crashed proposer's slot");
    println!("committed ⊥ and the log moved on — availability with agreement.");
    Ok(())
}
