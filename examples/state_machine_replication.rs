//! State-machine replication on top of adaptive Byzantine Broadcast —
//! the application the paper's introduction motivates: BA "as a key
//! component in many distributed systems", where most slots are
//! failure-free and adaptivity keeps the common case cheap.
//!
//! A rotating proposer broadcasts one command per slot with an adaptive
//! BB instance; every replica applies the agreed command to a tiny
//! key-value store. Some slots have a crashed proposer — the log still
//! stays identical everywhere, and the per-slot word cost shows the
//! adaptive gap between clean and faulty slots.
//!
//! ```text
//! cargo run --example state_machine_replication
//! ```

use meba::prelude::*;
use std::collections::BTreeMap;

type BbProc = Bb<Vec<u8>, RecursiveBaFactory>;
type Msg = <BbProc as SubProtocol>::Msg;

/// A replicated command: `set key value`.
fn encode_cmd(key: &str, val: u64) -> Vec<u8> {
    format!("set {key} {val}").into_bytes()
}

fn apply_cmd(store: &mut BTreeMap<String, u64>, cmd: &[u8]) {
    let s = String::from_utf8_lossy(cmd);
    let mut it = s.split_whitespace();
    if let (Some("set"), Some(k), Some(v)) = (it.next(), it.next(), it.next()) {
        if let Ok(v) = v.parse() {
            store.insert(k.to_string(), v);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 7usize;
    let commands =
        [("alice", 10u64), ("bob", 25), ("carol", 7), ("alice", 11), ("dave", 99), ("bob", 26)];
    // Slots 2 and 4 have a crashed proposer.
    let crashed_slots = [2usize, 4];

    let mut stores: Vec<BTreeMap<String, u64>> = vec![BTreeMap::new(); n];
    let mut log: Vec<String> = Vec::new();

    println!("Replicated KV store over adaptive BB (n = {n}, rotating proposer)\n");
    println!("{:<6} {:<10} {:<16} {:>7}  result", "slot", "proposer", "command", "words");

    for (slot, (key, val)) in commands.iter().enumerate() {
        let proposer = ProcessId((slot % n) as u32);
        let proposer_crashed = crashed_slots.contains(&slot);
        let cfg = SystemConfig::new(n, slot as u64)?;
        let (pki, keys) = trusted_setup(n, 1000 + slot as u64);
        let cmd = encode_cmd(key, *val);

        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, k) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if id == proposer && proposer_crashed {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let factory = RecursiveBaFactory::new(cfg, k.clone(), pki.clone());
            let bb = if id == proposer {
                Bb::new_sender(cfg, id, k, pki.clone(), factory, cmd.clone())
            } else {
                Bb::new(cfg, id, k, pki.clone(), factory, proposer)
            };
            actors.push(Box::new(LockstepAdapter::new(id, bb)));
        }
        let mut builder = SimBuilder::new(actors);
        if proposer_crashed {
            builder = builder.corrupt(proposer);
        }
        let mut sim = builder.build();
        sim.run_until_done(20_000)?;

        // Apply the slot's decision at every live replica.
        let mut slot_decision: Option<Decision<Vec<u8>>> = None;
        for i in 0..n as u32 {
            if proposer_crashed && ProcessId(i) == proposer {
                continue;
            }
            let a: &LockstepAdapter<BbProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            let d = a.inner().output().expect("replica decided");
            if let Some(prev) = &slot_decision {
                assert_eq!(prev, &d, "replicas diverged!");
            }
            slot_decision = Some(d.clone());
            if let Decision::Value(cmd) = &d {
                apply_cmd(&mut stores[i as usize], cmd);
            }
        }
        let d = slot_decision.unwrap();
        let result = match &d {
            Decision::Value(_) => {
                log.push(format!("set {key} {val}"));
                "committed".to_string()
            }
            Decision::Bot => {
                log.push("<skip>".to_string());
                "skipped (⊥, proposer faulty)".to_string()
            }
        };
        println!(
            "{:<6} {:<10} {:<16} {:>7}  {}",
            slot,
            format!("p{}{}", proposer.0, if proposer_crashed { "✗" } else { "" }),
            format!("set {key} {val}"),
            sim.metrics().correct_words(),
            result
        );
    }

    // All live replicas hold the same state.
    let reference = stores
        .iter()
        .enumerate()
        .find(|(i, _)| !crashed_slots.iter().any(|s| s % n == *i))
        .map(|(_, s)| s.clone())
        .unwrap();
    for store in &stores {
        if !store.is_empty() {
            assert_eq!(store, &reference, "replica state diverged");
        }
    }

    println!("\nReplicated log : {log:?}");
    println!("Final state    : {reference:?}");
    println!("\nEvery replica applied the identical log — agreement held in every slot.");
    Ok(())
}
