//! A compact, runnable version of the paper's Table 1: sweep all three
//! protocols plus the Dolev–Strong baseline and print the measured
//! communication complexity side by side.
//!
//! ```text
//! cargo run --release --example complexity_sweep
//! ```
//! (Release mode recommended: the f = t column runs the quadratic
//! fallback.)

use meba::prelude::*;
use meba_bench_free::*;

/// Minimal run helpers, local to the example (the full sweep machinery
/// lives in the `meba-bench` crate).
mod meba_bench_free {
    use super::*;

    pub fn words_bb(n: usize, crash: usize) -> (u64, bool) {
        let cfg = SystemConfig::new(n, 0).unwrap();
        let (pki, keys) = trusted_setup(n, 1);
        type P = Bb<u64, RecursiveBaFactory>;
        type M = <P as SubProtocol>::Msg;
        let mut actors: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if i >= 1 && i <= crash {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let bb = if i == 0 {
                Bb::new_sender(cfg, id, key, pki.clone(), factory, 7u64)
            } else {
                Bb::new(cfg, id, key, pki.clone(), factory, ProcessId(0))
            };
            actors.push(Box::new(LockstepAdapter::new(id, bb)));
        }
        let mut b = SimBuilder::new(actors);
        for i in 1..=crash {
            b = b.corrupt(ProcessId(i as u32));
        }
        let mut sim = b.build();
        sim.run_until_done(100_000).unwrap();
        let fb = (0..n as u32).any(|i| {
            sim.actor(ProcessId(i))
                .as_any()
                .downcast_ref::<LockstepAdapter<P>>()
                .is_some_and(|a| a.inner().used_fallback())
        });
        (sim.metrics().correct_words(), fb)
    }

    pub fn words_strong(n: usize, crash: usize) -> (u64, bool) {
        let cfg = SystemConfig::new(n, 0).unwrap();
        let (pki, keys) = trusted_setup(n, 2);
        type P = StrongBa<RecursiveBaFactory>;
        type M = <P as SubProtocol>::Msg;
        let mut actors: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if i >= 1 && i <= crash {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let sba = StrongBa::new(cfg, id, key, pki.clone(), factory, true);
            actors.push(Box::new(LockstepAdapter::new(id, sba)));
        }
        let mut b = SimBuilder::new(actors);
        for i in 1..=crash {
            b = b.corrupt(ProcessId(i as u32));
        }
        let mut sim = b.build();
        sim.run_until_done(100_000).unwrap();
        let fb = (0..n as u32).any(|i| {
            sim.actor(ProcessId(i))
                .as_any()
                .downcast_ref::<LockstepAdapter<P>>()
                .is_some_and(|a| a.inner().used_fallback())
        });
        (sim.metrics().correct_words(), fb)
    }

    pub fn words_ds(n: usize) -> u64 {
        let cfg = SystemConfig::new(n, 0).unwrap();
        let (pki, keys) = trusted_setup(n, 3);
        type P = DolevStrongBb<u64>;
        type M = <P as SubProtocol>::Msg;
        let mut actors: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            let input = (i == 0).then_some(7u64);
            let ds = DolevStrongBb::new(&cfg, ProcessId(0), id, key, pki.clone(), input);
            actors.push(Box::new(LockstepAdapter::new(id, ds)));
        }
        let mut sim = SimBuilder::new(actors).build();
        sim.run_until_done(10_000).unwrap();
        sim.metrics().correct_words()
    }
}

fn main() {
    println!("Table 1, measured (words sent by correct processes):\n");
    println!(
        "{:>4} | {:>12} {:>12} | {:>12} {:>12} | {:>12}",
        "n", "BB f=0", "BB f=t", "sBA f=0", "sBA f=1", "Dolev-Strong"
    );
    println!("{}", "-".repeat(78));
    for n in [9usize, 17, 33] {
        let t = (n - 1) / 2;
        let (bb0, _) = words_bb(n, 0);
        let (bbt, bbt_fb) = words_bb(n, t);
        let (s0, _) = words_strong(n, 0);
        let (s1, s1_fb) = words_strong(n, 1);
        let ds = words_ds(n);
        println!(
            "{:>4} | {:>12} {:>10}{} | {:>12} {:>10}{} | {:>12}",
            n,
            bb0,
            bbt,
            if bbt_fb { "*" } else { " " },
            s0,
            s1,
            if s1_fb { "*" } else { " " },
            ds
        );
    }
    println!("\n(* = run used the quadratic fallback)");
    println!("\nRead-off: column 1 is linear in n (adaptive, f = 0); column 2 is");
    println!("quadratic (f = t); strong BA is linear failure-free and quadratic with");
    println!("a single fault; Dolev–Strong is quadratic always. Exactly Table 1.");
}
