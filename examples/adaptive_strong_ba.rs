//! The §8-direction extension in action: rotating-leader strong BA
//! surviving crashed leaders at linear cost, with a per-round activity
//! profile that makes the silent-attempt structure visible.
//!
//! ```text
//! cargo run --example adaptive_strong_ba [n] [crashed_leaders]
//! ```

use meba::core::strong_ba_rotating::RotatingStrongBa;
use meba::prelude::*;

type Rba = RotatingStrongBa<RecursiveBaFactory>;
type Msg = <Rba as SubProtocol>::Msg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(17);
    let f: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2);
    let cfg = SystemConfig::new(n, 0)?;
    assert!(
        f < cfg.adaptive_fault_bound(),
        "keep f below (n-t-1)/2 = {} for the linear path",
        cfg.adaptive_fault_bound()
    );
    let (pki, keys) = trusted_setup(n, 8);

    println!("Rotating-leader strong BA: n = {n}, leaders p0..p{} crashed\n", f.saturating_sub(1));

    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if i < f {
            actors.push(Box::new(IdleActor::new(id)));
            continue;
        }
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let rba = RotatingStrongBa::new(cfg, id, key, pki.clone(), factory, true);
        actors.push(Box::new(LockstepAdapter::new(id, rba)));
    }
    let mut builder = SimBuilder::new(actors);
    for i in 0..f {
        builder = builder.corrupt(ProcessId(i as u32));
    }
    let mut sim = builder.build();
    sim.run_until_done(10_000)?;

    for i in f as u32..n as u32 {
        let a: &LockstepAdapter<Rba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(a.inner().output(), Some(true), "strong unanimity");
        assert!(!a.inner().used_fallback(), "must stay on the linear path");
    }
    let sample: &LockstepAdapter<Rba> =
        sim.actor(ProcessId(f as u32)).as_any().downcast_ref().unwrap();
    let decided = sample.inner().decided_at().unwrap();
    let m = sim.metrics();

    println!("all correct processes decided `true` at round {decided}");
    println!(
        "words: {} (≈ {:.1}·n), no fallback\n",
        m.correct.words,
        m.correct.words as f64 / n as f64
    );

    // Per-round activity profile: crashed-leader attempts show only the
    // undecided processes' input sends; the first correct leader's
    // attempt lights up with propose/share/cert traffic, then silence.
    println!("round | correct words sent");
    let max = m.words_per_round.iter().copied().max().unwrap_or(1).max(1);
    for (r, w) in m.words_per_round.iter().enumerate() {
        let bar = "#".repeat((w * 50 / max) as usize);
        let note = match (r as u64) / 4 {
            a if (a as usize) < f && (r as u64).is_multiple_of(4) => {
                "  <- inputs to crashed leader"
            }
            a if (a as usize) == f && (r as u64).is_multiple_of(4) => {
                "  <- first correct leader's attempt"
            }
            _ => "",
        };
        println!("{r:>5} | {w:>5} {bar}{note}");
        if *w == 0 && r as u64 > decided {
            break;
        }
    }
    println!("\nEach crashed-leader attempt wastes one thin input wave; the first");
    println!("correct leader finishes in 4 rounds. Algorithm 5 would have paid the");
    println!("full quadratic fallback here.");
    Ok(())
}
