//! Unique validity as a design tool (paper §3): weak BA with the example
//! predicate "a value is valid if it is signed by at least `t + 1`
//! processes stating that this value was their initial value".
//!
//! With that predicate, unique validity yields exactly strong unanimity
//! on the underlying signed values — and Byzantine processes cannot
//! fabricate a valid value at all unless `t + 1` processes (hence at
//! least one correct) really attested to it.
//!
//! ```text
//! cargo run --example unique_validity
//! ```

use meba::prelude::*;
use meba_crypto::{DecodeError, Decoder, Encoder, Signable, ThresholdSignature};

/// The attested value: a `u64` together with a `(t+1, n)` certificate
/// that this many processes declared it as their initial value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Attested {
    value: u64,
    cert: ThresholdSignature,
}

impl Value for Attested {
    fn encode_value(&self, enc: &mut Encoder) {
        enc.put_u64(self.value);
        self.cert.encode(enc);
    }
    fn decode_value(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let value = dec.get_u64()?;
        let cert = ThresholdSignature::decode(dec)?;
        Ok(Attested { value, cert })
    }
    fn value_words(&self) -> u64 {
        2
    }
}

/// Signed payload: "my initial value is v".
struct InitialSig {
    session: u64,
    value: u64,
}

impl Signable for InitialSig {
    const DOMAIN: &'static str = "example/initial-value";
    fn encode_fields(&self, enc: &mut Encoder) {
        enc.put_u64(self.session);
        enc.put_u64(self.value);
    }
}

/// The §3 example predicate.
#[derive(Clone)]
struct AttestedValidity {
    cfg: SystemConfig,
    pki: Pki,
}

impl Validity<Attested> for AttestedValidity {
    fn validate(&self, v: &Attested) -> bool {
        v.cert.threshold() == self.cfg.idk_threshold()
            && self
                .pki
                .verify_threshold(
                    &InitialSig { session: self.cfg.session(), value: v.value }.signing_bytes(),
                    &v.cert,
                )
                .is_ok()
    }
}

type Wba = WeakBa<Attested, AttestedValidity, RecursiveBaFactory>;
type Msg = <Wba as SubProtocol>::Msg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0)?;
    let (pki, keys) = trusted_setup(n, 123);
    let shared_value = 5_000u64;

    // Setup phase (outside the BA, as §3 envisions): every process signs
    // its initial value; since all correct processes agree, a (t+1, n)
    // certificate for that value — and only that value — can be formed.
    let payload = InitialSig { session: cfg.session(), value: shared_value };
    let shares: Vec<_> = keys.iter().map(|k| k.sign(&payload.signing_bytes())).collect();
    let cert = pki.combine(cfg.idk_threshold(), &payload.signing_bytes(), &shares)?;
    let input = Attested { value: shared_value, cert };

    // Sanity: a forged attestation (wrong value) does not validate.
    let validity = AttestedValidity { cfg, pki: pki.clone() };
    let forged = Attested { value: 9_999, cert: input.cert.clone() };
    assert!(validity.validate(&input));
    assert!(!validity.validate(&forged));
    println!("predicate check: genuine attestation accepted, forged one rejected ✓\n");

    // Run weak BA over attested values, with two crashed processes.
    let crashed = [5u32, 6];
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if crashed.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
            continue;
        }
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let wba = WeakBa::new(cfg, id, key, pki.clone(), validity.clone(), factory, input.clone());
        actors.push(Box::new(LockstepAdapter::new(id, wba)));
    }
    let mut builder = SimBuilder::new(actors);
    for &c in &crashed {
        builder = builder.corrupt(ProcessId(c));
    }
    let mut sim = builder.build();
    sim.run_until_done(10_000)?;

    println!("weak BA over attested values (n = {n}, 2 crashed):");
    for i in (0..n as u32).filter(|i| !crashed.contains(i)) {
        let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        let d = a.inner().output().unwrap();
        match &d {
            Decision::Value(att) => println!("  p{i}: decided attested value {}", att.value),
            Decision::Bot => println!("  p{i}: decided ⊥"),
        }
        assert_eq!(
            d.value().map(|a| a.value),
            Some(shared_value),
            "unique validity must deliver the attested value"
        );
    }
    println!(
        "\nBecause only one valid value exists in this run (the t+1-attested one),\n\
         unique validity forces every correct process to decide it — strong\n\
         unanimity recovered from a weak primitive, exactly as §3 describes."
    );
    Ok(())
}
