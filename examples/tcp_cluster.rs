//! Run the protocols over real TCP sockets.
//!
//! Two modes:
//!
//! **Loopback cluster** (default) — one OS thread per process, every
//! message canonically encoded, framed, and carried over handshaked
//! loopback TCP links; adaptive BB first, then one pipelined SMR slot:
//!
//! ```text
//! cargo run --example tcp_cluster [n] [delta_ms]
//! ```
//!
//! **Multi-process** — each invocation is one cluster member in its own
//! OS process, dialing the others' listen addresses; start all `n`
//! within a few seconds of each other (δ defaults to 50 ms to absorb
//! start skew):
//!
//! ```text
//! cargo run --example tcp_cluster -- --me 0 --bind 127.0.0.1:7400 \
//!     --peers 127.0.0.1:7400,127.0.0.1:7401,127.0.0.1:7402
//! ```

use meba::net::{ProcessFate, ProcessFateFactory};
use meba::prelude::*;
use meba::testkit::{recoverable_decision, WeakBaRecoveryHarness};
use meba::wire::{
    config_digest, drive_mesh, run_tcp_cluster, run_tcp_cluster_with_recovery, Hello, MeshConfig,
    MeshDriveConfig, TcpClusterConfig, TcpMesh, PROTOCOL_VERSION,
};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

type BbProc = Bb<u64, RecursiveBaFactory>;
type BbM = <BbProc as SubProtocol>::Msg;
type Log = ReplicatedLog<u64, RecursiveBaFactory>;
type LogM = <Log as Actor>::Msg;

fn bb_actors(
    cfg: SystemConfig,
    seed: u64,
    sender: ProcessId,
    value: u64,
) -> Vec<Box<dyn AnyActor<Msg = BbM>>> {
    let (pki, keys) = trusted_setup(cfg.n(), seed);
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let bb: BbProc = if id == sender {
                Bb::new_sender(cfg, id, key, pki.clone(), factory, value)
            } else {
                Bb::new(cfg, id, key, pki.clone(), factory, sender)
            };
            Box::new(LockstepAdapter::new(id, bb)) as _
        })
        .collect()
}

fn loopback(n: usize, delta_ms: u64) -> Result<(), Box<dyn std::error::Error>> {
    let delta = Duration::from_millis(delta_ms);
    let tcp_config = || TcpClusterConfig {
        cluster: meba::net::ClusterConfig {
            delta,
            max_rounds: 5_000,
            ..meba::net::ClusterConfig::default()
        },
        ..TcpClusterConfig::default()
    };

    // Part 1: adaptive BB, failure-free — O(n) words over real sockets.
    let cfg = SystemConfig::new(n, 0xb0)?;
    println!("Adaptive BB over loopback TCP, n = {n}, δ = {delta_ms} ms");
    let started = Instant::now();
    let tcp = run_tcp_cluster(bb_actors(cfg, 0xb0, ProcessId(0), 42), &cfg, tcp_config())?;
    let report = &tcp.report;
    assert!(report.completed, "BB cluster did not terminate");
    for a in &report.actors {
        let l: &LockstepAdapter<BbProc> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(Decision::Value(42)));
    }
    let c = &report.metrics.correct;
    println!(
        "  all {n} processes decided 42 in {} rounds ({:.0?})",
        report.rounds,
        started.elapsed()
    );
    println!(
        "  {} correct words = {} codec bytes ({} B/word); {} frames, {} socket bytes, {} reconnects\n",
        c.words,
        c.bytes,
        c.bytes.div_ceil(c.words.max(1)),
        tcp.frames_sent,
        tcp.socket_bytes,
        tcp.reconnects,
    );

    // Part 2: one pipelined SMR slot — the replicated log commits a
    // command through a full BB session multiplexed over the same codec.
    let cfg = SystemConfig::new(n, 0)?;
    let (pki, keys) = trusted_setup(n, 0xce);
    let actors: Vec<Box<dyn AnyActor<Msg = LogM>>> = keys
        .into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let log: Log =
                ReplicatedLog::new(cfg, id, key, pki.clone(), factory, 1, vec![900 + i as u64], 0);
            Box::new(log) as _
        })
        .collect();
    println!("One pipelined SMR slot over loopback TCP");
    let tcp = run_tcp_cluster(actors, &cfg, tcp_config())?;
    assert!(tcp.report.completed, "SMR cluster did not terminate");
    let mut committed = None;
    for a in &tcp.report.actors {
        let l: &Log = a.as_any().downcast_ref().unwrap();
        let entries: Vec<u64> = l.log().iter().filter_map(|e| e.entry.value().copied()).collect();
        match &committed {
            None => committed = Some(entries),
            Some(c) => assert_eq!(c, &entries, "replicas diverged"),
        }
    }
    println!(
        "  slot 0 committed {:?} on every replica in {} rounds; {} frames over the wire",
        committed.unwrap(),
        tcp.report.rounds,
        tcp.frames_sent,
    );

    // Part 3: crash-recovery chaos — weak BA with one process killed mid-run
    // (its TCP links torn down for real) and relaunched from its journal.
    let harness = Arc::new(WeakBaRecoveryHarness::new(&vec![7u64; n]));
    let victim = ProcessId(1);
    let fate: ProcessFateFactory = Arc::new(move |p: ProcessId| {
        if p == victim {
            ProcessFate::CrashRestart { at_round: 2, rejoin_after: 3 }
        } else {
            ProcessFate::Run
        }
    });
    println!("Crash-recovery over loopback TCP: p{} killed at round 2, relaunched", victim.0);
    let tcp = run_tcp_cluster_with_recovery(
        harness.actors(),
        Some(harness.rebuilder()),
        &harness.config(),
        TcpClusterConfig {
            cluster: meba::net::ClusterConfig {
                delta: delta.max(Duration::from_millis(12)),
                max_rounds: 5_000,
                process_fate: Some(fate),
                ..meba::net::ClusterConfig::default()
            },
            domain: 0x3a,
            ..TcpClusterConfig::default()
        },
    )?;
    assert!(tcp.report.completed, "recovery cluster did not terminate");
    for a in &tcp.report.actors {
        let d = recoverable_decision(a.as_ref()).expect("every process (incl. recovered) decides");
        assert_eq!(d, Decision::Value(7), "survivors and the recovered process must agree");
    }
    let rec = &tcp.report.metrics.recovery;
    assert_eq!(rec.crash_restarts, 1);
    assert_eq!(rec.refused_equivocations, 0, "honest replay never re-signs a conflicting slot");
    println!(
        "  all {n} processes decided 7 in {} rounds; {} records replayed, {} fsyncs, \
         {} recovery rounds, {} reconnects, refused equivocations = {}",
        tcp.report.rounds,
        rec.replayed_records,
        rec.journal_fsyncs,
        rec.recovery_rounds,
        tcp.reconnects,
        rec.refused_equivocations,
    );
    Ok(())
}

fn multi_process(
    me: u32,
    bind: SocketAddr,
    peers: Vec<SocketAddr>,
    delta_ms: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let n = peers.len();
    let cfg = SystemConfig::new(n, 0xb0)?;
    let id = ProcessId(me);
    assert_eq!(peers[id.index()], bind, "--bind must equal our own --peers entry");

    let listener = TcpListener::bind(bind)?;
    let hello =
        Hello { version: PROTOCOL_VERSION, id, config_digest: config_digest(&cfg), domain: 0xb0 };
    let mut mesh_cfg = MeshConfig::new(id, hello);
    mesh_cfg.dial_timeout = Duration::from_secs(30);
    println!("p{me}: listening on {bind}, establishing mesh with {} peers...", n - 1);
    let mesh: TcpMesh<BbM> = TcpMesh::establish(mesh_cfg, listener, &peers)?;
    println!("p{me}: all {} links handshaked", 2 * (n - 1));

    let mut actors = bb_actors(cfg, 0xb0, ProcessId(0), 42);
    let mut actor = actors.remove(id.index());
    let drive = MeshDriveConfig {
        delta: Duration::from_millis(delta_ms),
        max_rounds: 5_000,
        ..MeshDriveConfig::default()
    };
    let (rounds, metrics) = drive_mesh(&mesh, actor.as_mut(), &drive);
    mesh.shutdown();

    let l: &LockstepAdapter<BbProc> = actor.as_any().downcast_ref().unwrap();
    println!(
        "p{me}: decision {:?} after {rounds} rounds, {} words / {} bytes sent",
        l.inner().output(),
        metrics.correct.words,
        metrics.correct.bytes,
    );
    assert_eq!(l.inner().output(), Some(Decision::Value(42)));
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bind") {
        let mut me = None;
        let mut bind = None;
        let mut peers = Vec::new();
        let mut delta_ms = 50;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--me" => me = Some(it.next().ok_or("--me needs a value")?.parse()?),
                "--bind" => bind = Some(it.next().ok_or("--bind needs a value")?.parse()?),
                "--peers" => {
                    peers = it
                        .next()
                        .ok_or("--peers needs a value")?
                        .split(',')
                        .map(|s| s.trim().parse())
                        .collect::<Result<_, _>>()?;
                }
                "--delta-ms" => delta_ms = it.next().ok_or("--delta-ms needs a value")?.parse()?,
                other => return Err(format!("unknown flag {other}").into()),
            }
        }
        let me = me.ok_or("--me is required with --bind")?;
        let bind = bind.ok_or("--bind is required")?;
        if peers.len() < 3 {
            return Err("--peers needs at least 3 comma-separated addresses".into());
        }
        multi_process(me, bind, peers, delta_ms)
    } else {
        let mut it = args.iter();
        let n: usize = it.next().map(|s| s.parse()).transpose()?.unwrap_or(5);
        let delta_ms: u64 = it.next().map(|s| s.parse()).transpose()?.unwrap_or(5);
        loopback(n, delta_ms)
    }
}
