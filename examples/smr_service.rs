//! The full client-service stack over real processes and real sockets.
//!
//! Run with no arguments and the binary orchestrates the whole demo by
//! re-executing itself:
//!
//! ```text
//! cargo run --release --example smr_service [-- base_port]
//! ```
//!
//! * three **replica processes**, each running a [`ServiceReplica`]
//!   (replicated log + batcher + WAL + dedup + certified state
//!   transfer) over a handshaked TCP mesh with the quorum-or-timeout
//!   round driver, and a [`ServiceGateway`] thread serving its client
//!   port;
//! * two **client processes** speaking the framed client protocol
//!   through [`ServiceClient`]: hello handshake, paced submits, commit
//!   ack collection, and a read;
//! * one client is **killed mid-stream** (a real SIGKILL) and
//!   relaunched under the same client id. The relaunch blindly
//!   resubmits its whole sequence range: ops the cluster already
//!   committed are re-acked idempotently from the dedup table, ops
//!   still in flight are absorbed silently, and the rest are admitted
//!   fresh — exactly-once either way;
//! * one **replica is killed mid-stream** (a real SIGKILL, taken only
//!   after the first write has demonstrably committed) and relaunched
//!   with its journal **wiped** — a disk-loss restart. The restart
//!   rejoins the mesh, fast-forwards its round clock on observed
//!   quorum traffic, and catches its applied prefix up to the
//!   cluster's committed prefix via certified state transfer — **no
//!   client resubmits anything** for those slots (at n = 3 the commit
//!   quorum is all three replicas, so fresh agreement could never
//!   re-produce them); the restart asserts it applied every slot and
//!   that at least one slot arrived by transfer rather than local
//!   agreement.
//!
//! Every process asserts its own invariants and exits nonzero on
//! violation; the orchestrator asserts every child succeeded.

use meba::engine::RoundDriverConfig;
use meba::prelude::*;
use meba::service::{ReadMode, ReplicaMsg, ServiceMsg, ServiceReply};
use meba::wire::{
    config_digest, drive_mesh, Hello, MeshConfig, MeshDriveConfig, TcpMesh, PROTOCOL_VERSION,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

type ServiceProc = ServiceReplica<RecursiveBaFactory>;
type ServiceM = ReplicaMsg<ServiceMsg<RecursiveBaFactory>>;

const N: usize = 3;
const SEED: u64 = 0x5e8;
const TOTAL_SLOTS: u64 = 12;
const WINDOW: u64 = 2;
const QUEUE_CAPACITY: usize = 64;
/// Ops per client: client 1 submits seqs `0..4`, client 2 seqs `0..6`.
const CLIENT1_OPS: u64 = 4;
const CLIENT2_OPS: u64 = 6;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        total_slots: TOTAL_SLOTS,
        window: WINDOW,
        // A generous age bound keeps a paced client's trickle in one
        // batch instead of fragmenting it across proposer slots; a due
        // proposer slot force-closes the open batch anyway, so this
        // never delays a bind.
        batch: BatchPolicy { max_batch_delay: 12, ..BatchPolicy::default() },
        queue_capacity: QUEUE_CAPACITY,
    }
}

fn mesh_addr(base: u16, i: usize) -> SocketAddr {
    format!("127.0.0.1:{}", base + i as u16).parse().unwrap()
}

fn gateway_addr(base: u16, i: usize) -> SocketAddr {
    format!("127.0.0.1:{}", base + 10 + i as u16).parse().unwrap()
}

// ---------------------------------------------------------------------
// Replica process: mesh member + serving gateway.
// ---------------------------------------------------------------------

/// Binds with retry: a relaunched replica re-binds the port its killed
/// predecessor held, which can transiently fail while the kernel reaps
/// the old socket.
fn bind_with_retry(addr: SocketAddr) -> std::io::Result<TcpListener> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn replica(
    i: usize,
    base: u16,
    journal: PathBuf,
    delta_ms: u64,
    rebuild: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(N, SEED)?;
    let (pki, keys) = trusted_setup(N, SEED);
    let id = ProcessId(i as u32);
    let key = keys[i].clone();
    let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());

    let port = ServicePort::new(QUEUE_CAPACITY);
    let wal = meba::journal::Journal::open_file(&journal)?;
    let svc = if rebuild {
        let (svc, replayed) = ServiceReplica::rebuild(
            cfg,
            id,
            key,
            pki,
            factory,
            service_config(),
            port.clone(),
            wal,
        )?;
        println!(
            "replica {i}: rebuilt from journal ({replayed} records, {} slots applied pre-crash), \
             recovering via state transfer",
            svc.applied_slots()
        );
        svc
    } else {
        ServiceReplica::new(cfg, id, key, pki, factory, service_config(), port.clone(), Some(wal))
    };
    let gateway = ServiceGateway::spawn(&gateway_addr(base, i).to_string(), &cfg, id, port)?;
    println!("replica {i}: gateway serving clients on {}", gateway.addr());

    let peers: Vec<SocketAddr> = (0..N).map(|p| mesh_addr(base, p)).collect();
    let listener = bind_with_retry(peers[i])?;
    let hello =
        Hello { version: PROTOCOL_VERSION, id, config_digest: config_digest(&cfg), domain: 0x19 };
    let mut mesh_cfg = MeshConfig::new(id, hello);
    mesh_cfg.dial_timeout = Duration::from_secs(30);
    let mesh: TcpMesh<ServiceM> = TcpMesh::establish(mesh_cfg, listener, &peers)?;
    println!("replica {i}: mesh up, driving {TOTAL_SLOTS} slots (W = {WINDOW})");

    let mut actor: Box<dyn AnyActor<Msg = ServiceM>> = Box::new(svc);
    // Quorum-or-timeout pacing: rounds advance on observed quorum
    // traffic, falling back to the δ timer. This is what lets a
    // relaunched replica *fast-forward* — its buffered backlog of
    // later-round traffic advances its round clock without crawling
    // timer by timer, so it re-synchronizes with the cluster schedule.
    // Generous linger keeps finished replicas around as transfer donors.
    let drive = MeshDriveConfig {
        delta: Duration::from_millis(delta_ms),
        max_rounds: 6_000,
        linger_rounds: if rebuild { 8 } else { 150 },
        driver: RoundDriverConfig::quorum_or_timeout(),
    };
    let (rounds, _) = drive_mesh(&mesh, actor.as_mut(), &drive);
    // Let the gateway flush the final commit acks to client sockets
    // before tearing it down.
    std::thread::sleep(Duration::from_millis(200));
    mesh.shutdown();
    gateway.stop();

    let svc: &ServiceProc = actor.as_any().downcast_ref().unwrap();
    let stats = svc.stats();
    assert_eq!(svc.applied_slots(), TOTAL_SLOTS, "replica {i}: applied every slot");
    assert_eq!(stats.session_collisions, 0, "replica {i}: no session collisions");
    assert_eq!(stats.applied_conflicts, 0, "replica {i}: no certified/local conflicts");
    if rebuild {
        // The whole point of the exercise: the outage's slots arrived by
        // certified transfer, not by clients resubmitting anything.
        assert!(
            stats.slots_transferred > 0,
            "replica {i}: restart should adopt at least one transferred slot"
        );
        assert!(!svc.recovering(), "replica {i}: recovery must complete");
        println!(
            "replica {i}: caught up — {} slots by state transfer \
             ({} certified, {} vouched, {} forged rejected)",
            stats.slots_transferred,
            stats.transfer_certs_verified,
            stats.transfer_vouches_accepted,
            stats.transfer_certs_rejected,
        );
    }
    println!(
        "replica {i}: done in {rounds} rounds — {} ops committed in {} batches, \
         {} deduped, {} slots ⊥, {} keys",
        stats.ops_committed,
        stats.batches_proposed,
        stats.ops_deduped,
        stats.skipped_slots,
        svc.kv().len(),
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Client process: submit a seq range, collect every commit, read back.
// ---------------------------------------------------------------------

fn connect_with_retry(
    addr: SocketAddr,
    client: u64,
    cfg: &SystemConfig,
) -> std::io::Result<ServiceClient> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match ServiceClient::connect(addr, client, cfg) {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn op_for(client: u64, seq: u64) -> Op {
    Op { client, seq, key: client * 100 + seq, value: seq + 1 }
}

/// A read that survives gateway stalls: a confirmed read legitimately
/// blocks past the client's socket timeout while a restarted replica
/// catches the applied prefix up, so a timed-out socket is "ask again"
/// (reads are idempotent), not a failure. Reconnects on each retry —
/// the stale socket may still get the old answer delivered, and a fresh
/// connection keeps request/reply pairing unambiguous.
fn read_with_retry(
    cli: &mut ServiceClient,
    gateway: SocketAddr,
    id: u64,
    cfg: &SystemConfig,
    key: u64,
    mode: ReadMode,
) -> std::io::Result<ServiceReply> {
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        match cli.read(key, mode) {
            Ok(reply) => return Ok(reply),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => *cli = connect_with_retry(gateway, id, cfg)?,
        }
    }
}

fn client(
    id: u64,
    gateway: SocketAddr,
    seqs: u64,
    pace_ms: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(N, SEED)?;
    let mut cli = connect_with_retry(gateway, id, &cfg)?;
    println!("client {id}: connected to {gateway}, submitting seqs 0..{seqs}");

    // Short per-attempt ack windows, many attempts: an op bound into a
    // slot that `⊥`-retires during the replica outage is only re-landed
    // by a *resubmission that arrives after the retirement* — a client
    // that waits out one long window can miss the cluster's remaining
    // proposer slots entirely.
    let mut missing: Vec<u64> = (0..seqs).collect();
    for attempt in 0..8 {
        let mut still_pending = Vec::new();
        for &seq in &missing {
            let op = op_for(id, seq);
            match cli.submit(op)? {
                ServiceReply::Accepted { .. } => still_pending.push(seq),
                // A resubmission of an op the cluster already committed
                // is answered straight from the dedup table.
                ServiceReply::Committed { .. } => {}
                ServiceReply::Overloaded { .. } => {
                    std::thread::sleep(Duration::from_millis(100));
                    still_pending.push(seq);
                }
                other => panic!("client {id}: unexpected submit reply {other:?}"),
            }
            if pace_ms > 0 {
                std::thread::sleep(Duration::from_millis(pace_ms));
            }
        }
        let acked = cli.collect_commits(&still_pending, Instant::now() + Duration::from_secs(5));
        missing = still_pending.into_iter().filter(|s| !acked.contains(s)).collect();
        if missing.is_empty() {
            break;
        }
        println!("client {id}: attempt {attempt} left {missing:?} unacked, resubmitting");
    }
    assert!(missing.is_empty(), "client {id}: seqs {missing:?} never committed");
    println!("client {id}: all {seqs} ops committed exactly once");

    // Leader-local fast read of our first write, then a quorum-confirmed
    // one — the confirmed reply waits for the full applied prefix.
    let ServiceReply::ReadResult { value, .. } =
        read_with_retry(&mut cli, gateway, id, &cfg, id * 100, ReadMode::Fast)?
    else {
        panic!("client {id}: fast read rejected");
    };
    assert_eq!(value, Some(1), "client {id}: fast read sees our committed write");
    let ServiceReply::ReadResult { value, applied_slots, .. } =
        read_with_retry(&mut cli, gateway, id, &cfg, id * 100 + seqs - 1, ReadMode::Confirmed)?
    else {
        panic!("client {id}: confirmed read rejected");
    };
    assert_eq!(value, Some(seqs), "client {id}: confirmed read sees our last write");
    println!("client {id}: reads verified (confirmed at {applied_slots} applied slots)");
    Ok(())
}

// ---------------------------------------------------------------------
// Orchestrator: three replicas, two clients; one client AND one replica
// killed and relaunched mid-stream.
// ---------------------------------------------------------------------

fn spawn_self(args: &[String]) -> std::io::Result<Child> {
    Command::new(std::env::current_exe()?).args(args).spawn()
}

fn wait_ok(label: &str, mut child: Child) {
    let status = child.wait().expect("wait on child");
    assert!(status.success(), "{label} exited with {status}");
}

fn replica_args(i: usize, base: u16, dir: &std::path::Path, delta_ms: u64) -> Vec<String> {
    vec![
        "--replica".into(),
        i.to_string(),
        "--base-port".into(),
        base.to_string(),
        "--journal".into(),
        dir.join(format!("replica-{i}.wal")).display().to_string(),
        "--delta-ms".into(),
        delta_ms.to_string(),
    ]
}

fn orchestrate(base: u16, delta_ms: u64) -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("smr_service_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    println!("orchestrator: {N} replicas on ports {base}.., journals in {}", dir.display());

    let mut replicas: Vec<Child> = (0..N)
        .map(|i| spawn_self(&replica_args(i, base, &dir, delta_ms)))
        .collect::<Result<_, _>>()?;

    // Gate the clients on every gateway accepting connections.
    for i in 0..N {
        let deadline = Instant::now() + Duration::from_secs(20);
        while TcpStream::connect(gateway_addr(base, i)).is_err() {
            assert!(Instant::now() < deadline, "gateway {i} never came up");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    println!("orchestrator: all gateways accepting, launching clients");

    let client_args = |id: u64, gw: usize, seqs: u64, pace: u64| {
        vec![
            "--client".to_string(),
            id.to_string(),
            "--gateway".into(),
            gateway_addr(base, gw).to_string(),
            "--seqs".into(),
            seqs.to_string(),
            "--pace-ms".into(),
            pace.to_string(),
        ]
    };
    let c1 = spawn_self(&client_args(1, 0, CLIENT1_OPS, 0))?;

    // Client 2 paces its submits, gets killed for real mid-stream, and is
    // relaunched under the same identity to resubmit the whole range.
    let mut doomed = spawn_self(&client_args(2, 1, CLIENT2_OPS, 150))?;
    std::thread::sleep(Duration::from_millis(450));
    let killed = doomed.kill();
    doomed.wait()?;
    killed?;
    println!("orchestrator: client 2 killed mid-stream, relaunching");
    let c2 = spawn_self(&client_args(2, 1, CLIENT2_OPS, 0))?;

    // Replica N-1 gets killed for real mid-stream too (no client talks
    // to its gateway, so nothing is resubmitted on its behalf). The kill
    // waits until at least one write has demonstrably committed, and the
    // relaunch starts from a *wiped* journal — a disk-loss restart — so
    // the pre-crash committed prefix is guaranteed to be a gap the
    // restart can only close via certified state transfer: at n = 3 the
    // commit quorum is all three replicas, so no client resubmission or
    // fresh agreement can ever re-produce those slots for it.
    {
        let cfg = SystemConfig::new(N, SEED)?;
        let mut probe = connect_with_retry(gateway_addr(base, 0), 99, &cfg)?;
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            if let ServiceReply::ReadResult { value: Some(1), .. } =
                probe.read(op_for(1, 0).key, ReadMode::Fast)?
            {
                break;
            }
            assert!(Instant::now() < deadline, "client 1's first write never committed");
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    let mut doomed_replica = replicas.pop().expect("replica child");
    let killed = doomed_replica.kill();
    doomed_replica.wait()?;
    killed?;
    let wal = dir.join(format!("replica-{}.wal", N - 1));
    std::fs::remove_file(&wal)?;
    println!(
        "orchestrator: replica {} killed after the first commit, journal wiped, relaunching",
        N - 1
    );
    std::thread::sleep(Duration::from_millis(800));
    let mut restart_args = replica_args(N - 1, base, &dir, delta_ms);
    restart_args.push("--rebuild".into());
    let restarted = spawn_self(&restart_args)?;

    wait_ok("client 1", c1);
    wait_ok("client 2 (relaunched)", c2);
    wait_ok(&format!("replica {} (relaunched)", N - 1), restarted);
    for (i, r) in replicas.into_iter().enumerate() {
        wait_ok(&format!("replica {i}"), r);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nSMR service demo complete: {} client ops committed exactly once across \
         {N} replicas; one client and one replica killed and relaunched — the client \
         without a duplicate, the replica catching up by certified state transfer.",
        CLIENT1_OPS + CLIENT2_OPS
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut replica_idx = None;
    let mut client_id = None;
    let mut gateway = None;
    let mut journal = None;
    let mut base_port = 7550u16;
    let mut delta_ms = 50u64;
    let mut seqs = 0u64;
    let mut pace_ms = 0u64;
    let mut rebuild = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().cloned().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--replica" => replica_idx = Some(val()?.parse::<usize>()?),
            "--client" => client_id = Some(val()?.parse::<u64>()?),
            "--gateway" => gateway = Some(val()?.parse::<SocketAddr>()?),
            "--journal" => journal = Some(PathBuf::from(val()?)),
            "--base-port" => base_port = val()?.parse()?,
            "--delta-ms" => delta_ms = val()?.parse()?,
            "--seqs" => seqs = val()?.parse()?,
            "--pace-ms" => pace_ms = val()?.parse()?,
            "--rebuild" => rebuild = true,
            other => {
                // Bare positional: the orchestrator's base port.
                base_port = other.parse().map_err(|_| format!("unknown flag {other}"))?;
            }
        }
    }
    match (replica_idx, client_id) {
        (Some(i), None) => {
            let journal = journal.ok_or("--replica needs --journal")?;
            replica(i, base_port, journal, delta_ms, rebuild)
        }
        (None, Some(id)) => {
            let gateway = gateway.ok_or("--client needs --gateway")?;
            client(id, gateway, seqs, pace_ms)
        }
        (None, None) => orchestrate(base_port, delta_ms),
        _ => Err("--replica and --client are mutually exclusive".into()),
    }
}
