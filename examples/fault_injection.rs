//! Fault injection: run adaptive Byzantine Broadcast under a gallery of
//! adversaries and verify agreement/validity while watching the word cost
//! react to the *actual* number of failures.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use meba::adversary::{ChaosActor, EquivocatingSender, LossyLinkActor, WastefulBbLeader};
use meba::prelude::*;
use meba::sim::faults::BernoulliDrop;

type BbProc = Bb<u64, RecursiveBaFactory>;
type Msg = <BbProc as SubProtocol>::Msg;

type ByzBuilder =
    fn(&SystemConfig, &Pki, &[SecretKey], ProcessId) -> Vec<(u32, Box<dyn AnyActor<Msg = Msg>>)>;

struct Scenario {
    name: &'static str,
    /// Byzantine ids and a constructor for each.
    build_byz: ByzBuilder,
}

fn correct_actor(
    cfg: &SystemConfig,
    pki: &Pki,
    key: SecretKey,
    id: ProcessId,
    sender: ProcessId,
    value: u64,
) -> Box<dyn AnyActor<Msg = Msg>> {
    let factory = RecursiveBaFactory::new(*cfg, key.clone(), pki.clone());
    let bb = if id == sender {
        Bb::new_sender(*cfg, id, key, pki.clone(), factory, value)
    } else {
        Bb::new(*cfg, id, key, pki.clone(), factory, sender)
    };
    Box::new(LockstepAdapter::new(id, bb))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 9usize;
    let value = 424_242u64;
    let sender = ProcessId(0);

    let scenarios: Vec<Scenario> = vec![
        Scenario { name: "failure-free", build_byz: |_, _, _, _| vec![] },
        Scenario {
            name: "crashed followers (f = t)",
            build_byz: |_, _, _, _| {
                [2u32, 4, 6, 8]
                    .into_iter()
                    .map(|i| {
                        (i, Box::new(IdleActor::new(ProcessId(i))) as Box<dyn AnyActor<Msg = Msg>>)
                    })
                    .collect()
            },
        },
        Scenario {
            name: "silent sender",
            build_byz: |_, _, _, _| vec![(0, Box::new(IdleActor::new(ProcessId(0))) as _)],
        },
        Scenario {
            name: "equivocating sender",
            build_byz: |cfg, _, keys, _| {
                vec![(
                    0,
                    Box::new(EquivocatingSender::new(
                        *cfg,
                        keys[0].clone(),
                        111u64,
                        222u64,
                        (1..5).map(ProcessId).collect(),
                        (5..9).map(ProcessId).collect(),
                    )) as _,
                )]
            },
        },
        Scenario {
            name: "wasteful leaders (f = 3)",
            build_byz: |cfg, _, _, _| {
                (1u32..=3)
                    .map(|i| {
                        (i, Box::new(WastefulBbLeader::<u64, _>::new(*cfg, ProcessId(i), i)) as _)
                    })
                    .collect()
            },
        },
        Scenario {
            // Correct state machines behind 80%-lossy outbound links: the
            // adversary controls their network, not their logic, yet they
            // still count toward f and the word bill reacts the same way.
            name: "lossy links (f = 2)",
            build_byz: |cfg, pki, keys, sender| {
                [3u32, 7]
                    .into_iter()
                    .map(|i| {
                        let id = ProcessId(i);
                        let key = keys[i as usize].clone();
                        let factory = RecursiveBaFactory::new(*cfg, key.clone(), pki.clone());
                        let bb: BbProc = Bb::new(*cfg, id, key, pki.clone(), factory, sender);
                        let lossy = LossyLinkActor::new(
                            LockstepAdapter::new(id, bb),
                            Box::new(BernoulliDrop::new(0x1055_u64 ^ u64::from(i), 0.8)),
                        );
                        (i, Box::new(lossy) as Box<dyn AnyActor<Msg = Msg>>)
                    })
                    .collect()
            },
        },
        Scenario {
            name: "chaos replayers (f = 2)",
            build_byz: |_, _, _, _| {
                vec![
                    (3, Box::new(ChaosActor::new(ProcessId(3), 0xc0ffee, 4)) as _),
                    (7, Box::new(ChaosActor::new(ProcessId(7), 0xbeef, 4)) as _),
                ]
            },
        },
    ];

    println!("Adaptive BB under attack (n = {n}, sender = {sender}, value = {value})\n");
    println!("{:<28} {:>7} {:>9} {:>8}  outcome", "scenario", "words", "messages", "rounds");

    for sc in scenarios {
        let cfg = SystemConfig::new(n, 7)?;
        let (pki, keys) = trusted_setup(n, 0xabcdef);
        let byz = (sc.build_byz)(&cfg, &pki, &keys, sender);
        let byz_ids: Vec<u32> = byz.iter().map(|(i, _)| *i).collect();
        let mut byz_actors: std::collections::BTreeMap<u32, Box<dyn AnyActor<Msg = Msg>>> =
            byz.into_iter().collect();

        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.iter().cloned().enumerate() {
            if let Some(a) = byz_actors.remove(&(i as u32)) {
                actors.push(a);
            } else {
                actors.push(correct_actor(&cfg, &pki, key, ProcessId(i as u32), sender, value));
            }
        }
        let mut builder = SimBuilder::new(actors);
        for &i in &byz_ids {
            builder = builder.corrupt(ProcessId(i));
        }
        let mut sim = builder.build();
        sim.run_until_done(20_000)?;

        // Collect decisions of correct processes and check agreement.
        let mut decisions = Vec::new();
        for i in (0..n as u32).filter(|i| !byz_ids.contains(i)) {
            let a: &LockstepAdapter<BbProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            decisions.push(a.inner().output().expect("correct process decided"));
        }
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement violated!");
        let sender_correct = !byz_ids.contains(&sender.0);
        if sender_correct {
            assert_eq!(decisions[0], Decision::Value(value), "validity violated!");
        }
        let outcome = match &decisions[0] {
            Decision::Value(v) => format!("all decide {v}"),
            Decision::Bot => "all decide ⊥".to_string(),
        };
        let m = sim.metrics();
        println!(
            "{:<28} {:>7} {:>9} {:>8}  {}",
            sc.name, m.correct.words, m.correct.messages, m.rounds, outcome
        );
    }
    println!("\nAll scenarios satisfied agreement and (where applicable) validity.");
    Ok(())
}
