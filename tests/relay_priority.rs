//! Precision test for Alg 4's round-3 priority (lines 37–42): a leader
//! that receives *any* valid commit report must **relay** it (at its
//! original level) rather than batching a fresh certificate from votes —
//! even when it has quorum votes in hand. This is what makes
//! commitments sticky across phases and underpins Lemma 15's uniqueness
//! argument.

mod common;

use common::{round_budget, WbaM, WbaProc};
use meba::core::signing::{sign_payload, CommitProof, VoteSig};
use meba::core::weak_ba::WeakBaMsg;
use meba::prelude::*;
use meba_crypto::Signable;
use meba_sim::RoundCtx;

/// A Byzantine process that plants a *genuine* phase-1 commit certificate
/// (assembled from the cohort's own vote signatures with the quorum
/// override disabled — here we use a full honest-size cohort of keys from
/// the trusted setup, which the test harness legitimately owns) at a
/// single correct process, so that phase 2 has a mix of commit reports
/// and fresh votes.
struct CommitPlanter {
    me: ProcessId,
    target: ProcessId,
    msg: Option<WbaM>,
}

impl Actor for CommitPlanter {
    type Msg = WbaM;
    fn id(&self) -> ProcessId {
        self.me
    }
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, WbaM>) {
        // Deliver at round 2 so it arrives at the target's phase-1
        // round 4 (the commit-acceptance step).
        if ctx.round().as_u64() == 2 {
            if let Some(m) = self.msg.take() {
                ctx.send(self.target, m);
            }
        }
    }
    fn done(&self) -> bool {
        true
    }
}

#[test]
fn leader_relays_reported_commit_instead_of_fresh_certificate() {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0x4e1).unwrap();
    let (pki, keys) = trusted_setup(n, 0x4e1);
    let byz = ProcessId(1); // phase-1 leader slot, used as the planter

    // Build a real quorum commit certificate for value 40 at level 1.
    // The test (as the adversary) holds all keys, which models a past
    // phase in which 40 was legitimately committed.
    let value = 40u64;
    let payload = VoteSig { session: cfg.session(), value: &value, level: 1 };
    let shares: Vec<_> =
        keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &payload)).collect();
    let qc = pki.combine(cfg.quorum(), &payload.signing_bytes(), &shares).unwrap();
    let planted = WeakBaMsg::CommitCert { phase: 1, value, proof: CommitProof { level: 1, qc } };

    let target = ProcessId(3);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if id == byz {
            actors.push(Box::new(CommitPlanter { me: id, target, msg: Some(planted.clone()) }));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 5u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(byz).build();
    sim.run_until_done(round_budget(n)).unwrap();

    // Phase 2's correct leader (p2) received p3's commit report for 40
    // alongside fresh votes for its own proposal 5. The relay must win:
    // everyone ends committed to 40 at level 1 and decides 40.
    for i in (0..n as u32).filter(|&i| ProcessId(i) != byz) {
        let a: &LockstepAdapter<WbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(
            a.inner().output(),
            Some(Decision::Value(40)),
            "p{i}: the reported commit must take priority over fresh votes"
        );
        assert_eq!(a.inner().commit_level(), 1, "p{i}: relayed level preserved");
        assert_eq!(a.inner().committed_value(), Some(&40), "p{i}");
    }
}
