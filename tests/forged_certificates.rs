//! Certificate-forgery rejection tests: a Byzantine process sends
//! structurally valid messages carrying *wrong* certificates (lower
//! thresholds, mismatched levels/phases, replayed sessions) and correct
//! processes must ignore every one of them.

mod common;

use common::{round_budget, WbaM, WbaProc};
use meba::core::signing::{sign_payload, CommitProof, DecideProof, DecideSig, VoteSig};
use meba::core::weak_ba::WeakBaMsg;
use meba::prelude::*;
use meba_sim::RoundCtx;

/// A Byzantine actor that fires a fixed batch of crafted messages at a
/// given round and is otherwise silent.
struct Injector {
    me: ProcessId,
    round: u64,
    payload: Vec<WbaM>,
}

impl Actor for Injector {
    type Msg = WbaM;
    fn id(&self) -> ProcessId {
        self.me
    }
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, WbaM>) {
        if ctx.round().as_u64() == self.round {
            for m in self.payload.drain(..) {
                ctx.broadcast(m);
            }
        }
    }
    fn done(&self) -> bool {
        true
    }
}

fn run_with_injection(payload: Vec<WbaM>, at_round: u64) -> Vec<Decision<u64>> {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xf0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xf0);
    let byz = ProcessId(1);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if id == byz {
            actors.push(Box::new(Injector { me: id, round: at_round, payload: payload.clone() }));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 5u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(byz).build();
    sim.run_until_done(round_budget(n)).unwrap();
    (0..n as u32)
        .filter(|&i| ProcessId(i) != byz)
        .map(|i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.inner().output().expect("decided")
        })
        .collect()
}

/// Note: p1 is the phase-1 leader and we replace it with the injector, so
/// the honest run decides the phase-2 leader's value (5) — any forged
/// early decision on a different value would surface as disagreement or a
/// wrong value.
const HONEST_OUTCOME: Decision<u64> = Decision::Value(5);

#[test]
fn underfilled_finalize_certificate_is_rejected() {
    // A finalize "certificate" batched at threshold t+1 = 4 instead of the
    // quorum 6. The byz cohort alone cannot reach 6, but 4 signatures are
    // trivially available... except only p1 is corrupted here, so we
    // build it from p1's signature repeated? Impossible — combine rejects
    // duplicates. Instead: a (1, n) certificate from p1 alone.
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xf0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xf0);
    let forged_value = 666u64;
    let payload = DecideSig { session: cfg.session(), value: &forged_value, phase: 1 };
    let share = sign_payload(&keys[1], &payload);
    let qc = pki.combine(1, &meba_crypto::Signable::signing_bytes(&payload), &[share]).unwrap();
    let msg = WeakBaMsg::FinalizeCert {
        phase: 1,
        value: forged_value,
        proof: DecideProof { phase: 1, qc },
    };
    // Injected at round 4 so it arrives at the finalize-adoption step.
    let ds = run_with_injection(vec![msg], 4);
    assert!(ds.iter().all(|d| *d == HONEST_OUTCOME), "forged finalize accepted: {ds:?}");
}

#[test]
fn commit_certificate_with_wrong_level_is_rejected() {
    // A real-looking commit certificate whose claimed level (3) does not
    // match the level its signatures bind (1).
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xf0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xf0);
    let forged_value = 666u64;
    let payload = VoteSig { session: cfg.session(), value: &forged_value, level: 1 };
    let share = sign_payload(&keys[1], &payload);
    let qc = pki.combine(1, &meba_crypto::Signable::signing_bytes(&payload), &[share]).unwrap();
    let msg = WeakBaMsg::CommitCert {
        phase: 1,
        value: forged_value,
        proof: CommitProof { level: 3, qc },
    };
    let ds = run_with_injection(vec![msg], 1);
    assert!(ds.iter().all(|d| *d == HONEST_OUTCOME), "level-forged commit accepted: {ds:?}");
}

#[test]
fn cross_session_certificate_is_rejected() {
    // A quorum-sized certificate from a *different session* (all 7 keys
    // of a parallel setup sign it): structurally perfect, semantically
    // stale.
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xf0).unwrap();
    let other_cfg = SystemConfig::new(n, 0xdead).unwrap();
    let (pki, keys) = trusted_setup(n, 0xf0);
    let forged_value = 666u64;
    let payload = DecideSig { session: other_cfg.session(), value: &forged_value, phase: 1 };
    let shares: Vec<_> =
        keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &payload)).collect();
    let qc = pki
        .combine(cfg.quorum(), &meba_crypto::Signable::signing_bytes(&payload), &shares)
        .unwrap();
    let msg = WeakBaMsg::FinalizeCert {
        phase: 1,
        value: forged_value,
        proof: DecideProof { phase: 1, qc },
    };
    let ds = run_with_injection(vec![msg], 4);
    assert!(ds.iter().all(|d| *d == HONEST_OUTCOME), "cross-session cert accepted: {ds:?}");
}

#[test]
fn phase_mismatched_finalize_is_rejected() {
    // Signatures bind phase 2 but the message claims phase 1 (whose
    // arrival round this is). Either interpretation must fail: the proof
    // verifies only for phase 2, and a phase-2 cert cannot arrive at
    // phase 1's slot.
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xf0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xf0);
    let forged_value = 666u64;
    let payload = DecideSig { session: cfg.session(), value: &forged_value, phase: 2 };
    let shares: Vec<_> =
        keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &payload)).collect();
    let qc = pki
        .combine(cfg.quorum(), &meba_crypto::Signable::signing_bytes(&payload), &shares)
        .unwrap();
    let msgs = vec![
        WeakBaMsg::FinalizeCert {
            phase: 1,
            value: forged_value,
            proof: DecideProof { phase: 2, qc: qc.clone() },
        },
        WeakBaMsg::FinalizeCert {
            phase: 1,
            value: forged_value,
            proof: DecideProof { phase: 1, qc },
        },
    ];
    let ds = run_with_injection(msgs, 4);
    assert!(ds.iter().all(|d| *d == HONEST_OUTCOME), "phase-mismatched cert accepted: {ds:?}");
}

#[test]
fn help_with_valid_looking_but_wrong_threshold_is_rejected() {
    // Help answers carry finalize proofs; an undecided process must not
    // adopt one whose certificate threshold is below the quorum even if
    // the signatures are genuine.
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xf0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xf0);
    let forged_value = 666u64;
    let payload = DecideSig { session: cfg.session(), value: &forged_value, phase: 1 };
    let shares: Vec<_> = keys.iter().take(4).map(|k| sign_payload(k, &payload)).collect();
    let qc = pki.combine(4, &meba_crypto::Signable::signing_bytes(&payload), &shares).unwrap();
    let msg = WeakBaMsg::Help { value: forged_value, proof: DecideProof { phase: 1, qc } };
    // Injected one round before the help-adoption step (n phases × 5 + 1).
    let help_adopt = 7 * 5 + 1;
    let ds = run_with_injection(vec![msg], help_adopt);
    assert!(ds.iter().all(|d| *d == HONEST_OUTCOME), "weak help proof accepted: {ds:?}");
}

mod strong_ba_forgeries {
    use super::common::{round_budget, SbaM, SbaProc};
    use meba::core::signing::{sign_payload, StrongDecideSig, StrongInputSig};
    use meba::core::strong_ba::StrongBaMsg;
    use meba::prelude::*;
    use meba_crypto::Signable;
    use meba_sim::RoundCtx;

    struct Injector {
        me: ProcessId,
        round: u64,
        payload: Vec<SbaM>,
    }
    impl Actor for Injector {
        type Msg = SbaM;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, SbaM>) {
            if ctx.round().as_u64() == self.round {
                for m in self.payload.drain(..) {
                    ctx.broadcast(m);
                }
            }
        }
        fn done(&self) -> bool {
            true
        }
    }

    /// Runs strong BA (all correct input `true`) with p3 replaced by an
    /// injector firing `payload` at `round`.
    fn run(payload: Vec<SbaM>, round: u64) -> Vec<bool> {
        let n = 7usize;
        let cfg = SystemConfig::new(n, 0x5f).unwrap();
        let (pki, keys) = trusted_setup(n, 0x5f);
        let byz = ProcessId(3);
        let mut actors: Vec<Box<dyn AnyActor<Msg = SbaM>>> = Vec::new();
        for (i, key) in keys.iter().cloned().enumerate() {
            let id = ProcessId(i as u32);
            if id == byz {
                actors.push(Box::new(Injector { me: id, round, payload: payload.clone() }));
            } else {
                let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
                let sba: SbaProc = StrongBa::new(cfg, id, key, pki.clone(), factory, true);
                actors.push(Box::new(LockstepAdapter::new(id, sba)));
            }
        }
        let mut sim = SimBuilder::new(actors).corrupt(byz).build();
        sim.run_until_done(round_budget(n)).unwrap();
        (0..n as u32)
            .filter(|&i| ProcessId(i) != byz)
            .map(|i| {
                let a: &LockstepAdapter<SbaProc> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                a.inner().output().expect("decided")
            })
            .collect()
    }

    #[test]
    fn decide_cert_from_non_leader_is_ignored() {
        // A perfectly valid-looking decide certificate... except it comes
        // from p3, not the leader, and its threshold is forged low.
        let cfg = SystemConfig::new(7, 0x5f).unwrap();
        let (pki, keys) = trusted_setup(7, 0x5f);
        let payload = StrongDecideSig { session: cfg.session(), value: false };
        let share = sign_payload(&keys[3], &payload);
        let qc = pki.combine(1, &payload.signing_bytes(), &[share]).unwrap();
        let ds = run(vec![StrongBaMsg::DecideCert { value: false, qc }], 3);
        // With a fault present (the injector never sends its decide
        // share) the run falls back; strong unanimity still gives true.
        assert!(ds.iter().all(|&d| d), "forged decide cert accepted: {ds:?}");
    }

    #[test]
    fn propose_with_wrong_threshold_is_ignored() {
        // A propose "certificate" with a single signature instead of t+1:
        // correct processes must not decide-share for it.
        let cfg = SystemConfig::new(7, 0x5f).unwrap();
        let (pki, keys) = trusted_setup(7, 0x5f);
        let payload = StrongInputSig { session: cfg.session(), value: false };
        let share = sign_payload(&keys[3], &payload);
        let qc = pki.combine(1, &payload.signing_bytes(), &[share]).unwrap();
        let ds = run(vec![StrongBaMsg::Propose { value: false, qc }], 1);
        assert!(ds.iter().all(|&d| d), "weak propose cert accepted: {ds:?}");
    }
}
