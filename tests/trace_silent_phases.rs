//! Trace-based verification of the *silence* claims: the paper's
//! adaptivity comes from silent phases costing nothing, which we verify
//! at message granularity with the simulator's event trace.

mod common;

use common::{round_budget, WbaM, WbaProc};
use meba::prelude::*;

fn traced_weak_ba(n: usize, inputs: &[u64]) -> Simulation<WbaM> {
    let cfg = SystemConfig::new(n, 0x7e).unwrap();
    let (pki, keys) = trusted_setup(n, 0x7e);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, inputs[i]);
        actors.push(Box::new(LockstepAdapter::new(id, wba)));
    }
    SimBuilder::new(actors).trace(100_000).build()
}

#[test]
fn failure_free_run_is_silent_after_phase_one() {
    let n = 9usize;
    let mut sim = traced_weak_ba(n, &vec![4u64; n]);
    sim.run_until_done(round_budget(n)).unwrap();
    let trace = sim.trace().expect("tracing enabled");

    // Phase 1 occupies rounds 0..5; the finalize broadcast goes out in
    // round 4. After that: total silence — phases 2..n are silent, no
    // help requests, no fallback.
    assert_eq!(
        trace.last_activity("weak-ba"),
        Some(4),
        "a failure-free run must not send a single word after phase 1"
    );
    assert!(trace.component("fallback").is_empty());
    assert!(trace.component("weak-ba/help").is_empty());

    // Round structure of the one non-silent phase: propose (r0), votes
    // (r1), commit cert (r2), decide shares (r3), finalize (r4).
    for r in 0..5u64 {
        assert!(trace.in_round(r).count() > 0, "phase-1 round {r} must be active");
    }
    // And every event was sent by a correct process.
    assert!(trace.events().iter().all(|e| e.sender_correct));
}

#[test]
fn leader_to_all_pattern_in_phase_one() {
    let n = 7usize;
    let mut sim = traced_weak_ba(n, &vec![2u64; n]);
    sim.run_until_done(round_budget(n)).unwrap();
    let trace = sim.trace().unwrap();
    let leader = ProcessId(1); // phase 1 leader: p_{1 mod n}

    // Rounds 0, 2, 4 are leader broadcasts: every event's sender is the
    // leader and it reaches the other n-1 processes.
    for r in [0u64, 2, 4] {
        let events: Vec<_> = trace.in_round(r).collect();
        assert_eq!(events.len(), n - 1, "round {r}");
        assert!(events.iter().all(|e| e.from == leader), "round {r}");
    }
    // Rounds 1 and 3 are all-to-leader replies.
    for r in [1u64, 3] {
        let events: Vec<_> = trace.in_round(r).collect();
        assert_eq!(events.len(), n - 1, "round {r}");
        assert!(events.iter().all(|e| e.to == leader), "round {r}");
    }
}

#[test]
fn trace_word_totals_match_metrics() {
    let n = 7usize;
    let mut sim = traced_weak_ba(n, &vec![8u64; n]);
    sim.run_until_done(round_budget(n)).unwrap();
    let trace = sim.trace().unwrap();
    let traced: u64 = trace.events().iter().map(|e| e.words).sum();
    assert_eq!(traced, sim.metrics().correct_words());
    assert_eq!(trace.dropped(), 0);
}
