//! Adaptive-corruption crash tests: processes run the honest protocol
//! with honest scheduling and are crashed by the network mid-run (the
//! simulator's `crash_at`), which is the closest realization of the
//! paper's adaptive adversary choosing *when* to corrupt.

mod common;

use common::{round_budget, WbaM, WbaProc};
use meba::prelude::*;

fn weak_ba_with_crashes(n: usize, inputs: &[u64], crashes: &[(u32, u64)]) -> Simulation<WbaM> {
    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, inputs[i]);
        actors.push(Box::new(LockstepAdapter::new(id, wba)));
    }
    let mut b = SimBuilder::new(actors);
    for &(id, round) in crashes {
        b = b.crash_at(ProcessId(id), round);
    }
    b.build()
}

/// Agreement among *survivors* must hold no matter when crashes land.
/// Sweep the crash round of the phase-1 leader across the whole phase.
#[test]
fn leader_crash_at_every_phase_round_is_safe() {
    let n = 7usize;
    for crash_round in 0..12u64 {
        let mut sim = weak_ba_with_crashes(n, &[3; 7], &[(1, crash_round)]);
        sim.run_until_done(round_budget(n)).unwrap();
        let mut decisions = Vec::new();
        for i in (0..n as u32).filter(|&i| i != 1) {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            decisions.push(a.inner().output().expect("survivor decided"));
        }
        assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "crash at round {crash_round}: {decisions:?}"
        );
        assert_eq!(decisions[0], Decision::Value(3), "unanimity, crash at {crash_round}");
    }
}

/// A leader crashing *between* sending its commit certificate and its
/// finalize certificate leaves everyone committed but undecided — the
/// classic partial-progress window. Later phases must relay the commit
/// and still decide the committed value.
#[test]
fn leader_crash_between_commit_and_finalize() {
    let n = 7usize;
    // Phase 1 occupies rounds 0..5; the leader sends CommitCert in round
    // 2 and FinalizeCert in round 4. Crash it at round 4 (cert formed but
    // never sent... actually: crash before its round-4 send).
    let mut sim = weak_ba_with_crashes(n, &[9; 7], &[(1, 4)]);
    sim.run_until_done(round_budget(n)).unwrap();
    let mut decisions = Vec::new();
    for i in (0..n as u32).filter(|&i| i != 1) {
        let a: &LockstepAdapter<WbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        // Everyone committed in phase 1 (the commit cert went out in
        // round 2) with level 1 preserved through relays.
        assert_eq!(a.inner().committed_value(), Some(&9), "p{i}");
        assert_eq!(a.inner().commit_level(), 1, "p{i}");
        decisions.push(a.inner().output().expect("decided"));
    }
    assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(decisions[0], Decision::Value(9), "the committed value must win");
}

/// Staggered crashes across several phases: survivors always agree, and
/// pre-crash traffic counts toward correct-word complexity (so the run is
/// costlier than silent-from-start crashes but still bounded).
#[test]
fn staggered_crashes_across_phases() {
    let n = 9usize;
    let crashes = [(1u32, 3u64), (2, 8), (3, 13), (4, 20)];
    let mut sim = weak_ba_with_crashes(n, &[4; 9], &crashes);
    sim.run_until_done(round_budget(n)).unwrap();
    let mut decisions = Vec::new();
    for i in (0..n as u32).filter(|&i| !crashes.iter().any(|(c, _)| *c == i)) {
        let a: &LockstepAdapter<WbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        decisions.push(a.inner().output().expect("decided"));
    }
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
    assert_eq!(decisions[0], Decision::Value(4));
}

/// Exhaustive mini-sweep: one crash, every victim, every round in the
/// first two phases. Nothing may ever break agreement or unanimity.
#[test]
fn exhaustive_single_crash_sweep() {
    let n = 5usize;
    for victim in 0..n as u32 {
        for crash_round in 0..10u64 {
            let mut sim = weak_ba_with_crashes(n, &[6; 5], &[(victim, crash_round)]);
            sim.run_until_done(round_budget(n)).unwrap();
            let mut decisions = Vec::new();
            for i in (0..n as u32).filter(|&i| i != victim) {
                let a: &LockstepAdapter<WbaProc> =
                    sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                decisions.push(a.inner().output().expect("decided"));
            }
            assert!(
                decisions.iter().all(|d| *d == Decision::Value(6)),
                "victim p{victim} at round {crash_round}: {decisions:?}"
            );
        }
    }
}
