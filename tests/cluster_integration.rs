//! Integration tests: the same protocol state machines running on the
//! threaded wall-clock runtime (`meba-net`) instead of the lockstep
//! simulator.

mod common;

use common::*;
use meba::net::{run_cluster, ClusterConfig};
use meba::prelude::*;
use std::time::Duration;

fn cluster_config(corrupt: Vec<ProcessId>) -> ClusterConfig {
    ClusterConfig { delta: Duration::from_millis(2), max_rounds: 3_000, corrupt }
}

#[test]
fn bb_on_threads_failure_free() {
    let n = 5usize;
    let cfg = SystemConfig::new(n, 0xc1).unwrap();
    let (pki, keys) = trusted_setup(n, 0xc1);
    let sender = ProcessId(0);
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let bb: BbProc = if id == sender {
            Bb::new_sender(cfg, id, key, pki.clone(), factory, 17u64)
        } else {
            Bb::new(cfg, id, key, pki.clone(), factory, sender)
        };
        actors.push(Box::new(LockstepAdapter::new(id, bb)));
    }
    let report = run_cluster(actors, cluster_config(vec![]));
    assert!(report.completed, "cluster must terminate");
    for a in &report.actors {
        let l: &LockstepAdapter<BbProc> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(Decision::Value(17)));
    }
    // Word accounting matches the simulator's O(n) failure-free envelope.
    assert!(report.metrics.correct.words <= 25 * n as u64);
}

#[test]
fn strong_ba_on_threads_with_crash() {
    let n = 5usize;
    let cfg = SystemConfig::new(n, 0xc2).unwrap();
    let (pki, keys) = trusted_setup(n, 0xc2);
    let crashed = ProcessId(2);
    let mut actors: Vec<Box<dyn AnyActor<Msg = SbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == crashed {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let sba: SbaProc = StrongBa::new(cfg, id, key, pki.clone(), factory, true);
            actors.push(Box::new(LockstepAdapter::new(id, sba)));
        }
    }
    let report = run_cluster(actors, cluster_config(vec![crashed]));
    assert!(report.completed);
    for a in report.actors.iter().filter(|a| a.id() != crashed) {
        let l: &LockstepAdapter<SbaProc> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(true), "strong unanimity on threads");
    }
}

#[test]
fn cluster_and_simulator_agree_on_words() {
    // The two runtimes implement the same accounting; a failure-free weak
    // BA must cost identical words on both.
    let n = 5usize;
    let inputs = vec![3u64; n];
    let faults = vec![Fault::None; n];
    let mut sim = weak_ba_sim(&inputs, &faults);
    sim.run_until_done(round_budget(n)).unwrap();
    let sim_words = sim.metrics().correct_words();

    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let wba: WbaProc =
            WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, inputs[i]);
        actors.push(Box::new(LockstepAdapter::new(id, wba)));
    }
    let report = run_cluster(actors, cluster_config(vec![]));
    assert!(report.completed);
    assert_eq!(report.metrics.correct.words, sim_words);
}
