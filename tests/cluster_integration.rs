//! Integration tests: the same protocol state machines running on the
//! threaded wall-clock runtime (`meba-net`) instead of the lockstep
//! simulator — with and without injected link faults.

mod common;

use common::*;
use meba::net::{run_cluster, AbortReason, ClusterConfig, LinkPolicyFactory, OverrunAction};
use meba::prelude::*;
use meba::sim::faults::{Link, LinkFate, LinkPolicy, OneShotPartition, PolicyStack, RandomDelay};
use std::sync::Arc;
use std::time::Duration;

fn cluster_config(corrupt: Vec<ProcessId>) -> ClusterConfig {
    ClusterConfig {
        delta: Duration::from_millis(2),
        max_rounds: 3_000,
        corrupt,
        ..ClusterConfig::default()
    }
}

#[test]
fn bb_on_threads_failure_free() {
    let n = 5usize;
    let cfg = SystemConfig::new(n, 0xc1).unwrap();
    let (pki, keys) = trusted_setup(n, 0xc1);
    let sender = ProcessId(0);
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let bb: BbProc = if id == sender {
            Bb::new_sender(cfg, id, key, pki.clone(), factory, 17u64)
        } else {
            Bb::new(cfg, id, key, pki.clone(), factory, sender)
        };
        actors.push(Box::new(LockstepAdapter::new(id, bb)));
    }
    let report = run_cluster(actors, cluster_config(vec![]));
    assert!(report.completed, "cluster must terminate");
    for a in &report.actors {
        let l: &LockstepAdapter<BbProc> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(Decision::Value(17)));
    }
    // Word accounting matches the simulator's O(n) failure-free envelope.
    assert!(report.metrics.correct.words <= 25 * n as u64);
    // Observability: each thread contributed one latency sample per round,
    // and on reliable links every sent message was delivered.
    assert_eq!(report.metrics.round_latency.count(), n as u64 * report.rounds);
    assert!(!report.metrics.per_link.is_empty());
    for (link, stats) in &report.metrics.per_link {
        assert_eq!(stats.dropped, 0, "{link} must not drop");
        assert_eq!(stats.delivered, stats.sent, "{link} must deliver everything");
    }
}

#[test]
fn pipelined_log_on_threads() {
    // The same mux-hosted pipelined log that runs on the lockstep
    // simulator, driven by the threaded wall-clock runtime: sessions are
    // routed, opened, and retired identically, and the per-session
    // metrics breakdown is populated by the cluster too.
    type Log = ReplicatedLog<u64, RecursiveBaFactory>;
    type Msg = <Log as Actor>::Msg;
    let n = 5usize;
    let slots = 3u64;
    let cfg = SystemConfig::new(n, 0xc7).unwrap();
    let (pki, keys) = trusted_setup(n, 0xc7);
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let log: Log =
            ReplicatedLog::new(cfg, id, key, pki.clone(), factory, slots, vec![700 + i as u64], 0)
                .with_window(3);
        actors.push(Box::new(log));
    }
    let report = run_cluster(actors, cluster_config(vec![]));
    assert!(report.completed, "cluster must terminate");
    let mut reference: Option<Vec<LogEntry<u64>>> = None;
    for a in &report.actors {
        let l: &Log = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.log().len(), slots as usize);
        match &reference {
            None => reference = Some(l.log().to_vec()),
            Some(r) => assert_eq!(l.log(), &r[..], "replicas diverged on threads"),
        }
    }
    let committed: Vec<u64> =
        reference.unwrap().iter().filter_map(|e| e.entry.value().copied()).collect();
    assert_eq!(committed, vec![700, 701, 702]);
    // Pipelining: with W = 3 the whole log fits well inside two
    // sequential slot schedules.
    let slot_rounds = {
        let (pki2, keys2) = trusted_setup(n, 0xc7);
        let f = RecursiveBaFactory::new(cfg, keys2[0].clone(), pki2);
        Log::slot_rounds(&cfg, &f)
    };
    assert!(
        report.rounds < 2 * slot_rounds,
        "pipelined run took {} rounds, sequential would need ~{}",
        report.rounds,
        slots * slot_rounds
    );
    // Per-session accounting is populated on the threaded runtime too,
    // one bucket per slot, each at the adaptive word cost.
    assert_eq!(report.metrics.per_session.len(), slots as usize);
    for stats in report.metrics.per_session.values() {
        assert!(stats.counters.words <= 22 * n as u64);
    }
}

#[test]
fn strong_ba_on_threads_with_crash() {
    let n = 5usize;
    let cfg = SystemConfig::new(n, 0xc2).unwrap();
    let (pki, keys) = trusted_setup(n, 0xc2);
    let crashed = ProcessId(2);
    let mut actors: Vec<Box<dyn AnyActor<Msg = SbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == crashed {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let sba: SbaProc = StrongBa::new(cfg, id, key, pki.clone(), factory, true);
            actors.push(Box::new(LockstepAdapter::new(id, sba)));
        }
    }
    let report = run_cluster(actors, cluster_config(vec![crashed]));
    assert!(report.completed);
    for a in report.actors.iter().filter(|a| a.id() != crashed) {
        let l: &LockstepAdapter<SbaProc> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(true), "strong unanimity on threads");
    }
}

#[test]
fn cluster_and_simulator_agree_on_words() {
    // The two runtimes implement the same accounting; a failure-free weak
    // BA must cost identical words on both.
    let n = 5usize;
    let inputs = vec![3u64; n];
    let faults = vec![Fault::None; n];
    let mut sim = weak_ba_sim(&inputs, &faults);
    sim.run_until_done(round_budget(n)).unwrap();
    let sim_words = sim.metrics().correct_words();

    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, inputs[i]);
        actors.push(Box::new(LockstepAdapter::new(id, wba)));
    }
    let report = run_cluster(actors, cluster_config(vec![]));
    assert!(report.completed);
    assert_eq!(report.metrics.correct.words, sim_words);
}

/// Builds the weak-BA actors used by the lossy-link tests.
fn weak_ba_actors(n: usize, input: u64) -> Vec<Box<dyn AnyActor<Msg = WbaM>>> {
    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    keys.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let id = ProcessId(i as u32);
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, input);
            Box::new(LockstepAdapter::new(id, wba)) as _
        })
        .collect()
}

#[test]
fn weak_ba_decides_under_drop_and_delay_links() {
    // n = 5, t = 2. Outbound links of p3 are jittered (delays reorder its
    // traffic past δ) and p4's are cut entirely; both behaviours exceed
    // the synchrony assumption, so p3/p4 count toward f. The three
    // processes on reliable links must still decide — the missing
    // signatures force the fallback path.
    let n = 5usize;
    let factory: LinkPolicyFactory = Arc::new(|me: ProcessId| -> Box<dyn LinkPolicy> {
        match me.0 {
            3 => Box::new(PolicyStack::new().with(Box::new(RandomDelay::new(0xd3, 0.8, 3)))),
            4 => Box::new(|_l: Link, _r: u64| LinkFate::Drop),
            _ => Box::new(|_l: Link, _r: u64| LinkFate::Deliver),
        }
    });
    let corrupt = vec![ProcessId(3), ProcessId(4)];
    let config = ClusterConfig { link_policy: Some(factory), ..cluster_config(corrupt.clone()) };
    let report = run_cluster(weak_ba_actors(n, 7), config);
    assert!(report.completed, "correct processes must decide despite lossy links");
    assert!(report.aborted.is_none());

    let mut decisions = Vec::new();
    let mut any_fallback = false;
    for a in report.actors.iter().filter(|a| !corrupt.contains(&a.id())) {
        let l: &LockstepAdapter<WbaProc> = a.as_any().downcast_ref().unwrap();
        decisions.push(l.inner().output().expect("correct process decided"));
        any_fallback |= l.inner().used_fallback();
    }
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement: {decisions:?}");
    assert_eq!(decisions[0], Decision::Value(7), "unanimous correct inputs decide");
    assert!(any_fallback, "dropped signatures must force the fallback path");

    // The injected fates are visible in the per-link counters.
    let m = &report.metrics;
    assert!(
        (0..n as u32).filter(|&q| q != 4).all(|q| {
            let l = m.link(ProcessId(4), ProcessId(q));
            l.sent > 0 && l.dropped == l.sent && l.delivered == 0
        }),
        "p4's outbound links must drop everything: {:?}",
        m.per_link
    );
    let delayed_from_p3: u64 =
        (0..n as u32).map(|q| m.link(ProcessId(3), ProcessId(q)).delayed).sum();
    assert!(delayed_from_p3 > 0, "p3's links must have delayed traffic");
    // Reliable links delivered every message.
    let l01 = m.link(ProcessId(0), ProcessId(1));
    assert!(l01.sent > 0 && l01.delivered == l01.sent && l01.dropped == 0);
    // Latency histogram covers every (thread, round) pair.
    assert_eq!(m.round_latency.count(), n as u64 * report.rounds);
}

/// A chatty test actor for transport-level scenarios: broadcasts every
/// round until it has heard `target` messages.
struct Chatty {
    id: ProcessId,
    heard: usize,
    target: usize,
    slow: Option<Duration>,
}

impl meba::sim::Actor for Chatty {
    type Msg = ChatM;
    fn id(&self) -> ProcessId {
        self.id
    }
    fn on_round(&mut self, ctx: &mut meba::sim::RoundCtx<'_, ChatM>) {
        if let Some(d) = self.slow {
            std::thread::sleep(d);
        }
        if !self.done() {
            ctx.broadcast(ChatM);
        }
        self.heard += ctx.inbox().len();
    }
    fn done(&self) -> bool {
        self.heard >= self.target
    }
}

#[derive(Clone, Debug)]
struct ChatM;
impl meba::sim::Message for ChatM {
    fn words(&self) -> u64 {
        1
    }
}

fn chatties(
    n: usize,
    target: usize,
    slow: Option<Duration>,
) -> Vec<Box<dyn AnyActor<Msg = ChatM>>> {
    (0..n)
        .map(|i| Box::new(Chatty { id: ProcessId(i as u32), heard: 0, target, slow }) as _)
        .collect()
}

#[test]
fn partition_heals_and_cluster_completes() {
    // {p0, p1} is split from {p2, p3, p4} for rounds 1..6; traffic inside
    // each side flows, crossing traffic is dropped, and after the heal
    // everyone catches up and completes.
    let n = 5usize;
    let left = vec![ProcessId(0), ProcessId(1)];
    let factory: LinkPolicyFactory = Arc::new(move |_me: ProcessId| -> Box<dyn LinkPolicy> {
        Box::new(OneShotPartition::new(1, 5, left.clone()))
    });
    let config = ClusterConfig { link_policy: Some(factory), ..cluster_config(vec![]) };
    let report = run_cluster(chatties(n, 25, None), config);
    assert!(report.completed, "the partition heals; the cluster must finish");
    assert!(report.aborted.is_none());
    let m = &report.metrics;
    let crossing = m.link(ProcessId(0), ProcessId(2));
    assert!(crossing.dropped > 0, "crossing links must drop during the partition");
    let inside = m.link(ProcessId(0), ProcessId(1));
    assert_eq!(inside.dropped, 0, "links inside a side are untouched");
    assert_eq!(m.link(ProcessId(2), ProcessId(3)).dropped, 0);
}

#[test]
fn partitioned_slow_cluster_aborts_with_diagnostic() {
    // δ = 1 ms against 4 ms of processing: sustained overruns under an
    // Abort policy must stop the run with a structured diagnostic, while
    // the partition's drops still show up in the per-link counters.
    let n = 4usize;
    let left = vec![ProcessId(0), ProcessId(1)];
    let factory: LinkPolicyFactory = Arc::new(move |_me: ProcessId| -> Box<dyn LinkPolicy> {
        Box::new(OneShotPartition::new(0, u64::MAX, left.clone()))
    });
    let config = ClusterConfig {
        delta: Duration::from_millis(1),
        max_rounds: 200,
        link_policy: Some(factory),
        overrun_window: 2,
        overrun_action: OverrunAction::Abort,
        ..ClusterConfig::default()
    };
    let report = run_cluster(chatties(n, usize::MAX, Some(Duration::from_millis(4))), config);
    assert!(!report.completed);
    assert!(report.overruns > 0, "slow rounds must be counted");
    let diag = report.aborted.expect("sustained overruns must abort with a diagnostic");
    assert!(
        matches!(diag.reason, AbortReason::SustainedOverruns { window: 2, .. }),
        "unexpected reason: {:?}",
        diag.reason
    );
    assert!(diag.overruns > 0);
    assert!(report.rounds < 200, "abort must beat the round budget");
    assert!(
        report.metrics.link(ProcessId(0), ProcessId(2)).dropped > 0,
        "partition drops recorded up to the abort"
    );
}

// ---------------------------------------------------------------------
// The same scenarios over real loopback TCP (meba-wire): canonical
// codec, framed sockets, versioned handshake — same config and report
// surface, so the assertions port almost verbatim.
// ---------------------------------------------------------------------

use meba::wire::{
    run_tcp_cluster, SocketFate, SocketPolicy, SocketPolicyFactory, TcpClusterConfig,
};

fn tcp_config(corrupt: Vec<ProcessId>) -> TcpClusterConfig {
    TcpClusterConfig {
        cluster: ClusterConfig {
            delta: Duration::from_millis(5),
            max_rounds: 3_000,
            corrupt,
            ..ClusterConfig::default()
        },
        ..TcpClusterConfig::default()
    }
}

#[test]
fn bb_over_loopback_tcp_failure_free() {
    let n = 5usize;
    let cfg = SystemConfig::new(n, 0xc1).unwrap();
    let (pki, keys) = trusted_setup(n, 0xc1);
    let sender = ProcessId(0);
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let bb: BbProc = if id == sender {
            Bb::new_sender(cfg, id, key, pki.clone(), factory, 17u64)
        } else {
            Bb::new(cfg, id, key, pki.clone(), factory, sender)
        };
        actors.push(Box::new(LockstepAdapter::new(id, bb)));
    }
    let tcp = run_tcp_cluster(actors, &cfg, tcp_config(vec![])).unwrap();
    let report = &tcp.report;
    assert!(report.completed, "TCP cluster must terminate");
    for a in &report.actors {
        let l: &LockstepAdapter<BbProc> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(Decision::Value(17)));
    }
    // Failure-free silent vetting survives the transport: the O(n) word
    // envelope is the same one the channel runtimes satisfy.
    assert!(report.metrics.correct.words <= 25 * n as u64);
    // Byte accounting rides along: every correct word costs a bounded
    // number of canonical-encoding bytes.
    let m = &report.metrics.correct;
    assert!(m.bytes > 0, "byte counters must be populated over TCP");
    assert!(m.bytes <= m.words * meba::wire::BYTES_PER_WORD, "bytes/word over budget");
    // Socket reality: frames actually crossed sockets, decoded cleanly,
    // and no link had to reconnect on a healthy loopback.
    assert!(tcp.frames_sent > 0);
    assert!(tcp.socket_bytes > tcp.frames_sent * 4, "frame bytes include payloads");
    assert_eq!(tcp.decode_errors, 0);
    assert_eq!(tcp.reconnects, 0);
    for (link, stats) in &report.metrics.per_link {
        assert_eq!(stats.dropped, 0, "{link} must not drop");
        assert_eq!(stats.delivered, stats.sent, "{link} must deliver everything");
    }
}

#[test]
fn weak_ba_over_tcp_decides_under_socket_faults() {
    // The channel-runtime lossy-link scenario on sockets: p3's frames are
    // jittered and its p3→p0 connection severed once (exercising
    // reconnect), p4's frames are all dropped at the socket edge. The
    // three processes on healthy links must still decide.
    let n = 5usize;
    let factory: SocketPolicyFactory = Arc::new(|me: ProcessId| -> Box<dyn SocketPolicy> {
        match me.0 {
            3 => {
                // Sever the first frame bound for p0 (forcing a re-dial
                // when the next one comes), jitter the rest.
                let mut severed = false;
                let mut delay = RandomDelay::new(0xd3, 0.8, 3);
                Box::new(move |l: Link, r: u64| {
                    if !severed && l.to == ProcessId(0) {
                        severed = true;
                        SocketFate::Sever
                    } else {
                        delay.fate(l, r).into()
                    }
                })
            }
            4 => Box::new(|_l: Link, _r: u64| SocketFate::Drop),
            _ => Box::new(|_l: Link, _r: u64| SocketFate::Forward),
        }
    });
    let corrupt = vec![ProcessId(3), ProcessId(4)];
    let config = TcpClusterConfig { socket_policy: Some(factory), ..tcp_config(corrupt.clone()) };
    let tcp = run_tcp_cluster(weak_ba_actors(n, 7), &SystemConfig::new(n, 0x3a).unwrap(), config)
        .unwrap();
    let report = &tcp.report;
    assert!(report.completed, "correct processes must decide despite socket faults");
    assert!(report.aborted.is_none());

    let mut decisions = Vec::new();
    for a in report.actors.iter().filter(|a| !corrupt.contains(&a.id())) {
        let l: &LockstepAdapter<WbaProc> = a.as_any().downcast_ref().unwrap();
        decisions.push(l.inner().output().expect("correct process decided"));
    }
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement: {decisions:?}");
    assert_eq!(decisions[0], Decision::Value(7), "unanimous correct inputs decide");

    // The injected fates are visible in the same per-link counters.
    let m = &report.metrics;
    assert!(
        (0..n as u32).filter(|&q| q != 4).all(|q| {
            let l = m.link(ProcessId(4), ProcessId(q));
            l.sent > 0 && l.dropped == l.sent && l.delivered == 0
        }),
        "p4's outbound frames must all drop: {:?}",
        m.per_link
    );
    let delayed_from_p3: u64 =
        (0..n as u32).map(|q| m.link(ProcessId(3), ProcessId(q)).delayed).sum();
    assert!(delayed_from_p3 > 0, "p3's links must have delayed traffic");
    // The sever really tore a connection down and the link re-dialed.
    assert!(tcp.reconnects >= 1, "severed p3→p0 must reconnect");
}

#[test]
fn handshake_rejects_version_and_config_mismatch() {
    use meba::wire::handshake::{client_handshake, server_handshake};
    use meba::wire::{config_digest, Hello, WireError, PROTOCOL_VERSION};
    use std::net::{TcpListener, TcpStream};

    let n = 5usize;
    let ours_cfg = SystemConfig::new(n, 0xc1).unwrap();
    let ours = Hello {
        version: PROTOCOL_VERSION,
        id: ProcessId(0),
        config_digest: config_digest(&ours_cfg),
        domain: 9,
    };

    let run = |client_hello: Hello| -> WireError {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ours = ours.clone();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            server_handshake::<TcpStream>(&mut stream, &ours, n)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        // The dialer only learns the connection died; the structured
        // diagnostic stays with the acceptor that rejected it.
        let client = client_handshake(&mut stream, &client_hello, ProcessId(0), n);
        assert!(client.is_err());
        server.join().unwrap().expect_err("server must reject the hello")
    };

    let stale = Hello { version: PROTOCOL_VERSION + 1, id: ProcessId(1), ..ours.clone() };
    match run(stale) {
        WireError::VersionMismatch { ours: v_ours, theirs } => {
            assert_eq!(v_ours, PROTOCOL_VERSION);
            assert_eq!(theirs, PROTOCOL_VERSION + 1);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }

    let other_cfg = SystemConfig::new(n, 0xdead).unwrap();
    let misconfigured =
        Hello { id: ProcessId(1), config_digest: config_digest(&other_cfg), ..ours.clone() };
    match run(misconfigured) {
        WireError::ConfigMismatch { ours: d_ours, theirs } => {
            assert_eq!(d_ours, config_digest(&ours_cfg));
            assert_eq!(theirs, config_digest(&other_cfg));
        }
        other => panic!("expected ConfigMismatch, got {other}"),
    }

    let wrong_domain = Hello { id: ProcessId(1), domain: 10, ..ours.clone() };
    match run(wrong_domain) {
        WireError::DomainMismatch { ours: 9, theirs: 10 } => {}
        other => panic!("expected DomainMismatch, got {other}"),
    }
}

#[test]
fn escalation_recovers_a_slow_cluster() {
    // Same slow actors, but the Escalate policy stretches δ until rounds
    // fit, so the run completes instead of aborting.
    let n = 3usize;
    let config = ClusterConfig {
        delta: Duration::from_millis(1),
        max_rounds: 500,
        overrun_window: 2,
        overrun_action: OverrunAction::Escalate {
            multiplier: 4,
            max_delta: Duration::from_millis(64),
        },
        ..ClusterConfig::default()
    };
    let report = run_cluster(chatties(n, 20, Some(Duration::from_millis(3))), config);
    assert!(report.completed, "escalated δ must let the cluster finish");
    assert!(!report.escalations.is_empty());
    assert!(report.escalations.iter().all(|e| e.new_delta > e.old_delta));
}
