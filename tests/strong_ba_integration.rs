//! Integration tests: binary strong BA (Algorithm 5) with the real
//! recursive fallback.

mod common;

use common::*;
use meba::adversary::EquivocatingStrongLeader;
use meba::prelude::*;

#[test]
fn strong_unanimity_failure_free() {
    for n in [3usize, 5, 9, 17] {
        for v in [true, false] {
            let faults = vec![Fault::None; n];
            let mut sim = strong_ba_sim(&vec![v; n], &faults);
            sim.run_until_done(round_budget(n)).unwrap();
            let d = assert_agreement(&strong_ba_decisions(&sim, &faults));
            assert_eq!(d, v, "n={n}, v={v}");
        }
    }
}

#[test]
fn failure_free_is_linear_words() {
    let mut series = Vec::new();
    for n in [9usize, 17, 33, 65] {
        let faults = vec![Fault::None; n];
        let mut sim = strong_ba_sim(&vec![true; n], &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        series.push((n, sim.metrics().correct_words()));
    }
    for (n, words) in &series {
        assert!(*words <= 9 * *n as u64, "n={n}: {words} words (expected O(n))");
    }
    // Doubling n roughly doubles the words — linear, not quadratic.
    for w in series.windows(2) {
        let ratio = w[1].1 as f64 / w[0].1 as f64;
        assert!(ratio < 3.0, "super-linear growth: {series:?}");
    }
}

#[test]
fn strong_unanimity_with_crashed_followers() {
    // One crashed follower breaks the (n, n) certificate and forces the
    // quadratic fallback — strong unanimity must still hold.
    let mut faults = vec![Fault::None; 9];
    faults[5] = Fault::Idle;
    let mut sim = strong_ba_sim(&[false; 9], &faults);
    sim.run_until_done(round_budget(9)).unwrap();
    let d = assert_agreement(&strong_ba_decisions(&sim, &faults));
    assert!(!d);
    for i in (0..9).filter(|&i| i != 5) {
        let a: &LockstepAdapter<SbaProc> =
            sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
        assert!(a.inner().used_fallback());
    }
}

#[test]
fn crashed_leader_still_agrees() {
    let mut faults = vec![Fault::None; 7];
    faults[0] = Fault::Idle;
    let mut sim = strong_ba_sim(&[true; 7], &faults);
    sim.run_until_done(round_budget(7)).unwrap();
    let d = assert_agreement(&strong_ba_decisions(&sim, &faults));
    assert!(d, "strong unanimity among correct processes");
}

#[test]
fn max_crashes_agree() {
    // n = 9: t = 4 crashes including the leader.
    let mut faults = vec![Fault::None; 9];
    for i in [0usize, 2, 4, 6] {
        faults[i] = Fault::Idle;
    }
    let mut sim = strong_ba_sim(&[true; 9], &faults);
    sim.run_until_done(round_budget(9)).unwrap();
    let d = assert_agreement(&strong_ba_decisions(&sim, &faults));
    assert!(d);
}

#[test]
fn mixed_inputs_agree_under_crash() {
    let inputs = [true, false, true, false, true, false, true];
    let mut faults = vec![Fault::None; 7];
    faults[3] = Fault::CrashAt(2);
    let mut sim = strong_ba_sim(&inputs, &faults);
    sim.run_until_done(round_budget(7)).unwrap();
    assert_agreement(&strong_ba_decisions(&sim, &faults));
}

#[test]
fn equivocating_leader_cannot_split_decisions() {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0x5b).unwrap();
    let (pki, keys) = trusted_setup(n, 0xdead);
    // Inputs split 3 true / 3 false among correct; the Byzantine leader
    // certifies both values using its own signature as top-up.
    let inputs = [true, true, true, false, false, false];
    let mut actors: Vec<Box<dyn AnyActor<Msg = SbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i == 0 {
            actors.push(Box::new(EquivocatingStrongLeader::new(
                cfg,
                id,
                pki.clone(),
                vec![key],
                vec![ProcessId(1), ProcessId(2), ProcessId(3)],
                vec![ProcessId(4), ProcessId(5), ProcessId(6)],
            )));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let sba: SbaProc = StrongBa::new(cfg, id, key, pki.clone(), factory, inputs[i - 1]);
            actors.push(Box::new(LockstepAdapter::new(id, sba)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(ProcessId(0)).build();
    sim.run_until_done(round_budget(n)).unwrap();
    let faults: Vec<Fault> =
        (0..n).map(|i| if i == 0 { Fault::Idle } else { Fault::None }).collect();
    assert_agreement(&strong_ba_decisions(&sim, &faults));
}

#[test]
fn chaos_does_not_break_strong_ba() {
    for seed in [7u64, 13, 21] {
        let mut faults = vec![Fault::None; 7];
        faults[4] = Fault::Chaos(seed);
        let mut sim = strong_ba_sim(&[true; 7], &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        let d = assert_agreement(&strong_ba_decisions(&sim, &faults));
        assert!(d, "strong unanimity under chaos, seed {seed}");
    }
}
