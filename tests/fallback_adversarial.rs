//! Adversarial tests for the fallback substrate: Dolev–Strong under
//! sender equivocation, graded agreement under certificate splits, and
//! the recursive BA with a Byzantine-majority half.

mod common;

use common::Fault;
use meba::adversary::{ChaosActor, DsEquivocatingSender, GaSplitEchoer};
use meba::fallback::{
    DolevStrongBb, DsBbMsg, GaInstance, InstanceId, RecBaMsg, RecursiveBa, Scope, GA_STEPS,
};
use meba::prelude::*;

type DsM = DsBbMsg<u64>;
type RecM = RecBaMsg<u64>;

#[test]
fn dolev_strong_equivocating_sender_yields_bot() {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xd5).unwrap();
    let (pki, keys) = trusted_setup(n, 0xd5);
    let sender = ProcessId(0);
    let mut actors: Vec<Box<dyn AnyActor<Msg = DsM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == sender {
            actors.push(Box::new(DsEquivocatingSender::new(
                cfg,
                key,
                pki.clone(),
                1u64,
                2u64,
                (1..4).map(ProcessId).collect(),
                (4..7).map(ProcessId).collect(),
            )));
        } else {
            let ds: DolevStrongBb<u64> =
                DolevStrongBb::new(&cfg, sender, id, key, pki.clone(), None);
            actors.push(Box::new(LockstepAdapter::new(id, ds)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(sender).build();
    sim.run_until_done(100).unwrap();
    for i in 1..n as u32 {
        let a: &LockstepAdapter<DolevStrongBb<u64>> =
            sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        let d = a.inner().output().expect("decided");
        assert!(d.is_bot(), "cross-forwarded chains must expose the equivocation (p{i} got {d:?})");
    }
}

/// Drives raw GA instances alongside the split-echo attacker and checks
/// the graded-consistency invariant.
#[test]
fn graded_agreement_survives_certificate_split() {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0x6a).unwrap();
    let (pki, keys) = trusted_setup(n, 0x6a);
    let inst = InstanceId::new(Scope::full(n), 0);
    let byz = [1u32, 3, 5];
    let cohort: Vec<SecretKey> = byz.iter().map(|&i| keys[i as usize].clone()).collect();

    // Correct inputs split 2/2 so the attacker can certify both values
    // (2 honest sigs + 3 cohort sigs = 5 >= majority 4 for each).
    let inputs = [10u64, 0, 10, 0, 20, 0, 20];

    /// Wraps a GaInstance as a lockstep actor.
    struct GaActor {
        me: ProcessId,
        ga: GaInstance<u64>,
    }
    impl Actor for GaActor {
        type Msg = RecM;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, RecM>) {
            let inbox: Vec<(ProcessId, &RecM)> =
                ctx.inbox().iter().map(|e| (e.from, &e.msg)).collect();
            let mut out = Vec::new();
            self.ga.on_step(ctx.round().as_u64(), &inbox, &mut out);
            for m in out {
                ctx.broadcast(m);
            }
        }
        fn done(&self) -> bool {
            self.ga.result().is_some()
        }
    }
    use meba_sim::RoundCtx;

    let mut actors: Vec<Box<dyn AnyActor<Msg = RecM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i as u32 == 1 {
            actors.push(Box::new(GaSplitEchoer::<u64, RecM>::new(
                cfg,
                id,
                pki.clone(),
                cohort.clone(),
                inst,
                10,
                20,
                vec![ProcessId(0), ProcessId(2)],
                vec![ProcessId(4), ProcessId(6)],
            )));
        } else if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let ga = GaInstance::new(inst, cfg.session(), id, key, pki.clone(), inputs[i]);
            actors.push(Box::new(GaActor { me: id, ga }));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_rounds(GA_STEPS + 1);

    let results: Vec<(u64, u8)> = [0u32, 2, 4, 6]
        .iter()
        .map(|&i| {
            let a: &GaActor = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            *a.ga.result().expect("graded")
        })
        .collect();
    // Graded consistency: if any honest output has grade 2 on v, every
    // honest output must carry v with grade >= 1.
    if let Some((v2, _)) = results.iter().find(|(_, g)| *g == 2) {
        for (v, g) in &results {
            assert!(*g >= 1, "grade-2 exists but {results:?}");
            assert_eq!(v, v2, "conflicting grade-2/1 values: {results:?}");
        }
    }
    // And never two different grade-2 values.
    let twos: Vec<u64> = results.iter().filter(|(_, g)| *g == 2).map(|(v, _)| *v).collect();
    assert!(twos.windows(2).all(|w| w[0] == w[1]), "two conflicting grade-2 outputs: {results:?}");
}

#[test]
fn recursive_ba_with_byzantine_majority_half_agrees() {
    // n = 9 splits into [0,5) and [5,9). Crash 4 of the left half's 5
    // members: the left is Byzantine-majority, and agreement must come
    // from the right half's certificate exchange.
    let n = 9usize;
    let cfg = SystemConfig::new(n, 0x4e).unwrap();
    let (pki, keys) = trusted_setup(n, 0x4e);
    let crashed = [0u32, 1, 2, 3];
    let inputs = [9u64, 9, 9, 9, 4, 5, 5, 5, 4];
    let mut actors: Vec<Box<dyn AnyActor<Msg = RecM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if crashed.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let rb = RecursiveBa::new(cfg, id, key, pki.clone(), inputs[i]);
            actors.push(Box::new(LockstepAdapter::new(id, rb)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &crashed {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(1_000).unwrap();
    let outs: Vec<u64> = (4..9u32)
        .map(|i| {
            let a: &LockstepAdapter<RecursiveBa<u64>> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.inner().output().expect("decided")
        })
        .collect();
    assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement: {outs:?}");
    assert!(inputs.contains(&outs[0]), "decision must be someone's input");
}

#[test]
fn recursive_ba_under_chaos_replay_agrees() {
    let n = 9usize;
    let cfg = SystemConfig::new(n, 0xca).unwrap();
    let (pki, keys) = trusted_setup(n, 0xca);
    for seed in [3u64, 17, 99] {
        let byz = [2u32, 6];
        let mut actors: Vec<Box<dyn AnyActor<Msg = RecM>>> = Vec::new();
        for (i, key) in keys.iter().cloned().enumerate() {
            let id = ProcessId(i as u32);
            if byz.contains(&(i as u32)) {
                actors.push(Box::new(ChaosActor::new(id, seed, 5)));
            } else {
                let rb = RecursiveBa::new(cfg, id, key, pki.clone(), 7u64);
                actors.push(Box::new(LockstepAdapter::new(id, rb)));
            }
        }
        let mut b = SimBuilder::new(actors);
        for &c in &byz {
            b = b.corrupt(ProcessId(c));
        }
        let mut sim = b.build();
        sim.run_until_done(1_000).unwrap();
        for i in (0..n as u32).filter(|i| !byz.contains(i)) {
            let a: &LockstepAdapter<RecursiveBa<u64>> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert_eq!(
                a.inner().output(),
                Some(7),
                "strong unanimity under chaos (seed {seed}, p{i})"
            );
        }
    }
}

#[test]
fn weak_ba_with_slack_resilience() {
    // §8 future direction: the bounds generalize to n = αt + β. Our
    // implementation accepts any n >= 2t + 1; with n = 11, t = 3 the
    // adaptive bound improves to (11-3-1)/2 = 3.
    let n = 11usize;
    let t = 3usize;
    let cfg = SystemConfig::with_resilience(n, t, 0x51).unwrap();
    assert_eq!(cfg.adaptive_fault_bound(), 3);
    let (pki, keys) = trusted_setup(n, 0x51);
    let crashed = [1u32, 2]; // f = 2 < 3: no fallback expected
    type Wba = WeakBa<u64, AlwaysValid, RecursiveBaFactory>;
    type Msg = <Wba as SubProtocol>::Msg;
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if crashed.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 8u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &crashed {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(4_000).unwrap();
    for i in (0..n as u32).filter(|i| !crashed.contains(i)) {
        let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(a.inner().output(), Some(Decision::Value(8)));
        assert!(!a.inner().used_fallback(), "f=2 below the improved bound");
    }
    let _ = Fault::None; // keep the shared-harness module linked
}
