//! Property-based tests: agreement, validity and termination must hold
//! for *every* randomly generated corruption pattern, crash schedule,
//! chaos seed and input assignment.

mod common;

use common::*;
use meba::prelude::*;
use proptest::prelude::*;

/// Generates a fault vector for `n` processes with at most `t` Byzantine.
fn faults_strategy(n: usize) -> impl Strategy<Value = Vec<Fault>> {
    let t = (n - 1) / 2;
    let one = prop_oneof![
        3 => Just(Fault::None),
        1 => Just(Fault::Idle),
        1 => (0u64..40).prop_map(Fault::CrashAt),
        1 => (0u64..u64::MAX).prop_map(Fault::Chaos),
    ];
    proptest::collection::vec(one, n).prop_map(move |mut v| {
        // Enforce the resilience bound: demote excess faults to correct.
        let mut seen = 0;
        for f in v.iter_mut() {
            if f.is_byzantine() {
                seen += 1;
                if seen > t {
                    *f = Fault::None;
                }
            }
        }
        v
    })
}

/// The checked-in proptest shrink (`proptest_protocols.proptest-regressions`)
/// replayed as a plain deterministic test, so the historical failure stays
/// pinned even if the regression file is pruned: p4 crashes at round 23 —
/// mid-protocol, after signing but before relaying — and BB with a correct
/// silent-value sender must still reach agreement on the sender's input.
#[test]
fn bb_regression_crash_at_23_mid_relay() {
    let faults = [
        Fault::None,
        Fault::None,
        Fault::None,
        Fault::None,
        Fault::CrashAt(23),
        Fault::None,
        Fault::None,
    ];
    let (sender, input) = (0u32, 0u64);
    let mut sim = bb_sim(sender, input, &faults);
    sim.run_until_done(round_budget(7)).unwrap();
    let ds = bb_decisions(&sim, &faults);
    let d = assert_agreement(&ds);
    assert_eq!(d, Decision::Value(input), "correct sender validity");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn weak_ba_agreement_any_faults(
        faults in faults_strategy(7),
        inputs in proptest::collection::vec(0u64..5, 7),
    ) {
        let mut sim = weak_ba_sim(&inputs, &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        let ds = weak_ba_decisions(&sim, &faults);
        let d = assert_agreement(&ds);
        // Unique validity under AlwaysValid: a concrete decision must be
        // *some* existing value (any u64 is "valid", but the protocol only
        // ever moves proposed values around) — sanity-check it is one of
        // the inputs when not ⊥.
        if let Decision::Value(v) = d {
            prop_assert!(inputs.contains(&v), "decision {v} not among inputs {inputs:?}");
        }
    }

    #[test]
    fn weak_ba_unanimity_under_crashes(
        crash_rounds in proptest::collection::vec(0u64..60, 3),
        victims in proptest::sample::subsequence(vec![0usize,1,2,3,4,5,6,7,8], 3),
    ) {
        let mut faults = vec![Fault::None; 9];
        for (v, r) in victims.iter().zip(crash_rounds.iter()) {
            faults[*v] = Fault::CrashAt(*r);
        }
        let mut sim = weak_ba_sim(&[6u64; 9], &faults);
        sim.run_until_done(round_budget(9)).unwrap();
        let ds = weak_ba_decisions(&sim, &faults);
        let d = assert_agreement(&ds);
        // All correct processes propose 6 and the only values in the
        // system are 6 (crash faults cannot invent values), so unique
        // validity forces the decision to 6.
        prop_assert_eq!(d, Decision::Value(6));
    }

    #[test]
    fn bb_agreement_and_validity_any_faults(
        faults in faults_strategy(7),
        sender in 0u32..7,
        input in 0u64..100,
    ) {
        let mut sim = bb_sim(sender, input, &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        let ds = bb_decisions(&sim, &faults);
        let d = assert_agreement(&ds);
        if !faults[sender as usize].is_byzantine() {
            prop_assert_eq!(d, Decision::Value(input), "correct sender validity");
        }
    }

    #[test]
    fn strong_ba_agreement_and_unanimity(
        faults in faults_strategy(7),
        inputs in proptest::collection::vec(any::<bool>(), 7),
    ) {
        let mut sim = strong_ba_sim(&inputs, &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        let ds = strong_ba_decisions(&sim, &faults);
        let d = assert_agreement(&ds);
        let honest: Vec<bool> = (0..7)
            .filter(|&i| !faults[i].is_byzantine())
            .map(|i| inputs[i])
            .collect();
        if honest.iter().all(|&v| v) {
            prop_assert!(d, "strong unanimity (all true)");
        }
        if honest.iter().all(|&v| !v) {
            prop_assert!(!d, "strong unanimity (all false)");
        }
    }

    #[test]
    fn simulation_is_deterministic(
        faults in faults_strategy(5),
        inputs in proptest::collection::vec(0u64..9, 5),
    ) {
        let run = || {
            let mut sim = weak_ba_sim(&inputs, &faults);
            sim.run_until_done(round_budget(5)).unwrap();
            (
                weak_ba_decisions(&sim, &faults),
                sim.metrics().correct_words(),
                sim.round(),
            )
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }
}

proptest! {
    // Each case runs two full multi-slot logs; keep the case count low.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    // The pipelined log is an *optimization*, not a different protocol:
    // under the same fault schedule it must commit exactly the entry
    // sequence the sequential log commits. Faults are restricted to
    // `Idle` (silent from round 0) because they are stride-independent;
    // `CrashAt`/`Chaos` are round-indexed, so the same fault legitimately
    // lands at different instance steps under different strides.
    #[test]
    fn pipelined_log_commits_same_entries_as_sequential(
        idle in proptest::sample::subsequence(vec![0usize, 1, 2, 3, 4], 2),
        keep in 0usize..=2,
        window in 2u64..=4,
    ) {
        let slots = 3;
        let mut faults = vec![Fault::None; 5];
        for &i in &idle[..keep] {
            faults[i] = Fault::Idle;
        }
        let logs_at = |w: u64| {
            let mut sim = log_sim(slots, w, &faults);
            sim.run_until_done(log_round_budget(5, slots)).unwrap();
            let logs = log_entries(&sim, &faults);
            assert_agreement(&logs)
        };
        let sequential = logs_at(1);
        let pipelined = logs_at(window);
        prop_assert_eq!(sequential.len(), slots as usize);
        prop_assert_eq!(&pipelined, &sequential,
            "window {} diverged from sequential under {:?}", window, faults);
    }
}
