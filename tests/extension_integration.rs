//! Integration tests for the extension components: the rotating-leader
//! strong BA with the real fallback (incl. on real threads), the
//! replicated log under a Byzantine proposer, and weak BA with a
//! restrictive external predicate.

mod common;

use common::round_budget;
use meba::adversary::EquivocatingSender;
use meba::core::strong_ba_rotating::RotatingStrongBa;
use meba::core::validity::FnValidity;
use meba::net::{run_cluster, ClusterConfig};
use meba::prelude::*;
use std::time::Duration;

type Rba = RotatingStrongBa<RecursiveBaFactory>;
type RbaM = <Rba as SubProtocol>::Msg;

fn rotating_actors(
    n: usize,
    inputs: &[bool],
    crashed: &[u32],
) -> (Vec<Box<dyn AnyActor<Msg = RbaM>>>, SystemConfig) {
    let cfg = SystemConfig::new(n, 0x20).unwrap();
    let (pki, keys) = trusted_setup(n, 0x20);
    let mut actors: Vec<Box<dyn AnyActor<Msg = RbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if crashed.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let rba = RotatingStrongBa::new(cfg, id, key, pki.clone(), factory, inputs[i]);
            actors.push(Box::new(LockstepAdapter::new(id, rba)));
        }
    }
    (actors, cfg)
}

#[test]
fn rotating_with_real_fallback_beyond_bound() {
    // f = t crashes: the rotation cannot finish; the *real* recursive
    // fallback must deliver unanimity.
    let n = 9usize;
    let crashed = [0u32, 2, 4, 6];
    let (actors, _) = rotating_actors(n, &[true; 9], &crashed);
    let mut b = SimBuilder::new(actors);
    for &c in &crashed {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(round_budget(n)).unwrap();
    for i in (0..n as u32).filter(|i| !crashed.contains(i)) {
        let a: &LockstepAdapter<Rba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(a.inner().output(), Some(true));
        assert!(a.inner().used_fallback());
    }
}

#[test]
fn rotating_on_threads() {
    let n = 7usize;
    let crashed = ProcessId(0);
    let (actors, _) = rotating_actors(n, &[true; 7], &[0]);
    let report = run_cluster(
        actors,
        ClusterConfig {
            delta: Duration::from_millis(2),
            max_rounds: 3_000,
            corrupt: vec![crashed],
            ..ClusterConfig::default()
        },
    );
    assert!(report.completed);
    for a in report.actors.iter().filter(|a| a.id() != crashed) {
        let l: &LockstepAdapter<Rba> = a.as_any().downcast_ref().unwrap();
        assert_eq!(l.inner().output(), Some(true));
        assert!(!l.inner().used_fallback(), "leader rotation avoids the fallback on threads too");
    }
}

#[test]
fn replicated_log_with_equivocating_proposer_slot() {
    // Slot 1's proposer (p1) equivocates inside its BB instance; all
    // correct replicas must still hold identical logs.
    type Log = ReplicatedLog<u64, RecursiveBaFactory>;
    type Msg = <Log as Actor>::Msg;
    let n = 5usize;
    let slots = 3u64;
    let cfg = SystemConfig::new(n, 9).unwrap();
    let (pki, keys) = trusted_setup(n, 77);
    let factory0 = RecursiveBaFactory::new(cfg, keys[0].clone(), pki.clone());
    let slot_rounds = Log::slot_rounds(&cfg, &factory0);

    /// Byzantine replica: honest silence except an equivocating
    /// `SenderValue` burst at the start of its own slot.
    struct EquivocatingReplica {
        me: ProcessId,
        slot: u64,
        slot_rounds: u64,
        inner: EquivocatingSender<u64, <RecursiveBa<BbBaValue<u64>> as SubProtocol>::Msg>,
    }
    impl Actor for EquivocatingReplica {
        type Msg = Msg;
        fn id(&self) -> ProcessId {
            self.me
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Msg>) {
            let r = ctx.round().as_u64();
            if r / self.slot_rounds != self.slot {
                return;
            }
            let step = r % self.slot_rounds;
            // Drive the inner equivocator with the slot-local round.
            let inbox = vec![];
            let mut shadow = RoundCtx::new(Round(step), self.me, ctx.n(), &inbox);
            self.inner.on_round(&mut shadow);
            for (dest, inner) in shadow.take_outbox() {
                let msg = SessionEnvelope { session: SessionId(self.slot), msg: inner };
                match dest {
                    meba::sim::Dest::To(p) => ctx.send(p, msg),
                    meba::sim::Dest::All => ctx.broadcast(msg),
                }
            }
        }
        fn done(&self) -> bool {
            true
        }
    }
    use meba_sim::RoundCtx;

    let byz = ProcessId(1);
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if id == byz {
            // Recompute the per-slot session the honest replicas use.
            let slot_cfg = cfg.with_session(cfg.session().wrapping_mul(1_000_003).wrapping_add(1));
            actors.push(Box::new(EquivocatingReplica {
                me: id,
                slot: 1,
                slot_rounds,
                inner: EquivocatingSender::new(
                    slot_cfg,
                    key,
                    111,
                    222,
                    vec![ProcessId(0), ProcessId(2)],
                    vec![ProcessId(3), ProcessId(4)],
                ),
            }));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let log: Log = ReplicatedLog::new(
                cfg,
                id,
                key,
                pki.clone(),
                factory,
                slots,
                vec![10 * (i as u64 + 1)],
                0,
            );
            actors.push(Box::new(log));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(byz).build();
    sim.run_until_done(slot_rounds * slots + 10).unwrap();

    let mut reference: Option<Vec<LogEntry<u64>>> = None;
    for i in (0..n as u32).filter(|&i| ProcessId(i) != byz) {
        let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(l.log().len(), slots as usize, "p{i} committed all slots");
        match &reference {
            None => reference = Some(l.log().to_vec()),
            Some(r) => assert_eq!(l.log(), &r[..], "p{i} diverged"),
        }
    }
    let log = reference.unwrap();
    // Slots 0 and 2 (honest proposers) committed their commands.
    assert_eq!(log[0].entry, Decision::Value(10));
    assert_eq!(log[2].entry, Decision::Value(30));
    // Slot 1: the equivocator — any agreed entry (111, 222, or ⊥) is fine.
    assert!(matches!(log[1].entry, Decision::Value(111) | Decision::Value(222) | Decision::Bot));
}

#[test]
fn cross_instance_replay_is_rejected_by_domain_separation() {
    // The session-layer replay attack: a Byzantine replica re-sends every
    // slot-0 message (certificates included) into slot 1's session,
    // re-tagged and timed to land at the same instance step. Per-slot
    // signature domain separation makes every replayed signature verify
    // under the wrong session, so slot 1 must still commit its honest
    // proposer's command.
    use meba::adversary::SessionReplayer;
    type Log = ReplicatedLog<u64, RecursiveBaFactory>;
    type Msg = <Log as Actor>::Msg;
    let n = 5usize;
    let slots = 3u64;
    let window = 2u64;
    let cfg = SystemConfig::new(n, 9).unwrap();
    let (pki, keys) = trusted_setup(n, 77);
    let factory0 = RecursiveBaFactory::new(cfg, keys[0].clone(), pki.clone());
    let stride = Log::slot_rounds(&cfg, &factory0).div_ceil(window);
    // Original slot-0 traffic sent at round r is seen by the replayer at
    // r + 1 and re-broadcast at r + 1 + delay, landing in inboxes at
    // r + 2 + delay; with delay = stride - 2 that is instance step r of
    // slot 1 — the exact step the original had in slot 0.
    let delay = stride - 2;
    let byz = ProcessId(4); // proposes none of slots 0..3
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if id == byz {
            actors.push(Box::new(SessionReplayer::new(id, SessionId(0), SessionId(1), delay)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let log: Log = ReplicatedLog::new(
                cfg,
                id,
                key,
                pki.clone(),
                factory,
                slots,
                vec![100 + i as u64],
                0,
            )
            .with_window(window);
            actors.push(Box::new(log));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(byz).rushing(true).build();
    sim.run_until_done(20_000).unwrap();
    assert!(sim.metrics().byzantine.words > 0, "the replay attack must actually fire");
    let mut reference: Option<Vec<LogEntry<u64>>> = None;
    for i in (0..n as u32).filter(|&i| ProcessId(i) != byz) {
        let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(l.log().len(), slots as usize, "p{i} committed all slots");
        match &reference {
            None => reference = Some(l.log().to_vec()),
            Some(r) => assert_eq!(l.log(), &r[..], "p{i} diverged"),
        }
    }
    let log = reference.unwrap();
    assert_eq!(log[0].entry, Decision::Value(100));
    assert_eq!(log[1].entry, Decision::Value(101), "replayed slot-0 certificates rejected");
    assert_eq!(log[2].entry, Decision::Value(102));
}

#[test]
fn decided_but_not_done_instance_answers_help_req_through_mux() {
    // A decided BB instance keeps answering help requests until its
    // schedule ends; the mux must keep it live (not retire it at the
    // decision point) and route the request to it. The Byzantine replica
    // injects a *validly signed* help_req for slot 0's signature domain
    // at exactly the step where deciders answer.
    use meba::adversary::MuxHelpRequester;
    use meba::core::bb::Bb;
    use meba::core::weak_ba::PHASE_ROUNDS;
    type Log = ReplicatedLog<u64, RecursiveBaFactory>;
    type Msg = <Log as Actor>::Msg;
    let n = 5usize;
    let cfg = SystemConfig::new(n, 9).unwrap();
    let (pki, keys) = trusted_setup(n, 77);
    let byz = ProcessId(4);
    // Undecided processes broadcast help_req at weak-BA step n·5; sent at
    // that host round, the forged request is processed one round later —
    // the deciders' answer step.
    let help_round = Bb::<u64, RecursiveBaFactory>::ba_start(&cfg) + cfg.n() as u64 * PHASE_ROUNDS;
    let crypto_session = Log::slot_cfg(&cfg, 0).session();
    let build = |with_attack: bool| {
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.iter().cloned().enumerate() {
            let id = ProcessId(i as u32);
            if id == byz && with_attack {
                actors.push(Box::new(MuxHelpRequester::new(
                    id,
                    key,
                    SessionId(0),
                    crypto_session,
                    help_round,
                )));
            } else if id == byz {
                actors.push(Box::new(IdleActor::new(id)));
            } else {
                let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
                let log: Log = ReplicatedLog::new(
                    cfg,
                    id,
                    key,
                    pki.clone(),
                    factory,
                    1,
                    vec![100 + i as u64],
                    0,
                );
                actors.push(Box::new(log));
            }
        }
        SimBuilder::new(actors).corrupt(byz).build()
    };
    // Baseline: failure-free, nobody asks for help, so the help component
    // stays silent (that silence is the adaptivity argument).
    let mut baseline = build(false);
    baseline.run_until_done(20_000).unwrap();
    let base_help =
        baseline.metrics().by_component.get("weak-ba/help").map(|c| c.words).unwrap_or(0);
    assert_eq!(base_help, 0, "no help traffic in the failure-free baseline");
    // Attack run: each decided-but-not-done replica must answer the
    // request with a Help certificate, through the mux.
    let mut sim = build(true);
    sim.run_until_done(20_000).unwrap();
    let help_words = sim.metrics().by_component.get("weak-ba/help").map(|c| c.words).unwrap_or(0);
    assert!(help_words > 0, "decided instances must answer the routed help_req");
    for i in (0..n as u32).filter(|&i| ProcessId(i) != byz) {
        let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        assert_eq!(l.log().len(), 1);
        assert_eq!(l.log()[0].entry, Decision::Value(100));
    }
}

#[test]
fn weak_ba_restrictive_predicate_rejects_byzantine_proposals() {
    // Predicate: only even values are valid. A Byzantine leader proposing
    // an odd value gets no votes; the next correct leader's even value
    // wins. (All correct inputs are even, per the validity precondition.)
    use meba::adversary::WastefulWeakLeader;
    type Wba = WeakBa<u64, FnValidity<fn(&u64) -> bool>, RecursiveBaFactory>;
    type Msg = <Wba as SubProtocol>::Msg;
    fn is_even(v: &u64) -> bool {
        v.is_multiple_of(2)
    }
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0x77).unwrap();
    let (pki, keys) = trusted_setup(n, 0x77);
    let byz = ProcessId(1); // phase-1 leader proposes 99 (odd, invalid)
    let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == byz {
            actors.push(Box::new(WastefulWeakLeader::new(cfg, id, 1, 99u64)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: Wba = WeakBa::new(
                cfg,
                id,
                key,
                pki.clone(),
                FnValidity::new(is_even as fn(&u64) -> bool),
                factory,
                8u64,
            );
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(byz).build();
    sim.run_until_done(round_budget(n)).unwrap();
    for i in (0..n as u32).filter(|&i| ProcessId(i) != byz) {
        let a: &LockstepAdapter<Wba> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        let d = a.inner().output().expect("decided");
        assert_eq!(
            d,
            Decision::Value(8),
            "the invalid proposal must be ignored and the correct value decided"
        );
    }
}
