//! Crash-recovery integration: journal-backed weak BA processes that die
//! and rejoin mid-protocol on both cluster runtimes, audited for
//! equivocation by a double-sign detector over every journaled and
//! every wire-observed signature.

mod common;

use common::*;
use meba::core::weak_ba::PHASE_ROUNDS;
use meba::net::{
    run_cluster_with_recovery, ClusterConfig, OverrunAction, ProcessFate, ProcessFateFactory,
};
use meba::prelude::*;
use meba::sim::faults::Link;
use meba::sim::RoundCtx;
use meba::wire::{run_tcp_cluster_with_recovery, SocketFate, SocketPolicy, TcpClusterConfig};
use meba_net::{ActorRebuilder, RebuiltActor};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Wraps an actor and folds every inbox signature into a shared
/// [`DoubleSignDetector`], so a run is audited against what was actually
/// observed on the wire, not only against the journals.
struct SigObserver {
    inner: Box<dyn AnyActor<Msg = WbaM>>,
    det: Arc<Mutex<DoubleSignDetector>>,
    session: u64,
}

impl Actor for SigObserver {
    type Msg = WbaM;
    fn id(&self) -> ProcessId {
        self.inner.id()
    }
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, WbaM>) {
        {
            let mut det = self.det.lock().unwrap();
            for env in ctx.inbox() {
                det.observe_weak_ba_msg(self.session, env.from, &env.msg);
            }
        }
        self.inner.on_round(ctx);
    }
    fn done(&self) -> bool {
        self.inner.done()
    }
    fn refused_equivocations(&self) -> u64 {
        self.inner.refused_equivocations()
    }
}

fn observed_actors(
    h: &WeakBaRecoveryHarness,
    det: &Arc<Mutex<DoubleSignDetector>>,
) -> Vec<Box<dyn AnyActor<Msg = WbaM>>> {
    let session = h.config().session();
    h.actors()
        .into_iter()
        .map(|inner| {
            Box::new(SigObserver { inner, det: det.clone(), session })
                as Box<dyn AnyActor<Msg = WbaM>>
        })
        .collect()
}

fn observed_rebuilder(
    h: &Arc<WeakBaRecoveryHarness>,
    det: &Arc<Mutex<DoubleSignDetector>>,
) -> ActorRebuilder<WbaM> {
    let base = h.rebuilder();
    let det = det.clone();
    let session = h.config().session();
    Arc::new(move |me| {
        let rb = base(me);
        RebuiltActor {
            actor: Box::new(SigObserver { inner: rb.actor, det: det.clone(), session }),
            resume_step: rb.resume_step,
            replayed_records: rb.replayed_records,
            journal_fsyncs: rb.journal_fsyncs,
        }
    })
}

fn decision_of(a: &dyn AnyActor<Msg = WbaM>) -> Decision<u64> {
    let obs: &SigObserver = a.as_any().downcast_ref().expect("observer-wrapped actor");
    recoverable_decision(obs.inner.as_ref()).unwrap_or_else(|| panic!("p{} did not decide", a.id()))
}

fn crash_fate(victim: u32, at_round: u64, rejoin_after: u64) -> ProcessFateFactory {
    Arc::new(move |p: ProcessId| {
        if p.index() == victim as usize {
            ProcessFate::CrashRestart { at_round, rejoin_after }
        } else {
            ProcessFate::Run
        }
    })
}

/// Scans every journal into the detector and asserts no slot is bound to
/// two different preimages.
fn audit(h: &WeakBaRecoveryHarness, det: &Arc<Mutex<DoubleSignDetector>>) {
    let mut det = det.lock().unwrap();
    for i in 0..h.n() {
        det.scan_journal(ProcessId(i as u32), h.journal_buffer(i)).unwrap();
    }
    det.assert_clean();
}

/// The acceptance sweep: crash the same process at *every* round of
/// phase 1, restart it from its journal, and require agreement, the
/// victim's own decision, zero double-signs, and an adaptive word budget
/// (the crash-restart counts as `f = 1`).
#[test]
fn crash_restart_sweep_over_phase_one() {
    let n = 5usize;
    for crash_round in 0..PHASE_ROUNDS {
        let h = Arc::new(WeakBaRecoveryHarness::new(&vec![7u64; n]));
        let det = Arc::new(Mutex::new(DoubleSignDetector::new()));
        let config = ClusterConfig {
            delta: Duration::from_millis(2),
            max_rounds: 3_000,
            process_fate: Some(crash_fate(1, crash_round, 3)),
            // Stretch δ under CI load instead of missing the synchrony
            // bound — word counts, not wall-clock, are under test here.
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: Duration::from_millis(250),
            },
            ..ClusterConfig::default()
        };
        let report = run_cluster_with_recovery(
            observed_actors(&h, &det),
            Some(observed_rebuilder(&h, &det)),
            config,
        );
        assert!(report.completed, "crash at round {crash_round}: cluster must terminate");
        let decisions: Vec<Decision<u64>> =
            report.actors.iter().map(|a| decision_of(a.as_ref())).collect();
        assert_eq!(
            assert_agreement(&decisions),
            Decision::Value(7),
            "crash at round {crash_round}"
        );
        let rec = &report.metrics.recovery;
        assert_eq!(rec.crash_restarts, 1, "crash at round {crash_round}");
        assert_eq!(rec.refused_equivocations, 0, "honest recovery never conflicts");
        if crash_round > 0 {
            assert!(rec.replayed_records > 0, "crash at round {crash_round} had state to replay");
        }
        // O(n(f+1)) with f = 1: double the measured failure-free envelope
        // (16n, see weak_ba_integration) plus help/rejoin slack.
        let words = report.metrics.correct.words;
        assert!(words <= 24 * (n as u64) * 2, "crash at round {crash_round}: {words} words");
        audit(&h, &det);
    }
}

/// Without a rebuilder the crash is permanent — n = 5 tolerates it, and
/// the survivors' journals still audit clean.
#[test]
fn crash_without_rejoin_is_tolerated_by_survivors() {
    let n = 5usize;
    let h = Arc::new(WeakBaRecoveryHarness::new(&vec![3u64; n]));
    let det = Arc::new(Mutex::new(DoubleSignDetector::new()));
    let config = ClusterConfig {
        delta: Duration::from_millis(2),
        max_rounds: 3_000,
        overrun_action: OverrunAction::Escalate {
            multiplier: 2,
            max_delta: Duration::from_millis(250),
        },
        process_fate: Some(crash_fate(2, 1, u64::MAX)),
        // A process that never comes back counts toward f: the
        // coordinator must not wait for its done flag.
        corrupt: vec![ProcessId(2)],
        ..ClusterConfig::default()
    };
    let report = run_cluster_with_recovery(observed_actors(&h, &det), None, config);
    assert!(report.completed, "survivors must terminate without the victim");
    for a in &report.actors {
        if a.id().index() != 2 {
            assert_eq!(decision_of(a.as_ref()), Decision::Value(3));
        }
    }
    assert_eq!(report.metrics.recovery.crash_restarts, 1);
    audit(&h, &det);
}

/// The TCP acceptance run: a process crash-restarts mid weak-BA while
/// its links also suffer `Drop` and `Delay` socket faults. The restart
/// goes through real socket teardown (every link severed) and the
/// reconnect/re-handshake machinery; catch-up rides the help path.
#[test]
fn tcp_crash_restart_under_socket_faults() {
    struct FlakyLinks {
        victim: ProcessId,
    }
    impl SocketPolicy for FlakyLinks {
        fn fate(&mut self, link: Link, round: u64) -> SocketFate {
            // Rounds 2–5: traffic touching the victim is dropped or
            // delayed, so its recovery must survive a lossy rejoin.
            let touches_victim = link.from == self.victim || link.to == self.victim;
            if touches_victim && (2..=5).contains(&round) {
                if round.is_multiple_of(2) {
                    SocketFate::Drop
                } else {
                    SocketFate::DelayRounds(2)
                }
            } else {
                SocketFate::Forward
            }
        }
    }

    let n = 5usize;
    let h = Arc::new(WeakBaRecoveryHarness::new(&vec![9u64; n]));
    let det = Arc::new(Mutex::new(DoubleSignDetector::new()));
    let victim = ProcessId(1);
    let config = TcpClusterConfig {
        cluster: ClusterConfig {
            delta: Duration::from_millis(12),
            max_rounds: 600,
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: Duration::from_millis(250),
            },
            process_fate: Some(crash_fate(victim.0, 3, 4)),
            reconnect_backoff_cap: Duration::from_millis(20),
            reconnect_jitter: Duration::from_millis(2),
            ..ClusterConfig::default()
        },
        socket_policy: Some(Arc::new(move |_me| {
            Box::new(FlakyLinks { victim }) as Box<dyn SocketPolicy>
        })),
        domain: 14,
        ..TcpClusterConfig::default()
    };
    let report = run_tcp_cluster_with_recovery(
        observed_actors(&h, &det),
        Some(observed_rebuilder(&h, &det)),
        &h.config(),
        config,
    )
    .expect("mesh establishment");
    assert!(report.report.completed, "TCP cluster must terminate: {report:?}");
    let decisions: Vec<Decision<u64>> =
        report.report.actors.iter().map(|a| decision_of(a.as_ref())).collect();
    assert_eq!(assert_agreement(&decisions), Decision::Value(9));
    let rec = &report.report.metrics.recovery;
    assert_eq!(rec.crash_restarts, 1);
    assert_eq!(rec.refused_equivocations, 0);
    assert!(rec.replayed_records > 0, "three executed rounds must replay");
    assert!(report.reconnects > 0, "severed links must re-handshake on rejoin");
    audit(&h, &det);
}
