//! Tests of the weak BA commit/relay machinery (Alg 4 lines 35–47): a
//! Byzantine leader plants a commit certificate in phase 1; later correct
//! leaders must *relay* it (not form fresh commits), the commit level must
//! stay at the original phase, and no decision may ever contradict the
//! planted value.

mod common;

use common::*;
use meba::adversary::LateHelperLeader;
use meba::prelude::*;

/// n = 7, Byzantine {p1 (leader of phase 1), p3, p5}. p1 drives a full
/// commit round for value 20 (everyone commits), then never finalizes.
fn planted_commit_sim() -> (Simulation<WbaM>, Vec<u32>) {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xcc).unwrap();
    let (pki, keys) = trusted_setup(n, 0xcc);
    let byz = vec![1u32, 3, 5];
    let cohort: Vec<SecretKey> = byz.iter().map(|&i| keys[i as usize].clone()).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i as u32 == 1 {
            // Target p0 with the help answer so the run decides 20.
            actors.push(Box::new(LateHelperLeader::new(
                cfg,
                id,
                pki.clone(),
                cohort.clone(),
                1,
                20u64,
                ProcessId(0),
            )));
        } else if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 10u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    (b.build(), byz)
}

#[test]
fn planted_commit_is_relayed_and_level_preserved() {
    let (mut sim, byz) = planted_commit_sim();
    sim.run_until_done(4_000).unwrap();
    for i in (0..7u32).filter(|i| !byz.contains(i)) {
        let a: &LockstepAdapter<WbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        // Every correct process committed to the planted value...
        assert_eq!(a.inner().committed_value(), Some(&20), "p{i}");
        // ...and relays preserve the ORIGINAL level (phase 1), because a
        // relayed certificate carries its own level (Alg 4 line 39).
        assert_eq!(a.inner().commit_level(), 1, "p{i}: relayed commit keeps level 1");
    }
}

#[test]
fn decisions_never_contradict_a_planted_commit() {
    let (mut sim, byz) = planted_commit_sim();
    sim.run_until_done(4_000).unwrap();
    let mut decisions = Vec::new();
    for i in (0..7u32).filter(|i| !byz.contains(i)) {
        let a: &LockstepAdapter<WbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        decisions.push(a.inner().output().expect("decided"));
    }
    // Agreement holds, and since a finalize certificate for 20 exists in
    // the system (the attacker used it to help p0), Lemma 15 says no
    // other finalize certificate can ever exist — the decision is 20.
    assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement: {decisions:?}");
    assert_eq!(decisions[0], Decision::Value(20));
}

#[test]
fn trace_shows_relay_traffic_in_later_phases() {
    let (mut sim0, byz) = planted_commit_sim();
    // Rebuild with tracing enabled (planted_commit_sim has no trace);
    // easiest: step the original and assert via per-round metrics instead.
    sim0.run_until_done(4_000).unwrap();
    let m = sim0.metrics();
    // Phase 2 occupies rounds 5..10: correct processes answer p2's
    // propose with CommitReply and p2 relays — so phase-2 rounds carry
    // correct words even though the phase-1 leader was the proposer of
    // the only fresh certificate.
    let phase2_words: u64 = m.words_per_round[5..10.min(m.words_per_round.len())].iter().sum();
    assert!(phase2_words > 0, "phase 2 must show relay traffic");
    let _ = byz;
}
