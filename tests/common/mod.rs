//! Shared harness for the cross-crate integration tests — a thin
//! re-export of the public `meba-testkit` crate so downstream users get
//! exactly the same facility the suite itself runs on.

#![allow(dead_code)]

pub use meba_testkit::*;
