//! Integration tests: adaptive weak BA (Algorithms 3–4) with the real
//! recursive fallback, under crash, wasteful-leader, and chaos
//! adversaries.

mod common;

use common::*;
use meba::adversary::WastefulWeakLeader;
use meba::prelude::*;

#[test]
fn unanimity_failure_free() {
    for n in [3usize, 5, 7, 9, 11] {
        let faults = vec![Fault::None; n];
        let mut sim = weak_ba_sim(&vec![4u64; n], &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let d = assert_agreement(&weak_ba_decisions(&sim, &faults));
        assert_eq!(d, Decision::Value(4), "unique validity with unanimous inputs, n={n}");
    }
}

#[test]
fn agreement_mixed_inputs() {
    let inputs = [9u64, 8, 7, 6, 5, 4, 3, 2, 1];
    let faults = vec![Fault::None; 9];
    let mut sim = weak_ba_sim(&inputs, &faults);
    sim.run_until_done(round_budget(9)).unwrap();
    let d = assert_agreement(&weak_ba_decisions(&sim, &faults));
    // With AlwaysValid any of the inputs (or ⊥) is a legal outcome, but
    // with no faults the first leader's proposal must win.
    assert_eq!(d, Decision::Value(inputs[1]));
}

#[test]
fn lemma6_no_fallback_below_bound() {
    // n = 13, t = 6: bound = 3. Try f = 0, 1, 2 crashes: never fall back.
    for f in 0..3usize {
        let mut faults = vec![Fault::None; 13];
        for i in 0..f {
            faults[2 * i + 1] = Fault::Idle;
        }
        let mut sim = weak_ba_sim(&[5u64; 13], &faults);
        sim.run_until_done(round_budget(13)).unwrap();
        assert_agreement(&weak_ba_decisions(&sim, &faults));
        for i in (0..13).filter(|&i| !faults[i].is_byzantine()) {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
            assert!(!a.inner().used_fallback(), "Lemma 6 violated at f={f}, p{i}");
        }
    }
}

#[test]
fn max_crashes_use_fallback_and_agree() {
    // n = 9, t = 4 crashes: quorum unreachable, everyone must fall back.
    let mut faults = vec![Fault::None; 9];
    for i in [1usize, 3, 5, 7] {
        faults[i] = Fault::Idle;
    }
    let mut sim = weak_ba_sim(&[2u64; 9], &faults);
    sim.run_until_done(round_budget(9)).unwrap();
    let d = assert_agreement(&weak_ba_decisions(&sim, &faults));
    assert_eq!(d, Decision::Value(2), "unanimous inputs must survive the fallback");
    for i in [0usize, 2, 4, 6, 8] {
        let a: &LockstepAdapter<WbaProc> =
            sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
        assert!(a.inner().used_fallback(), "p{i} should have fallen back");
    }
}

#[test]
fn late_crash_mid_phases_agrees() {
    // Crash processes in the middle of the phase schedule.
    let mut faults = vec![Fault::None; 9];
    faults[1] = Fault::CrashAt(7);
    faults[2] = Fault::CrashAt(12);
    let mut sim = weak_ba_sim(&[6u64; 9], &faults);
    sim.run_until_done(round_budget(9)).unwrap();
    let d = assert_agreement(&weak_ba_decisions(&sim, &faults));
    assert_eq!(d, Decision::Value(6));
}

#[test]
fn wasteful_leaders_realize_linear_growth_and_agreement_holds() {
    // Byzantine leaders p1..p3 each initiate a phase and withhold the
    // certificate; the first correct leader then decides everyone.
    let n = 9usize;
    let cfg = SystemConfig::new(n, 0x3a).unwrap();
    let (pki, keys) = trusted_setup(n, 0xfeed);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    let byz = [1u32, 2, 3];
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if byz.contains(&(i as u32)) {
            actors.push(Box::new(WastefulWeakLeader::new(cfg, id, i as u32, 777u64)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 5u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(round_budget(n)).unwrap();
    let faults: Vec<Fault> =
        (0..n).map(|i| if byz.contains(&(i as u32)) { Fault::Idle } else { Fault::None }).collect();
    let d = assert_agreement(&weak_ba_decisions(&sim, &faults));
    // Wasted proposals are valid under AlwaysValid, so the decision may be
    // the attacker's value or the first correct leader's — agreement is
    // what matters; validity is trivial under AlwaysValid.
    assert!(matches!(d, Decision::Value(_)));
}

#[test]
fn chaos_replays_do_not_break_agreement() {
    for seed in [11u64, 22, 33] {
        let mut faults = vec![Fault::None; 7];
        faults[2] = Fault::Chaos(seed);
        faults[6] = Fault::Chaos(seed ^ 0xabcd);
        let mut sim = weak_ba_sim(&[3, 3, 0, 3, 3, 3, 0], &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        assert_agreement(&weak_ba_decisions(&sim, &faults));
    }
}

#[test]
fn complexity_envelope_failure_free() {
    for n in [5usize, 9, 17, 33] {
        let faults = vec![Fault::None; n];
        let mut sim = weak_ba_sim(&vec![1u64; n], &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let words = sim.metrics().correct_words();
        assert!(words <= 16 * n as u64, "n={n}: {words} words");
    }
}

#[test]
fn commit_level_machinery_engages() {
    // With unanimous inputs and no faults, commits happen in phase 1.
    let faults = vec![Fault::None; 5];
    let mut sim = weak_ba_sim(&[8, 8, 8, 8, 8], &faults);
    sim.run_until_done(round_budget(5)).unwrap();
    for i in 0..5 {
        let a: &LockstepAdapter<WbaProc> =
            sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
        assert_eq!(a.inner().commit_level(), 1, "p{i} committed in phase 1");
    }
}
