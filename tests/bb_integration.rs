//! Integration tests: adaptive Byzantine Broadcast (Algorithms 1–2) with
//! the real recursive fallback, under crash and Byzantine adversaries.

mod common;

use common::*;
use meba::adversary::EquivocatingSender;
use meba::prelude::*;

#[test]
fn validity_failure_free() {
    for n in [3usize, 5, 7, 9] {
        let faults = vec![Fault::None; n];
        let mut sim = bb_sim(0, 7, &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let d = assert_agreement(&bb_decisions(&sim, &faults));
        assert_eq!(d, Decision::Value(7), "n={n}");
    }
}

#[test]
fn validity_with_every_nonsender_crash_position() {
    // n = 7: crash each single non-sender in turn; f=1 < adaptive bound
    // fails for n=7 (bound is 1), so the fallback may run — validity must
    // hold either way.
    for victim in 1..7u32 {
        let mut faults = vec![Fault::None; 7];
        faults[victim as usize] = Fault::Idle;
        let mut sim = bb_sim(0, 31, &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        let d = assert_agreement(&bb_decisions(&sim, &faults));
        assert_eq!(d, Decision::Value(31), "victim p{victim}");
    }
}

#[test]
fn validity_max_crashes() {
    // n = 9, t = 4 crashed non-senders: the worst tolerated crash load.
    let mut faults = vec![Fault::None; 9];
    for i in [2usize, 4, 6, 8] {
        faults[i] = Fault::Idle;
    }
    let mut sim = bb_sim(0, 99, &faults);
    sim.run_until_done(round_budget(9)).unwrap();
    let d = assert_agreement(&bb_decisions(&sim, &faults));
    assert_eq!(d, Decision::Value(99));
}

#[test]
fn agreement_with_silent_sender() {
    for n in [5usize, 9] {
        let mut faults = vec![Fault::None; n];
        faults[0] = Fault::Idle;
        let mut sim = bb_sim(0, 1, &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let d = assert_agreement(&bb_decisions(&sim, &faults));
        assert!(d.is_bot(), "silent sender must yield ⊥, got {d:?}");
    }
}

#[test]
fn agreement_with_equivocating_sender() {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xbb).unwrap();
    let (pki, keys) = trusted_setup(n, 0x5eed);
    let sender = ProcessId(0);
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == sender {
            actors.push(Box::new(EquivocatingSender::new(
                cfg,
                key,
                111u64,
                222u64,
                vec![ProcessId(1), ProcessId(2), ProcessId(3)],
                vec![ProcessId(4), ProcessId(5), ProcessId(6)],
            )));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let bb: BbProc = Bb::new(cfg, id, key, pki.clone(), factory, sender);
            actors.push(Box::new(LockstepAdapter::new(id, bb)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(sender).build();
    sim.run_until_done(round_budget(n)).unwrap();
    let faults: Vec<Fault> =
        (0..n).map(|i| if i == 0 { Fault::Idle } else { Fault::None }).collect();
    let d = assert_agreement(&bb_decisions(&sim, &faults));
    // A Byzantine sender permits any common decision: one of its two
    // values, or ⊥.
    assert!(
        matches!(d, Decision::Value(111) | Decision::Value(222) | Decision::Bot),
        "unexpected decision {d:?}"
    );
}

#[test]
fn agreement_with_sender_crashing_mid_dissemination() {
    // Sender crashes right after round 0: its value is out but it answers
    // nothing afterwards.
    let n = 7usize;
    let mut faults = vec![Fault::None; n];
    faults[0] = Fault::CrashAt(1);
    let mut sim = bb_sim(0, 64, &faults);
    sim.run_until_done(round_budget(n)).unwrap();
    let d = assert_agreement(&bb_decisions(&sim, &faults));
    // The signed value reached everyone, so BB_valid admits only it.
    assert_eq!(d, Decision::Value(64));
}

#[test]
fn agreement_under_chaos_adversary() {
    for seed in [1u64, 2, 3, 4, 5] {
        let mut faults = vec![Fault::None; 7];
        faults[3] = Fault::Chaos(seed);
        faults[5] = Fault::Chaos(seed.wrapping_mul(7919));
        let mut sim = bb_sim(0, 5, &faults);
        sim.run_until_done(round_budget(7)).unwrap();
        let d = assert_agreement(&bb_decisions(&sim, &faults));
        assert_eq!(d, Decision::Value(5), "chaos replay must not break validity (seed {seed})");
    }
}

#[test]
fn adaptive_complexity_failure_free_linear() {
    // E1 envelope: failure-free BB costs O(n) words.
    for n in [5usize, 9, 17, 33] {
        let faults = vec![Fault::None; n];
        let mut sim = bb_sim(0, 1, &faults);
        sim.run_until_done(round_budget(n)).unwrap();
        let words = sim.metrics().correct_words();
        assert!(words <= 25 * n as u64, "n={n}: {words} words (expected O(n))");
    }
}

#[test]
fn crashed_followers_below_bound_cost_nothing_extra() {
    // A crashed *follower* below the adaptive bound leaves phases silent —
    // silence is free, so the cost stays within the failure-free envelope.
    // (The O(n·f) growth of Table 1 is realized by *active* Byzantine
    // leaders; see the wasteful-leader benches.)
    let n = 17usize;
    let faults0 = vec![Fault::None; n];
    let mut sim0 = bb_sim(0, 1, &faults0);
    sim0.run_until_done(round_budget(n)).unwrap();
    let w0 = sim0.metrics().correct_words();

    let mut faults1 = vec![Fault::None; n];
    faults1[4] = Fault::Idle;
    let mut sim1 = bb_sim(0, 1, &faults1);
    sim1.run_until_done(round_budget(n)).unwrap();
    let w1 = sim1.metrics().correct_words();

    let lo = w0.saturating_sub(w0 / 4);
    let hi = w0 + w0 / 4;
    assert!(
        (lo..=hi).contains(&w1),
        "crash-follower run should cost about the same ({w0} vs {w1})"
    );
}

#[test]
fn decide_once_under_faults() {
    // Termination implies each correct process finished with exactly one
    // decision (output() is None until finished; decided_at is stable).
    let mut faults = vec![Fault::None; 7];
    faults[2] = Fault::Idle;
    let mut sim = bb_sim(1, 12, &faults);
    sim.run_until_done(round_budget(7)).unwrap();
    for i in (0..7).filter(|&i| i != 2) {
        let a: &LockstepAdapter<BbProc> =
            sim.actor(ProcessId(i as u32)).as_any().downcast_ref().unwrap();
        assert!(a.inner().decided_at().is_some());
        assert!(a.inner().output().is_some());
    }
}

#[test]
fn selective_sender_value_is_recovered_by_vetting() {
    // A Byzantine sender delivers its (validly signed) value to exactly
    // one correct process and goes silent. The first vetting phase's
    // leader has no value, asks for help, and the lone holder forwards
    // the sender-signed value — which the leader re-broadcasts, making it
    // everyone's BA input. The decision is the sender's value, not ⊥.
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xbb).unwrap();
    let (pki, keys) = trusted_setup(n, 0x5eed);
    let sender = ProcessId(0);
    let lucky = ProcessId(3);
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if id == sender {
            // Same value to a single recipient: a "selective" sender.
            actors.push(Box::new(meba::adversary::EquivocatingSender::new(
                cfg,
                key,
                77u64,
                77u64,
                vec![lucky],
                vec![],
            )));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let bb: BbProc = Bb::new(cfg, id, key, pki.clone(), factory, sender);
            actors.push(Box::new(LockstepAdapter::new(id, bb)));
        }
    }
    let mut sim = SimBuilder::new(actors).corrupt(sender).build();
    sim.run_until_done(round_budget(n)).unwrap();
    let faults: Vec<Fault> =
        (0..n).map(|i| if i == 0 { Fault::Idle } else { Fault::None }).collect();
    let d = assert_agreement(&bb_decisions(&sim, &faults));
    assert_eq!(d, Decision::Value(77), "the vetting relay must spread the lone signed value");
}
