//! Service integration: admission control under overload and
//! exactly-once commits across crash-restart of a serving replica, on
//! the lockstep, threaded, and TCP runtimes.
//!
//! The overload property is the paper's economy applied to the front
//! door: a full pipeline yields a *typed* `Overloaded` rejection — the
//! client always learns the fate of its op — and everything accepted is
//! committed exactly once. The crash tests then kill the serving
//! replica mid-slot and require the same exactly-once guarantee from
//! the journal-replay restart, including against client retries that
//! race the crash.

mod common;

use common::*;
use meba::net::{
    run_cluster_with_recovery, ClusterConfig, OverrunAction, ProcessFate, ProcessFateFactory,
};
use meba::prelude::*;
use meba::service::SubmitError;
use meba::sim::RoundCtx;
use meba::wire::{run_tcp_cluster_with_recovery, TcpClusterConfig};
use meba_testkit::service::{audit_proposals, service_replica, ServiceHarness, ServiceM};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 3;

fn submit_all(port: &ServicePort, client: u64, seqs: std::ops::Range<u64>) {
    for seq in seqs {
        port.submit(Op { client, seq, key: client * 100 + seq, value: seq + 1 })
            .expect("capacity sized for the script");
    }
}

// ---------------------------------------------------------------------------
// Overload: typed rejection, never a silent drop
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    // Oversubscribing a bounded port rejects exactly the overflow with
    // the typed `Overloaded` error, and every accepted `(client, seq)`
    // is committed exactly once on every replica.
    #[test]
    fn full_queue_rejects_typed_and_accepted_ops_commit(
        offered in 1u64..40,
        capacity in 1usize..8,
    ) {
        let service = ServiceConfig {
            total_slots: 3,
            queue_capacity: capacity,
            ..ServiceConfig::default()
        };
        let h = Arc::new(ServiceHarness::new(N, service));
        let port = h.port(0);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for seq in 0..offered {
            match port.submit(Op { client: 1, seq, key: seq, value: seq + 1 }) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Overloaded { queue_len, capacity: c }) => {
                    prop_assert_eq!(c, capacity, "rejection reports the true bound");
                    prop_assert_eq!(queue_len, capacity, "rejection fired on a full queue");
                    rejected += 1;
                }
            }
        }
        prop_assert_eq!(accepted, offered.min(capacity as u64), "FIFO fills to the bound");
        prop_assert_eq!(accepted + rejected, offered, "no silent drop");
        let c = port.counters();
        prop_assert_eq!(c.submitted, offered);
        prop_assert_eq!(c.accepted + c.rejected, c.submitted);

        let mut sim = SimBuilder::new(h.actors()).build();
        sim.run_until_done(log_round_budget(N, 3)).unwrap();
        for i in 0..N {
            let r = service_replica(sim.actor(ProcessId(i as u32)));
            prop_assert_eq!(r.stats().ops_committed, accepted, "replica {} commit count", i);
            for seq in 0..accepted {
                prop_assert!(r.committed_at(1, seq).is_some(), "replica {} seq {}", i, seq);
                prop_assert_eq!(r.kv().get(&seq), Some(&(seq + 1)));
            }
            for seq in accepted..offered {
                prop_assert!(r.committed_at(1, seq).is_none(), "rejected op must not commit");
            }
        }
    }
}

/// Sustained oversubmission against a tiny window: the queue never grows
/// past its bound (backpressure is rejection, not buffering), rejections
/// are typed, and the committed set is exactly the accepted prefix that
/// fit the log's proposer slots.
#[test]
fn sustained_overload_bounds_queue_and_commits_exactly_once() {
    let service =
        ServiceConfig { total_slots: 4, window: 1, queue_capacity: 2, ..ServiceConfig::default() };
    let h = Arc::new(ServiceHarness::new(N, service));
    let port = h.port(0);
    let mut sim = SimBuilder::new(h.actors()).build();
    let mut accepted: Vec<u64> = Vec::new();
    let mut rejected = 0u64;
    let mut seq = 0u64;
    for _ in 0..log_round_budget(N, 4) {
        if sim.correct_done() {
            break;
        }
        // Three ops per round against a queue of two.
        for _ in 0..3 {
            match port.submit(Op { client: 2, seq, key: 7, value: seq }) {
                Ok(()) => accepted.push(seq),
                Err(SubmitError::Overloaded { queue_len, capacity }) => {
                    assert_eq!(capacity, 2);
                    assert!(queue_len <= capacity, "queue never exceeds its bound");
                    rejected += 1;
                }
            }
            seq += 1;
        }
        assert!(port.queue_len() <= 2, "backpressure holds mid-run");
        sim.step();
    }
    assert!(rejected > 0, "sustained oversubmission must hit the bound");
    assert_eq!(accepted.len() as u64 + rejected, seq, "every submit got a typed verdict");

    // Exactly-once: each committed (client, seq) appears in exactly one
    // slot of the final log, identically on every replica.
    let logs: Vec<Vec<LogEntry<Batch>>> = (0..N)
        .map(|i| service_replica(sim.actor(ProcessId(i as u32))).log().log().to_vec())
        .collect();
    for log in &logs[1..] {
        assert_eq!(log.len(), logs[0].len(), "replicas agree on the log length");
        for (a, b) in logs[0].iter().zip(log) {
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.entry, b.entry, "replicas agree on slot {}", a.slot);
        }
    }
    let r0 = service_replica(sim.actor(ProcessId(0)));
    let committed = r0.stats().ops_committed as usize;
    assert!(committed > 0, "some accepted ops committed");
    assert!(committed <= accepted.len(), "only accepted ops can commit");
    // Admission and batching preserve FIFO order, so the committed set
    // is exactly the prefix of the accepted ops that fit the proposer's
    // slots; everything past it was accepted but ran out of slots, and
    // nothing rejected ever commits.
    for &s in &accepted[..committed] {
        assert!(r0.committed_at(2, s).is_some(), "committed prefix seq {s}");
    }
    for &s in &accepted[committed..] {
        assert!(r0.committed_at(2, s).is_none(), "past the slot capacity seq {s}");
    }
}

// ---------------------------------------------------------------------------
// Crash-restart: exactly-once across journal-replay recovery
// ---------------------------------------------------------------------------

/// Submits scripted ops into a replica's port at fixed rounds, from
/// inside the round loop — so the script replays identically during a
/// crash-restart fast-forward, which is exactly the client-retry storm
/// the dedup machinery must absorb.
struct ClientScript {
    inner: Box<dyn AnyActor<Msg = ServiceM>>,
    port: Arc<ServicePort>,
    resubmit_round: u64,
}

impl ClientScript {
    fn run(&self, round: u64) {
        if round == 0 {
            // Phase 1: client 1's ops, bound to slot 0 pre-crash.
            submit_all(&self.port, 1, 0..4);
        }
        if round == self.resubmit_round {
            // Post-rejoin: client 1 retries everything (it never saw an
            // ack), and client 2 is new traffic.
            submit_all(&self.port, 1, 0..4);
            submit_all(&self.port, 2, 0..3);
        }
    }
}

impl Actor for ClientScript {
    type Msg = ServiceM;
    fn id(&self) -> ProcessId {
        self.inner.id()
    }
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, ServiceM>) {
        self.run(ctx.round().as_u64());
        self.inner.on_round(ctx);
    }
    fn done(&self) -> bool {
        self.inner.done()
    }
    fn refused_equivocations(&self) -> u64 {
        self.inner.refused_equivocations()
    }
}

/// The seven distinct ops the crash script offers.
fn script_pairs() -> Vec<(u64, u64)> {
    (0..4).map(|s| (1, s)).chain((0..3).map(|s| (2, s))).collect()
}

fn crash_service() -> ServiceConfig {
    ServiceConfig {
        total_slots: 6,
        window: 2,
        queue_capacity: 64,
        // Batches close only when a proposer slot opens, so retries and
        // new traffic ride the victim's next slot whenever it comes.
        batch: BatchPolicy { max_batch_delay: u64::MAX, ..BatchPolicy::default() },
    }
}

fn crash_fate(victim: u32, at_round: u64, rejoin_after: u64) -> ProcessFateFactory {
    Arc::new(move |p: ProcessId| {
        if p.index() == victim as usize {
            ProcessFate::CrashRestart { at_round, rejoin_after }
        } else {
            ProcessFate::Run
        }
    })
}

fn scripted_actors(
    h: &ServiceHarness,
    resubmit_round: u64,
) -> Vec<Box<dyn AnyActor<Msg = ServiceM>>> {
    h.actors()
        .into_iter()
        .enumerate()
        .map(|(i, inner)| {
            if i == 0 {
                Box::new(ClientScript { inner, port: h.port(0), resubmit_round })
                    as Box<dyn AnyActor<Msg = ServiceM>>
            } else {
                inner
            }
        })
        .collect()
}

fn scripted_rebuilder(
    h: &Arc<ServiceHarness>,
    resubmit_round: u64,
) -> meba_net::ActorRebuilder<ServiceM> {
    let base = h.rebuilder();
    let port = h.port(0);
    Arc::new(move |me| {
        let rb = base(me);
        meba_net::RebuiltActor {
            actor: Box::new(ClientScript { inner: rb.actor, port: port.clone(), resubmit_round }),
            resume_step: rb.resume_step,
            replayed_records: rb.replayed_records,
            journal_fsyncs: rb.journal_fsyncs,
        }
    })
}

fn replica_of(a: &dyn AnyActor<Msg = ServiceM>) -> &meba_testkit::service::ServiceProc {
    match a.as_any().downcast_ref::<ClientScript>() {
        Some(s) => service_replica(s.inner.as_ref()),
        None => service_replica(a),
    }
}

/// Asserts the exactly-once outcome of a crash run.
///
/// The surviving quorum (replicas 1 and 2) must agree on the full log
/// and commit every scripted op at one identical `(slot, index)`. The
/// restarted victim counts toward `f` for the slot whose critical
/// rounds it missed; certified state transfer (and, before transfer
/// closes the gap, the retry storm re-landing ops in its next proposer
/// slot) brings its prefix back to the cluster's, so *per replica*
/// every distinct op still commits exactly once, and the victim's
/// journal shows each of its slots bound to exactly one value across
/// the restart. The dedicated convergence assertions (identical
/// applied prefixes under full rolling churn) live in
/// `tests/state_transfer.rs`.
fn assert_exactly_once(actors: &[Box<dyn AnyActor<Msg = ServiceM>>], h: &ServiceHarness) {
    let pairs = script_pairs();
    let survivors: Vec<_> = (1..N).map(|i| replica_of(actors[i].as_ref())).collect();
    let logs: Vec<_> = survivors.iter().map(|r| r.log().log()).collect();
    assert_eq!(logs[0], logs[1], "surviving quorum agrees on the full log");
    for &(c, s) in &pairs {
        let place = survivors[0].committed_at(c, s);
        assert!(place.is_some(), "survivors committed op ({c}, {s})");
        assert_eq!(place, survivors[1].committed_at(c, s), "one place across survivors");
    }
    for (i, a) in actors.iter().enumerate() {
        let r = replica_of(a.as_ref());
        assert_eq!(
            r.stats().ops_committed,
            pairs.len() as u64,
            "replica {i}: each distinct op commits exactly once"
        );
        for &(c, s) in &pairs {
            assert!(r.committed_at(c, s).is_some(), "replica {i}: op ({c}, {s}) committed");
        }
    }
    // The WAL discipline across the restart: the victim never bound one
    // of its slots to two different values.
    audit_proposals(h.journal_buffer(0));
}

/// Threaded runtime: the serving replica crashes four rounds in — after
/// binding (and journaling) slot 0, before it commits — restarts from
/// its journal, and absorbs a full client retry storm. Every distinct
/// op commits exactly once on every replica, including the rebuilt one.
#[test]
fn crash_restart_of_serving_replica_is_exactly_once_threaded() {
    let h = Arc::new(ServiceHarness::new(N, crash_service()));
    let resubmit = 12;
    let config = ClusterConfig {
        delta: Duration::from_millis(2),
        max_rounds: log_round_budget(N, 6),
        process_fate: Some(crash_fate(0, 4, 4)),
        overrun_action: OverrunAction::Escalate {
            multiplier: 2,
            max_delta: Duration::from_millis(250),
        },
        ..ClusterConfig::default()
    };
    let report = run_cluster_with_recovery(
        scripted_actors(&h, resubmit),
        Some(scripted_rebuilder(&h, resubmit)),
        config,
    );
    assert!(report.completed, "cluster must terminate: {report:?}");
    assert_eq!(report.metrics.recovery.crash_restarts, 1);
    assert!(report.metrics.recovery.replayed_records > 0, "slot 0's binding must replay");
    assert_exactly_once(&report.actors, &h);
}

/// The same crash script over real TCP: the restart goes through socket
/// teardown and re-handshake, and the exactly-once guarantee holds.
#[test]
fn crash_restart_of_serving_replica_is_exactly_once_tcp() {
    let h = Arc::new(ServiceHarness::new(N, crash_service()));
    let resubmit = 12;
    let config = TcpClusterConfig {
        cluster: ClusterConfig {
            delta: Duration::from_millis(8),
            max_rounds: log_round_budget(N, 6),
            process_fate: Some(crash_fate(0, 4, 4)),
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: Duration::from_millis(250),
            },
            reconnect_backoff_cap: Duration::from_millis(20),
            reconnect_jitter: Duration::from_millis(2),
            ..ClusterConfig::default()
        },
        domain: 18,
        ..TcpClusterConfig::default()
    };
    let report = run_tcp_cluster_with_recovery(
        scripted_actors(&h, resubmit),
        Some(scripted_rebuilder(&h, resubmit)),
        &h.config(),
        config,
    )
    .expect("mesh establishment");
    assert!(report.report.completed, "TCP cluster must terminate: {report:?}");
    assert_eq!(report.report.metrics.recovery.crash_restarts, 1);
    assert!(report.report.metrics.recovery.replayed_records > 0);
    assert_exactly_once(&report.report.actors, &h);
}
