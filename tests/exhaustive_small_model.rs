//! Exhaustive small-model checking: for small `n`, enumerate *every*
//! crash pattern (victim sets × crash rounds over the interesting window)
//! and *every* input assignment over a small domain, and assert the
//! protocol properties on each execution. Complements the randomized
//! property tests with complete coverage of the small cases.

mod common;

use common::{round_budget, WbaM, WbaProc};
use meba::prelude::*;

fn run_weak_ba(
    n: usize,
    inputs: &[u64],
    crashes: &[(u32, u64)],
) -> Vec<(u32, Decision<u64>, bool)> {
    let cfg = SystemConfig::new(n, 0xe5).unwrap();
    let (pki, keys) = trusted_setup(n, 0xe5);
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, inputs[i]);
        actors.push(Box::new(LockstepAdapter::new(id, wba)));
    }
    let mut b = SimBuilder::new(actors);
    for &(id, round) in crashes {
        b = b.crash_at(ProcessId(id), round);
    }
    let mut sim = b.build();
    sim.run_until_done(round_budget(n)).unwrap();
    (0..n as u32)
        .filter(|i| !crashes.iter().any(|(c, _)| c == i))
        .map(|i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            (i, a.inner().output().expect("decided"), a.inner().used_fallback())
        })
        .collect()
}

/// n = 3, t = 1: every single-victim crash at every round through the
/// schedule's interesting window, × every binary input assignment.
#[test]
fn n3_every_crash_every_input() {
    let n = 3usize;
    let window = 3 * 5 + 4; // phases + help rounds
    let mut executions = 0;
    for victim in 0..n as u32 {
        for crash_round in 0..window {
            for input_bits in 0..(1u32 << n) {
                let inputs: Vec<u64> = (0..n).map(|i| u64::from(input_bits >> i & 1)).collect();
                let out = run_weak_ba(n, &inputs, &[(victim, crash_round)]);
                executions += 1;
                // Agreement.
                assert!(
                    out.windows(2).all(|w| w[0].1 == w[1].1),
                    "victim p{victim} at r{crash_round}, inputs {inputs:?}: {out:?}"
                );
                // Unique validity / value provenance: a concrete decision
                // must be some process's input (crash faults cannot
                // invent values).
                if let Decision::Value(v) = out[0].1 {
                    assert!(inputs.contains(&v), "invented value {v} (inputs {inputs:?})");
                }
                // Unanimity among ALL processes forces that value: the
                // crashed process was honest pre-crash, so when everyone
                // (including it) proposed the same v, only v exists.
                if inputs.windows(2).all(|w| w[0] == w[1]) {
                    assert_eq!(out[0].1, Decision::Value(inputs[0]));
                }
            }
        }
    }
    assert_eq!(executions, 3 * 19 * 8);
}

/// n = 5, t = 2: every two-victim crash pattern on a coarse round grid,
/// unanimous inputs — unanimity must always survive.
#[test]
fn n5_every_double_crash_on_grid() {
    let n = 5usize;
    let grid = [0u64, 2, 4, 7, 12, 22, 26, 28];
    let mut executions = 0;
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            for &ra in &grid {
                for &rb in &grid {
                    let out = run_weak_ba(n, &[9; 5], &[(a, ra), (b, rb)]);
                    executions += 1;
                    assert!(
                        out.iter().all(|(_, d, _)| *d == Decision::Value(9)),
                        "victims p{a}@r{ra}, p{b}@r{rb}: {out:?}"
                    );
                }
            }
        }
    }
    assert_eq!(executions, 10 * 64);
}

/// n = 5: every single victim × every round of the help window with
/// *split* inputs — agreement and provenance, plus Lemma-6-style checks
/// on where the fallback may appear.
#[test]
fn n5_help_window_crashes_split_inputs() {
    let n = 5usize;
    let help0 = 5 * 5;
    let inputs = [1u64, 2, 1, 2, 1];
    for victim in 0..n as u32 {
        for crash_round in help0..help0 + 8 {
            let out = run_weak_ba(n, &inputs, &[(victim, crash_round)]);
            assert!(
                out.windows(2).all(|w| w[0].1 == w[1].1),
                "victim p{victim} at r{crash_round}: {out:?}"
            );
            if let Decision::Value(v) = out[0].1 {
                assert!([1u64, 2].contains(&v));
            }
        }
    }
}
