//! Certified state transfer under churn: every replica of a five-process
//! cluster is crash-restarted once, mid-stream, with outages placed so
//! each victim misses a slot's critical rounds entirely — and every
//! replica still converges to the *identical, ⊥-free* applied prefix,
//! on the threaded and TCP runtimes. A third test wraps a donor in
//! [`LyingDonor`] and asserts forged history is rejected-and-counted
//! while recovery converges through the honest donors.
//!
//! This is the retirement test for the PR-8 restart contract ("a
//! restarted replica may retire a missed slot as ⊥ locally and wait for
//! client retries"): here *nothing is resubmitted*, outages are placed
//! exactly on slot openings, and the assertions demand value-for-value
//! convergence with zero ⊥-retired slots and zero double-signs.

mod common;

use common::*;
use meba::adversary::transfer_attacks::LyingDonor;
use meba::net::{
    run_cluster_with_recovery, ClusterConfig, OverrunAction, ProcessFate, ProcessFateFactory,
};
use meba::prelude::*;
use meba::service::ServiceMsg;
use meba::wire::{run_tcp_cluster_with_recovery, TcpClusterConfig};
use meba_testkit::service::{
    audit_proposals, service_replica, ServiceHarness, ServiceM, ServiceProc,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// n = 5 ⇒ t = 2, quorum = 4: one replica down at a time leaves the
/// cluster committing values, and `t + 1 = 3` honest donors exist for
/// the vouch path even with one Byzantine donor and one crashed victim.
const N: usize = 5;
const SLOTS: u64 = 10;
const OPS_PER_CLIENT: u64 = 4;

fn churn_service() -> ServiceConfig {
    ServiceConfig {
        total_slots: SLOTS,
        window: 2,
        queue_capacity: 64,
        // Batches close when a proposer slot opens, so pre-submitted ops
        // ride each replica's first proposer slot deterministically.
        batch: BatchPolicy { max_batch_delay: u64::MAX, ..BatchPolicy::default() },
    }
}

/// The slot-opening stride the replicas will run under — the unit the
/// churn schedule is phrased in.
fn probe_stride(h: &ServiceHarness) -> u64 {
    let probe = h.actor(0);
    service_replica(probe.as_ref()).log().stride()
}

fn submit(port: &ServicePort, client: u64) {
    for seq in 0..OPS_PER_CLIENT {
        port.submit(Op { client, seq, key: client * 100 + seq, value: seq + 1 })
            .expect("capacity sized for the script");
    }
}

/// Rolling-restart schedule, one victim at a time, each outage covering
/// a slot opening *whose proposer is someone else*.
///
/// With stride `s`, slot `k` opens at round `k·s` and replica `i` is
/// critical (proposing slots `i` and `i + 5`) during `[i·s, (i+2)·s]`
/// and `[(i+5)·s, (i+7)·s]`. Victim windows are `[0.7s + k·s, 1.5s +
/// k·s]` for `k = 0..5`, assigned so window `k` covers the opening of
/// slot `k + 1` and stays clear of its victim's own proposer slots:
///
/// | k | victim | covers slot | proposer of that slot |
/// |---|--------|-------------|-----------------------|
/// | 0 | 3      | 1           | 1                     |
/// | 1 | 4      | 2           | 2                     |
/// | 2 | 0      | 3           | 3                     |
/// | 3 | 1      | 4           | 4                     |
/// | 4 | 2      | 5           | 0                     |
///
/// Windows are pairwise disjoint with ≥ 0.2s gaps, so at most one
/// replica is ever down and the remaining four are exactly a quorum:
/// every slot commits a *value* cluster-wide, and each victim must fill
/// the slot it slept through by certified transfer, not local agreement.
fn churn_fate(s: u64, jitter: u64) -> ProcessFateFactory {
    Arc::new(move |p: ProcessId| {
        let k = match p.index() {
            3 => 0u64,
            4 => 1,
            0 => 2,
            1 => 3,
            2 => 4,
            _ => unreachable!("churn schedule is sized for n = 5"),
        };
        ProcessFate::CrashRestart {
            at_round: s * 7 / 10 + k * s + jitter,
            rejoin_after: s * 8 / 10,
        }
    })
}

/// The post-churn contract: identical applied prefixes, zero ⊥-retired
/// slots, zero certified/local conflicts, zero double-signed bindings —
/// and the catch-up visibly went through the transfer path.
fn assert_churn_converged(actors: &[Box<dyn AnyActor<Msg = ServiceM>>], h: &ServiceHarness) {
    let replicas: Vec<&ServiceProc> = actors.iter().map(|a| service_replica(a.as_ref())).collect();
    let reference: Vec<Vec<u8>> = (0..SLOTS)
        .map(|slot| replicas[0].applied_value(slot).expect("replica 0 applied every slot").to_vec())
        .collect();
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.applied_slots(), SLOTS, "replica {i}: applied the whole log");
        assert!(!r.recovering(), "replica {i}: recovery must complete");
        let st = r.stats();
        assert_eq!(st.applied_conflicts, 0, "replica {i}: no certified/local conflicts");
        assert_eq!(st.skipped_slots, 0, "replica {i}: zero ⊥-retired slots");
        assert_eq!(st.session_collisions, 0, "replica {i}: no session collisions");
        for slot in 0..SLOTS {
            let v = r
                .applied_value(slot)
                .unwrap_or_else(|| panic!("replica {i}: slot {slot} must be applied"));
            assert!(!v.is_empty(), "replica {i}: slot {slot} applied as ⊥");
            assert_eq!(
                v,
                &reference[slot as usize][..],
                "replica {i}: applied prefix diverges at slot {slot}"
            );
        }
        // No client ever resubmitted, yet every op is committed at the
        // same (slot, index) everywhere — transferred slots included.
        for client in [1u64, 2] {
            for seq in 0..OPS_PER_CLIENT {
                let place = r.committed_at(client, seq);
                assert!(place.is_some(), "replica {i}: op ({client}, {seq}) committed");
                assert_eq!(place, replicas[0].committed_at(client, seq));
                assert_eq!(r.kv().get(&(client * 100 + seq)), Some(&(seq + 1)));
            }
        }
    }
    let transferred: u64 = replicas.iter().map(|r| r.stats().slots_transferred).sum();
    assert!(transferred >= N as u64, "every victim slept through a slot opening: {transferred}");
    // The WAL discipline across all five restarts: no slot was ever
    // bound to two different values by any replica.
    for i in 0..N {
        audit_proposals(h.journal_buffer(i));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    // Threaded runtime: all five replicas crash-restart once, staggered
    // across the stream (with a proptest-driven phase jitter of up to
    // 0.1 stride), and the cluster converges to one ⊥-free prefix.
    #[test]
    fn rolling_restart_churn_converges_threaded(jitter_tenths in 0u64..10) {
        let h = Arc::new(ServiceHarness::new(N, churn_service()));
        submit(&h.port(0), 1);
        submit(&h.port(1), 2);
        let s = probe_stride(&h);
        let config = ClusterConfig {
            delta: Duration::from_millis(2),
            max_rounds: log_round_budget(N, SLOTS),
            process_fate: Some(churn_fate(s, s * jitter_tenths / 100)),
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: Duration::from_millis(250),
            },
            ..ClusterConfig::default()
        };
        let report = run_cluster_with_recovery(h.actors(), Some(h.rebuilder()), config);
        prop_assert!(report.completed, "cluster must terminate: {:?}", report.rounds);
        prop_assert_eq!(report.metrics.recovery.crash_restarts, N as u64);
        assert_churn_converged(&report.actors, &h);
    }
}

/// The same rolling-restart schedule over real TCP: each restart goes
/// through socket teardown, re-handshake, and round fast-forward, and
/// the converged-⊥-free-prefix contract still holds.
#[test]
fn rolling_restart_churn_converges_tcp() {
    let h = Arc::new(ServiceHarness::new(N, churn_service()));
    submit(&h.port(0), 1);
    submit(&h.port(1), 2);
    let s = probe_stride(&h);
    let config = TcpClusterConfig {
        cluster: ClusterConfig {
            delta: Duration::from_millis(8),
            max_rounds: log_round_budget(N, SLOTS),
            process_fate: Some(churn_fate(s, 0)),
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: Duration::from_millis(250),
            },
            reconnect_backoff_cap: Duration::from_millis(20),
            reconnect_jitter: Duration::from_millis(2),
            ..ClusterConfig::default()
        },
        domain: 19,
        ..TcpClusterConfig::default()
    };
    let report =
        run_tcp_cluster_with_recovery(h.actors(), Some(h.rebuilder()), &h.config(), config)
            .expect("mesh establishment");
    assert!(report.report.completed, "TCP cluster must terminate");
    assert_eq!(report.report.metrics.recovery.crash_restarts, N as u64);
    assert_churn_converged(&report.report.actors, &h);
}

// ---------------------------------------------------------------------------
// Byzantine donor: forged history is rejected-and-counted
// ---------------------------------------------------------------------------

const LIE_SLOTS: u64 = 6;

fn lying_service() -> ServiceConfig {
    ServiceConfig {
        total_slots: LIE_SLOTS,
        window: 2,
        queue_capacity: 64,
        batch: BatchPolicy { max_batch_delay: u64::MAX, ..BatchPolicy::default() },
    }
}

type Liar = LyingDonor<ServiceMsg<RecursiveBaFactory>>;

fn replica_of(a: &dyn AnyActor<Msg = ServiceM>) -> &ServiceProc {
    match a.as_any().downcast_ref::<Liar>() {
        Some(d) => service_replica(d.inner()),
        None => service_replica(a),
    }
}

/// Replica 1 is a [`LyingDonor`]: honest in agreement, but it answers
/// fetches with — and spams — forged `CommittedBatch` history (forged
/// quorum certificates on odd slots, bare claims on even ones). Replica
/// 0 crash-restarts across slot 1's opening and must recover anyway:
/// every certified lie is rejected *and counted*, no bare lie ever
/// reaches the `t + 1` vouch threshold, and convergence arrives through
/// the honest donors — without any client resubmission.
#[test]
fn lying_donor_is_rejected_and_counted_while_recovery_converges() {
    let h = Arc::new(ServiceHarness::new(N, lying_service()));
    submit(&h.port(0), 1);
    let s = probe_stride(&h);
    let actors: Vec<Box<dyn AnyActor<Msg = ServiceM>>> = (0..N)
        .map(|i| {
            let a = h.actor(i);
            if i == 1 {
                Box::new(Liar::new(a, N, LIE_SLOTS)) as Box<dyn AnyActor<Msg = ServiceM>>
            } else {
                a
            }
        })
        .collect();
    let fate: ProcessFateFactory = Arc::new(move |p: ProcessId| {
        if p.index() == 0 {
            // Down across slot 1's opening: the victim misses its
            // critical rounds outright and must transfer it.
            ProcessFate::CrashRestart { at_round: s / 2, rejoin_after: s }
        } else {
            ProcessFate::Run
        }
    });
    let config = ClusterConfig {
        delta: Duration::from_millis(2),
        max_rounds: log_round_budget(N, LIE_SLOTS),
        process_fate: Some(fate),
        overrun_action: OverrunAction::Escalate {
            multiplier: 2,
            max_delta: Duration::from_millis(250),
        },
        ..ClusterConfig::default()
    };
    let report = run_cluster_with_recovery(actors, Some(h.rebuilder()), config);
    assert!(report.completed, "cluster must terminate");
    assert_eq!(report.metrics.recovery.crash_restarts, 1);

    let victim = service_replica(report.actors[0].as_ref());
    let st = victim.stats();
    assert!(st.transfer_certs_rejected > 0, "forged certificates rejected and counted");
    assert!(st.slots_transferred > 0, "the slot slept through arrives by transfer");
    assert!(st.transfer_certs_verified > 0, "honest certified entries do verify");
    assert_eq!(victim.applied_slots(), LIE_SLOTS, "victim caught all the way up");
    assert!(!victim.recovering(), "recovery must complete");
    for seq in 0..OPS_PER_CLIENT {
        assert!(victim.committed_at(1, seq).is_some(), "no client resubmission needed");
    }

    // Convergence came from honest donors: the victim's prefix matches
    // an honest replica's, value for value — and the fabricated op never
    // surfaced in any replica's state.
    let honest = replica_of(report.actors[2].as_ref());
    for slot in 0..LIE_SLOTS {
        assert_eq!(
            victim.applied_value(slot),
            honest.applied_value(slot),
            "victim and honest replica agree on slot {slot}"
        );
    }
    for (i, a) in report.actors.iter().enumerate() {
        let r = replica_of(a.as_ref());
        assert_eq!(r.stats().applied_conflicts, 0, "replica {i}: no conflicts");
        assert!(r.kv().get(&0xbad).is_none(), "replica {i}: forged op never applied");
        for slot in 0..LIE_SLOTS {
            assert!(r.committed_at(0xbad, slot).is_none(), "replica {i}: forged op absent");
        }
    }
    let liar = report.actors[1].as_any().downcast_ref::<Liar>().expect("liar survives the run");
    assert!(liar.lies_broadcast() > 0, "the attack actually ran");
    audit_proposals(h.journal_buffer(0));
}
