//! Ablation tests for the paper's two key design choices (experiments E8
//! and E9):
//!
//! * **E8 — quorum threshold `⌈(n+t+1)/2⌉` (§6).** Against the naive
//!   `t + 1` threshold, a vote-splitting Byzantine leader finalizes two
//!   different values and breaks agreement. Against the paper's
//!   threshold the same attack yields no certificate at all and agreement
//!   survives via the fallback.
//! * **E9 — the `2δ` safety window before `A_fallback` (§6, Lemma 19).**
//!   A Byzantine leader that completes a finalize certificate secretly and
//!   answers a single help request creates a lone decider; without the
//!   window the fallback contradicts it, with the window the decision
//!   propagates and everyone agrees.

mod common;

use common::*;
use meba::adversary::{LateHelperLeader, SplitVoteLeader};
use meba::prelude::*;

/// Builds the E8 scenario: n = 7, Byzantine {p1, p3, p5}, p1 leads phase 1
/// and splits correct processes {p0, p2} / {p4, p6}.
fn split_vote_run(cfg: SystemConfig) -> Vec<Decision<u64>> {
    let n = 7usize;
    let (pki, keys) = trusted_setup(n, 0xe8);
    let byz = [1u32, 3, 5];
    let cohort: Vec<SecretKey> = byz.iter().map(|&i| keys[i as usize].clone()).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i as u32 == 1 {
            actors.push(Box::new(SplitVoteLeader::new(
                cfg,
                id,
                pki.clone(),
                cohort.clone(),
                1,
                100u64,
                200u64,
                vec![ProcessId(0), ProcessId(2)],
                vec![ProcessId(4), ProcessId(6)],
            )));
        } else if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba: WbaProc = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 7u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(round_budget(n)).unwrap();
    [0u32, 2, 4, 6]
        .iter()
        .map(|&i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.inner().output().expect("decided")
        })
        .collect()
}

#[test]
fn e8_naive_threshold_breaks_agreement() {
    // Quorum t+1 = 4: the split attack finalizes both values.
    let cfg = SystemConfig::new(7, 0x8).unwrap().unsafe_with_quorum(4);
    let ds = split_vote_run(cfg);
    assert_eq!(ds[0], Decision::Value(100), "group A decided the first value");
    assert_eq!(ds[2], Decision::Value(200), "group B decided the second value");
    assert_ne!(ds[0], ds[2], "naive threshold must exhibit the violation");
}

#[test]
fn e8_paper_threshold_resists_the_same_attack() {
    let cfg = SystemConfig::new(7, 0x8).unwrap();
    let ds = split_vote_run(cfg);
    assert_agreement(&ds);
}

/// Builds the E9 scenario: n = 7, Byzantine {p1, p3, p5}; p1 secretly
/// finalizes value 20 in phase 1 and help-answers only p0.
fn late_help_run(disable_window: bool) -> Vec<Decision<u64>> {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xe9).unwrap();
    let (pki, keys) = trusted_setup(n, 0xe9);
    let byz = [1u32, 3, 5];
    let cohort: Vec<SecretKey> = byz.iter().map(|&i| keys[i as usize].clone()).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i as u32 == 1 {
            actors.push(Box::new(LateHelperLeader::new(
                cfg,
                id,
                pki.clone(),
                cohort.clone(),
                1,
                20u64,
                ProcessId(0),
            )));
        } else if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let mut wba: WbaProc =
                WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 10u64);
            if disable_window {
                wba.disable_safety_window();
            }
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(round_budget(n)).unwrap();
    [0u32, 2, 4, 6]
        .iter()
        .map(|&i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.inner().output().expect("decided")
        })
        .collect()
}

#[test]
fn e9_without_safety_window_agreement_breaks() {
    let ds = late_help_run(true);
    // p0 decided the secretly-finalized 20 via the late help answer; the
    // rest never learn it and the fallback (3 × input 10 vs 1 × 20)
    // settles on 10.
    assert_eq!(ds[0], Decision::Value(20));
    assert_eq!(ds[1], Decision::Value(10));
    assert_ne!(ds[0], ds[1], "disabled window must exhibit the violation");
}

#[test]
fn e9_with_safety_window_agreement_holds() {
    let ds = late_help_run(false);
    let d = assert_agreement(&ds);
    assert_eq!(d, Decision::Value(20), "the certified decision must win");
}
