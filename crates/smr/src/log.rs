//! The replicated log: one adaptive BB instance per slot.

use meba_core::bb::{Bb, BbBaValue, BbMsg};
use meba_core::{Decision, FallbackFactory, SubProtocol, SystemConfig, Value};
use meba_crypto::{Pki, ProcessId, SecretKey};
use meba_sim::{Actor, Dest, Message, RoundCtx};
use std::collections::VecDeque;

/// Message type of the fallback for the BB value domain.
type FbMsg<V, F> = <<F as FallbackFactory<BbBaValue<V>>>::Protocol as SubProtocol>::Msg;

/// A slot-tagged BB message.
#[derive(Clone, Debug)]
pub struct SmrMsg<V, FM> {
    /// Which slot's BB instance this belongs to.
    pub slot: u64,
    /// The wrapped BB message.
    pub inner: BbMsg<V, FM>,
}

impl<V: Value, FM: Message> Message for SmrMsg<V, FM> {
    fn words(&self) -> u64 {
        self.inner.words()
    }
    fn constituent_sigs(&self) -> u64 {
        self.inner.constituent_sigs()
    }
    fn component(&self) -> &'static str {
        self.inner.component()
    }
}

/// A committed log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry<V> {
    /// Slot index.
    pub slot: u64,
    /// The slot's designated proposer.
    pub proposer: ProcessId,
    /// The agreed entry; `⊥` means the slot was skipped (faulty proposer).
    pub entry: Decision<V>,
}

/// One replica of the replicated log.
///
/// Runs `total_slots` BB instances back to back on a fixed schedule of
/// [`ReplicatedLog::slot_rounds`] rounds each. The proposer of slot `k`
/// is `p_{k mod n}`; when it is this replica's turn it proposes the next
/// queued command (or the no-op value).
pub struct ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    factory: F,
    slot_rounds: u64,
    total_slots: u64,
    noop: V,
    pending: VecDeque<V>,
    current: Option<Bb<V, F>>,
    log: Vec<LogEntry<V>>,
}

impl<V, F> ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    /// Creates a replica. `commands` are proposed, in order, whenever
    /// this replica is the slot proposer; `noop` is proposed when the
    /// queue is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        total_slots: u64,
        commands: Vec<V>,
        noop: V,
    ) -> Self {
        let slot_rounds = Self::slot_rounds(&cfg, &factory);
        ReplicatedLog {
            cfg,
            me,
            key,
            pki,
            factory,
            slot_rounds,
            total_slots,
            noop,
            pending: commands.into(),
            current: None,
            log: Vec::new(),
        }
    }

    /// Fixed number of rounds allocated per slot: the worst-case BB
    /// schedule, fallback included.
    pub fn slot_rounds(cfg: &SystemConfig, factory: &F) -> u64 {
        Bb::<V, F>::max_schedule(cfg, factory) + 2
    }

    /// Total rounds the whole log needs.
    pub fn total_rounds(&self) -> u64 {
        self.slot_rounds * self.total_slots
    }

    /// The committed log so far.
    pub fn log(&self) -> &[LogEntry<V>] {
        &self.log
    }

    /// The committed commands (skipping `⊥` slots).
    pub fn committed(&self) -> impl Iterator<Item = &V> {
        self.log.iter().filter_map(|e| e.entry.value())
    }

    fn slot_cfg(&self, slot: u64) -> SystemConfig {
        // Domain-separate each slot's signatures.
        self.cfg.with_session(self.cfg.session().wrapping_mul(1_000_003).wrapping_add(slot))
    }

    fn open_slot(&mut self, slot: u64) {
        let proposer = ProcessId((slot % self.cfg.n() as u64) as u32);
        let cfg = self.slot_cfg(slot);
        let bb = if proposer == self.me {
            let cmd = self.pending.pop_front().unwrap_or_else(|| self.noop.clone());
            Bb::new_sender(
                cfg,
                self.me,
                self.key.clone(),
                self.pki.clone(),
                self.factory.clone(),
                cmd,
            )
        } else {
            Bb::new(
                cfg,
                self.me,
                self.key.clone(),
                self.pki.clone(),
                self.factory.clone(),
                proposer,
            )
        };
        self.current = Some(bb);
    }

    fn close_slot(&mut self, slot: u64) {
        let proposer = ProcessId((slot % self.cfg.n() as u64) as u32);
        let entry = self
            .current
            .take()
            .and_then(|bb| bb.output())
            // A BB that did not finish inside the worst-case schedule can
            // only be a Byzantine-scheduled wrapper; a correct replica
            // records ⊥ and stays aligned with its peers.
            .unwrap_or(Decision::Bot);
        self.log.push(LogEntry { slot, proposer, entry });
    }
}

impl<V, F> Actor for ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    type Msg = SmrMsg<V, FbMsg<V, F>>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let r = ctx.round().as_u64();
        let slot = r / self.slot_rounds;
        if slot >= self.total_slots {
            return;
        }
        let step = r % self.slot_rounds;
        if step == 0 {
            self.open_slot(slot);
        }
        #[allow(clippy::type_complexity)]
        let inbox: Vec<(ProcessId, BbMsg<V, FbMsg<V, F>>)> = ctx
            .inbox()
            .iter()
            .filter(|e| e.msg.slot == slot)
            .map(|e| (e.from, e.msg.inner.clone()))
            .collect();
        let mut out = Vec::new();
        if let Some(bb) = &mut self.current {
            bb.on_step(step, &inbox, &mut out);
        }
        for (dest, inner) in out {
            let msg = SmrMsg { slot, inner };
            match dest {
                Dest::To(p) => ctx.send(p, msg),
                Dest::All => ctx.broadcast(msg),
            }
        }
        if step == self.slot_rounds - 1 {
            self.close_slot(slot);
        }
    }

    fn done(&self) -> bool {
        self.log.len() as u64 >= self.total_slots
    }
}

impl<V, F> std::fmt::Debug for ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("me", &self.me)
            .field("committed", &self.log.len())
            .field("total_slots", &self.total_slots)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::trusted_setup;
    use meba_fallback::RecursiveBaFactory;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type Log = ReplicatedLog<u64, RecursiveBaFactory>;
    type Msg = <Log as Actor>::Msg;

    fn make_sim(n: usize, slots: u64, commands: Vec<Vec<u64>>, crashed: &[u32]) -> Simulation<Msg> {
        let cfg = SystemConfig::new(n, 9).unwrap();
        let (pki, keys) = trusted_setup(n, 77);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let log = ReplicatedLog::new(
                cfg,
                id,
                key,
                pki.clone(),
                factory,
                slots,
                commands.get(i).cloned().unwrap_or_default(),
                0u64, // no-op
            );
            actors.push(Box::new(log));
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn logs(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<Vec<LogEntry<u64>>> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                l.log().to_vec()
            })
            .collect()
    }

    #[test]
    fn failure_free_log_replicates_commands() {
        let n = 5;
        let commands: Vec<Vec<u64>> = (0..n).map(|i| vec![100 + i as u64]).collect();
        let mut sim = make_sim(n, 3, commands, &[]);
        let budget = {
            let l: &Log = sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
            l.total_rounds() + 2
        };
        sim.run_until_done(budget).unwrap();
        let all = logs(&sim, &[]);
        for l in &all {
            assert_eq!(l, &all[0], "logs must be identical");
        }
        // Slots 0,1,2 proposed by p0,p1,p2 with their first commands.
        let committed: Vec<u64> = all[0].iter().filter_map(|e| e.entry.value().copied()).collect();
        assert_eq!(committed, vec![100, 101, 102]);
    }

    #[test]
    fn crashed_proposer_slot_skips_but_stays_aligned() {
        let n = 5;
        let commands: Vec<Vec<u64>> = (0..n).map(|i| vec![100 + i as u64]).collect();
        // p1 crashed: slot 1 must be ⊥, slots 0 and 2 commit.
        let crashed = [1u32];
        let mut sim = make_sim(n, 3, commands, &crashed);
        sim.run_until_done(20_000).unwrap();
        let all = logs(&sim, &crashed);
        for l in &all {
            assert_eq!(l, &all[0], "logs must be identical");
        }
        assert_eq!(all[0][0].entry, Decision::Value(100));
        assert_eq!(all[0][1].entry, Decision::Bot, "crashed proposer slot skipped");
        assert_eq!(all[0][2].entry, Decision::Value(102));
    }

    #[test]
    fn empty_queue_proposes_noop() {
        let n = 5;
        let mut sim = make_sim(n, 1, vec![vec![]; n], &[]);
        sim.run_until_done(20_000).unwrap();
        let all = logs(&sim, &[]);
        assert_eq!(all[0][0].entry, Decision::Value(0), "no-op committed");
    }

    #[test]
    fn slot_schedule_is_fixed_and_positive() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let (pki, keys) = trusted_setup(5, 1);
        let factory = RecursiveBaFactory::new(cfg, keys[0].clone(), pki);
        let rounds = Log::slot_rounds(&cfg, &factory);
        assert!(rounds > 40, "must cover phases + help + fallback, got {rounds}");
    }
}
