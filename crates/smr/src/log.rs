//! The replicated log: pipelined adaptive BB instances over the session
//! mux.
//!
//! Slot `k` is one BB instance with proposer `p_{k mod n}`, hosted as
//! session `k` of a [`meba_sim::Mux`]. Slot `k + 1` opens a fixed *stride*
//! of rounds after slot `k` (`stride = ⌈worst-case slot schedule / W⌉` for
//! pipeline window `W`), so up to `W` instances run concurrently; each
//! instance retires as soon as it reports [`SubProtocol::done`] instead of
//! burning the fixed worst-case schedule. `W = 1` recovers the sequential
//! fixed-schedule log. Per-slot signature domain separation (the session
//! mixed into every signed payload) keeps the concurrent instances
//! non-interfering — see `docs/CORRECTNESS.md`.

use meba_core::bb::{Bb, BbBaValue, BbMsg, BbValidity};
use meba_core::signing::DecideProof;
use meba_core::{Decision, FallbackFactory, SubProtocol, SystemConfig, Validity, Value};
use meba_crypto::{Pki, ProcessId, SecretKey, WireCodec};
use meba_sim::{Actor, Mux, MuxHost, RoundCtx, SessionEnvelope, SessionId, SessionSpawnError};
use std::collections::{BTreeMap, VecDeque};

/// Message type of the fallback for the BB value domain.
type FbMsg<V, F> = <<F as FallbackFactory<BbBaValue<V>>>::Protocol as SubProtocol>::Msg;

/// A slot-tagged BB message: the wire session id is the slot number.
pub type SmrMsg<V, FM> = SessionEnvelope<BbMsg<V, FM>>;

/// A committed log entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry<V> {
    /// Slot index.
    pub slot: u64,
    /// The slot's designated proposer.
    pub proposer: ProcessId,
    /// The agreed entry; `⊥` means the slot was skipped (faulty proposer).
    pub entry: Decision<V>,
}

/// Transferable commit evidence for a retired slot: the encoded BA-level
/// [`BbBaValue`] the slot's embedded weak BA finalized, plus the quorum
/// [`DecideProof`] over it. A third party re-derives the slot's decision
/// from the pair alone via [`verify_slot_evidence`] — no trust in the
/// donor required. Slots that settled through the fallback path carry no
/// proof and are absent from the evidence map; state transfer falls back
/// to `t + 1` matching donors for those.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitEvidence {
    /// Canonical wire bytes of the decided [`BbBaValue`].
    pub ba_value: Vec<u8>,
    /// The finalize certificate over those bytes, under the slot's
    /// domain-separated session.
    pub proof: DecideProof,
}

impl meba_crypto::WireCodec for CommitEvidence {
    fn encode_wire(&self, enc: &mut meba_crypto::Encoder) {
        enc.put_bytes(&self.ba_value);
        self.proof.encode_wire(enc);
    }
    fn decode_wire(dec: &mut meba_crypto::Decoder<'_>) -> Result<Self, meba_crypto::DecodeError> {
        let ba_value = dec.get_bytes()?;
        let proof = DecideProof::decode_wire(dec)?;
        Ok(CommitEvidence { ba_value, proof })
    }
}

/// Verifies transferred commit evidence for `slot` and re-derives the
/// slot's decision, exactly as the slot's own BB instance would have:
/// the [`DecideProof`] must certify the BA value under the slot's
/// domain-separated config, and a `Signed` BA value maps to the
/// proposer's value only if it validates under [`BbValidity`] —
/// everything else is `⊥`. Returns `None` if the evidence is forged
/// (bad bytes, wrong session, wrong threshold, or an out-of-range
/// phase).
pub fn verify_slot_evidence<V: Value>(
    cfg: &SystemConfig,
    pki: &Pki,
    slot: u64,
    ev: &CommitEvidence,
) -> Option<Decision<V>> {
    if ev.proof.phase == 0 || ev.proof.phase as usize > cfg.n() {
        return None;
    }
    let slot_cfg = slot_config(cfg, slot);
    let ba_value = BbBaValue::<V>::from_wire_bytes(&ev.ba_value).ok()?;
    if !ev.proof.verify(&slot_cfg, pki, &ba_value) {
        return None;
    }
    let proposer = ProcessId((slot % cfg.n() as u64) as u32);
    let validity = BbValidity::new(slot_cfg, pki.clone(), proposer);
    Some(match &ba_value {
        BbBaValue::Signed { value, .. }
            if Validity::<BbBaValue<V>>::validate(&validity, &ba_value) =>
        {
            Decision::Value(value.clone())
        }
        _ => Decision::Bot,
    })
}

/// The domain-separated config slot `k`'s BB instance signs under —
/// free-function form of [`ReplicatedLog::slot_cfg`], usable without
/// naming a fallback factory type.
pub fn slot_config(cfg: &SystemConfig, slot: u64) -> SystemConfig {
    cfg.with_session(cfg.session().wrapping_mul(1_000_003).wrapping_add(slot))
}

/// The [`MuxHost`] half of a log replica: opens slot `k` at round
/// `k · stride`, builds its domain-separated BB instance, and records the
/// decision when the instance retires.
struct LogHost<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    cfg: SystemConfig,
    me: ProcessId,
    key: SecretKey,
    pki: Pki,
    factory: F,
    stride: u64,
    slot_cap: u64,
    total_slots: u64,
    noop: V,
    pending: VecDeque<V>,
    entries: BTreeMap<u64, LogEntry<V>>,
    evidence: BTreeMap<u64, CommitEvidence>,
    log: Vec<LogEntry<V>>,
}

impl<V, F> MuxHost for LogHost<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    type Proto = Bb<V, F>;

    fn due(&mut self, round: u64) -> Vec<SessionId> {
        if round.is_multiple_of(self.stride) && round / self.stride < self.total_slots {
            vec![SessionId(round / self.stride)]
        } else {
            Vec::new()
        }
    }

    fn create(&mut self, sid: SessionId) -> Option<Bb<V, F>> {
        let slot = sid.0;
        if slot >= self.total_slots {
            return None;
        }
        let proposer = ProcessId((slot % self.cfg.n() as u64) as u32);
        let cfg = ReplicatedLog::<V, F>::slot_cfg(&self.cfg, slot);
        Some(if proposer == self.me {
            let cmd = self.pending.pop_front().unwrap_or_else(|| self.noop.clone());
            Bb::new_sender(
                cfg,
                self.me,
                self.key.clone(),
                self.pki.clone(),
                self.factory.clone(),
                cmd,
            )
        } else {
            Bb::new(
                cfg,
                self.me,
                self.key.clone(),
                self.pki.clone(),
                self.factory.clone(),
                proposer,
            )
        })
    }

    fn max_steps(&self, _sid: SessionId) -> u64 {
        self.slot_cap
    }

    fn retired(&mut self, sid: SessionId, bb: Bb<V, F>) {
        let slot = sid.0;
        let proposer = ProcessId((slot % self.cfg.n() as u64) as u32);
        // A BB that did not finish inside the worst-case schedule can
        // only be a Byzantine-scheduled wrapper; a correct replica
        // records ⊥ and stays aligned with its peers.
        let entry = bb.output().unwrap_or(Decision::Bot);
        // Keep the finalize certificate (when the embedded BA produced
        // one) so this replica can later serve the slot to a recovering
        // peer as self-verifying state transfer (DESIGN.md §16).
        if let Some((v, proof)) = bb.commit_evidence() {
            self.evidence
                .insert(slot, CommitEvidence { ba_value: v.to_wire_bytes(), proof: proof.clone() });
        }
        self.entries.insert(slot, LogEntry { slot, proposer, entry });
        // Slots can retire out of order under pipelining; the BTreeMap
        // keeps the committed view in slot order.
        self.log = self.entries.values().cloned().collect();
    }

    fn finished(&self) -> bool {
        self.entries.len() as u64 >= self.total_slots
    }
}

/// One replica of the replicated log.
///
/// Runs `total_slots` BB instances over a session mux. The proposer of
/// slot `k` is `p_{k mod n}`; when it is this replica's turn it proposes
/// the next queued command (or the no-op value). [`ReplicatedLog::new`]
/// builds the sequential (`W = 1`) log; chain
/// [`ReplicatedLog::with_window`] for the pipelined mode.
pub struct ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    mux: Mux<LogHost<V, F>>,
    window: u64,
}

impl<V, F> ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    /// Creates a sequential (`W = 1`) replica. `commands` are proposed,
    /// in order, whenever this replica is the slot proposer; `noop` is
    /// proposed when the queue is empty.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        key: SecretKey,
        pki: Pki,
        factory: F,
        total_slots: u64,
        commands: Vec<V>,
        noop: V,
    ) -> Self {
        let slot_cap = Self::slot_rounds(&cfg, &factory);
        let host = LogHost {
            cfg,
            me,
            key,
            pki,
            factory,
            stride: slot_cap,
            slot_cap,
            total_slots,
            noop,
            pending: commands.into(),
            entries: BTreeMap::new(),
            evidence: BTreeMap::new(),
            log: Vec::new(),
        };
        ReplicatedLog { mux: Mux::new(me, host), window: 1 }
    }

    /// Sets the pipeline window: up to `window ≥ 1` slots run
    /// concurrently, with slot `k + 1` opening [`ReplicatedLog::stride`]
    /// rounds after slot `k`. Call before the first round.
    pub fn with_window(mut self, window: u64) -> Self {
        let window = window.max(1);
        let host = self.mux.host_mut();
        host.stride = host.slot_cap.div_ceil(window);
        self.window = window;
        self
    }

    /// Fixed worst-case number of rounds per slot: the full BB schedule,
    /// fallback included. A slot whose instance is still running after
    /// this many steps is force-retired as `⊥`.
    pub fn slot_rounds(cfg: &SystemConfig, factory: &F) -> u64 {
        Bb::<V, F>::max_schedule(cfg, factory) + 2
    }

    /// Rounds between consecutive slot openings
    /// (`⌈slot_rounds / window⌉`).
    pub fn stride(&self) -> u64 {
        self.mux.host().stride
    }

    /// The pipeline window `W`.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Worst-case total rounds the whole log needs: the last slot opens
    /// at `(total_slots − 1) · stride` and may run its full schedule.
    pub fn total_rounds(&self) -> u64 {
        let host = self.mux.host();
        (host.total_slots.saturating_sub(1)) * host.stride + host.slot_cap
    }

    /// Queues `cmd` for proposal the next time this replica is a slot
    /// proposer and its queue head comes up. The dynamic feed the
    /// `meba-service` batcher uses: closed client batches enter here and
    /// bind to slots as they open.
    pub fn enqueue(&mut self, cmd: V) {
        self.mux.host_mut().pending.push_back(cmd);
    }

    /// Number of queued commands not yet bound to a slot.
    pub fn queued(&self) -> usize {
        self.mux.host().pending.len()
    }

    /// The command that will bind to this replica's next proposer slot.
    pub fn queued_front(&self) -> Option<&V> {
        self.mux.host().pending.front()
    }

    /// Total number of slots this log runs.
    pub fn total_slots(&self) -> u64 {
        self.mux.host().total_slots
    }

    /// The designated proposer of `slot` (`p_{slot mod n}`).
    pub fn proposer_of(&self, slot: u64) -> ProcessId {
        ProcessId((slot % self.mux.host().cfg.n() as u64) as u32)
    }

    /// The slot scheduled to open at `round`, if any (`round / stride`
    /// when `round` is a stride multiple and in range).
    pub fn due_slot(&self, round: u64) -> Option<u64> {
        let host = self.mux.host();
        (round.is_multiple_of(host.stride) && round / host.stride < host.total_slots)
            .then(|| round / host.stride)
    }

    /// Collision-checked spawn of `slot`'s session, for dynamic
    /// allocators ([`Mux::try_open`]): an id already live or retired is
    /// a typed error, never a silent alias onto the existing instance.
    pub fn try_open_slot(&mut self, slot: u64) -> Result<(), SessionSpawnError> {
        self.mux.try_open(SessionId(slot))
    }

    /// Spawns the slot due at `round` (if any) through the
    /// collision-checked path. The mux's own schedule-driven open later
    /// in the round is idempotent, so a slot spawned here is not opened
    /// twice; a collision — an id some other allocation already took —
    /// surfaces as the typed error instead of silently aliasing.
    pub fn spawn_due(&mut self, round: u64) -> Result<(), SessionSpawnError> {
        match self.due_slot(round) {
            Some(slot) => self.try_open_slot(slot),
            None => Ok(()),
        }
    }

    /// The committed log so far, in slot order. Under pipelining slots
    /// may commit out of order; gaps close as earlier slots retire.
    pub fn log(&self) -> &[LogEntry<V>] {
        &self.mux.host().log
    }

    /// The committed commands (skipping `⊥` slots).
    pub fn committed(&self) -> impl Iterator<Item = &V> {
        self.log().iter().filter_map(|e| e.entry.value())
    }

    /// The committed entry of `slot`, if this replica has retired it.
    pub fn entry(&self, slot: u64) -> Option<&LogEntry<V>> {
        self.mux.host().entries.get(&slot)
    }

    /// The transferable commit evidence this replica holds for `slot`:
    /// present when the slot's embedded BA finalized with a quorum
    /// [`DecideProof`] in this process's lifetime, absent for
    /// fallback-path decisions and for slots committed before a restart.
    pub fn evidence(&self, slot: u64) -> Option<&CommitEvidence> {
        self.mux.host().evidence.get(&slot)
    }

    /// The committed prefix: number of contiguous slots from 0 this
    /// replica has retired. Under pipelining slots retire out of order,
    /// so this can trail [`ReplicatedLog::log`]'s length.
    pub fn committed_prefix(&self) -> u64 {
        let entries = &self.mux.host().entries;
        let mut prefix = 0u64;
        while entries.contains_key(&prefix) {
            prefix += 1;
        }
        prefix
    }

    /// The domain-separated system config slot `k`'s BB instance signs
    /// under. Exposed so tests and adversaries can reproduce a slot's
    /// signature domain.
    pub fn slot_cfg(cfg: &SystemConfig, slot: u64) -> SystemConfig {
        slot_config(cfg, slot)
    }
}

impl<V, F> Actor for ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    type Msg = SmrMsg<V, FbMsg<V, F>>;

    fn id(&self) -> ProcessId {
        self.mux.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        self.mux.on_round(ctx);
    }

    fn done(&self) -> bool {
        self.mux.done()
    }
}

impl<V, F> std::fmt::Debug for ReplicatedLog<V, F>
where
    V: Value,
    F: FallbackFactory<BbBaValue<V>>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedLog")
            .field("me", &self.mux.id())
            .field("committed", &self.mux.host().entries.len())
            .field("total_slots", &self.mux.host().total_slots)
            .field("window", &self.window)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_crypto::trusted_setup;
    use meba_fallback::RecursiveBaFactory;
    use meba_sim::{AnyActor, IdleActor, SimBuilder, Simulation};

    type Log = ReplicatedLog<u64, RecursiveBaFactory>;
    type Msg = <Log as Actor>::Msg;

    fn make_sim(
        n: usize,
        slots: u64,
        window: u64,
        commands: Vec<Vec<u64>>,
        crashed: &[u32],
    ) -> Simulation<Msg> {
        let cfg = SystemConfig::new(n, 9).unwrap();
        let (pki, keys) = trusted_setup(n, 77);
        let mut actors: Vec<Box<dyn AnyActor<Msg = Msg>>> = Vec::new();
        for (i, key) in keys.into_iter().enumerate() {
            let id = ProcessId(i as u32);
            if crashed.contains(&(i as u32)) {
                actors.push(Box::new(IdleActor::new(id)));
                continue;
            }
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let log = ReplicatedLog::new(
                cfg,
                id,
                key,
                pki.clone(),
                factory,
                slots,
                commands.get(i).cloned().unwrap_or_default(),
                0u64, // no-op
            )
            .with_window(window);
            actors.push(Box::new(log));
        }
        let mut b = SimBuilder::new(actors);
        for &c in crashed {
            b = b.corrupt(ProcessId(c));
        }
        b.build()
    }

    fn logs(sim: &Simulation<Msg>, crashed: &[u32]) -> Vec<Vec<LogEntry<u64>>> {
        (0..sim.n() as u32)
            .filter(|i| !crashed.contains(i))
            .map(|i| {
                let l: &Log = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
                l.log().to_vec()
            })
            .collect()
    }

    #[test]
    fn failure_free_log_replicates_commands() {
        let n = 5;
        let commands: Vec<Vec<u64>> = (0..n).map(|i| vec![100 + i as u64]).collect();
        let mut sim = make_sim(n, 3, 1, commands, &[]);
        let budget = {
            let l: &Log = sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
            l.total_rounds() + 2
        };
        sim.run_until_done(budget).unwrap();
        let all = logs(&sim, &[]);
        for l in &all {
            assert_eq!(l, &all[0], "logs must be identical");
        }
        // Slots 0,1,2 proposed by p0,p1,p2 with their first commands.
        let committed: Vec<u64> = all[0].iter().filter_map(|e| e.entry.value().copied()).collect();
        assert_eq!(committed, vec![100, 101, 102]);
    }

    #[test]
    fn crashed_proposer_slot_skips_but_stays_aligned() {
        let n = 5;
        let commands: Vec<Vec<u64>> = (0..n).map(|i| vec![100 + i as u64]).collect();
        // p1 crashed: slot 1 must be ⊥, slots 0 and 2 commit.
        let crashed = [1u32];
        let mut sim = make_sim(n, 3, 1, commands, &crashed);
        sim.run_until_done(20_000).unwrap();
        let all = logs(&sim, &crashed);
        for l in &all {
            assert_eq!(l, &all[0], "logs must be identical");
        }
        assert_eq!(all[0][0].entry, Decision::Value(100));
        assert_eq!(all[0][1].entry, Decision::Bot, "crashed proposer slot skipped");
        assert_eq!(all[0][2].entry, Decision::Value(102));
    }

    #[test]
    fn empty_queue_proposes_noop() {
        let n = 5;
        let mut sim = make_sim(n, 1, 1, vec![vec![]; n], &[]);
        sim.run_until_done(20_000).unwrap();
        let all = logs(&sim, &[]);
        assert_eq!(all[0][0].entry, Decision::Value(0), "no-op committed");
    }

    #[test]
    fn slot_schedule_is_fixed_and_positive() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let (pki, keys) = trusted_setup(5, 1);
        let factory = RecursiveBaFactory::new(cfg, keys[0].clone(), pki);
        let rounds = Log::slot_rounds(&cfg, &factory);
        assert!(rounds > 40, "must cover phases + help + fallback, got {rounds}");
    }

    /// Acceptance: with `W ≥ 2` a failure-free 8-slot log commits in
    /// strictly fewer total rounds than the sequential fixed-schedule
    /// log, and the per-session metrics show every clean slot at the
    /// adaptive word cost.
    #[test]
    fn pipelined_beats_sequential_on_failure_free_8_slots() {
        let n = 5;
        let slots = 8u64;
        let commands: Vec<Vec<u64>> =
            (0..n).map(|i| vec![100 + i as u64, 200 + i as u64]).collect();
        let run = |window: u64| {
            let mut sim = make_sim(n, slots, window, commands.clone(), &[]);
            sim.run_until_done(100_000).unwrap();
            let logs = logs(&sim, &[]);
            for l in &logs {
                assert_eq!(l, &logs[0], "window {window}: logs must be identical");
                assert_eq!(l.len(), slots as usize);
            }
            (sim.metrics().rounds, sim.metrics().clone(), logs[0].clone())
        };
        let (seq_rounds, _, seq_log) = run(1);
        let (pip_rounds, pip_metrics, pip_log) = run(2);
        assert_eq!(seq_log, pip_log, "pipelining must not change the committed log");
        assert!(
            pip_rounds < seq_rounds,
            "W=2 must commit in strictly fewer rounds: {pip_rounds} vs {seq_rounds}"
        );
        // Fixed-schedule upper bound for reference: W=1 with early
        // retirement already beats slots × slot_rounds.
        // Each clean slot costs the adaptive O(n) word price, measured
        // per session. 22n is the same bound the BB unit test asserts
        // for a single failure-free instance.
        assert_eq!(pip_metrics.per_session.len(), slots as usize);
        for (slot, stats) in &pip_metrics.per_session {
            assert!(
                stats.counters.words <= 22 * n as u64,
                "slot {slot} not adaptive: {} words",
                stats.counters.words
            );
            assert!(stats.last_round >= stats.first_round);
        }
    }

    /// A faulty slot's full worst-case schedule overlaps several clean
    /// slots under `W = 4`; domain separation keeps them independent.
    #[test]
    fn pipelined_log_overlaps_faulty_slot_without_interference() {
        let n = 5;
        let slots = 4u64;
        let commands: Vec<Vec<u64>> = (0..n).map(|i| vec![100 + i as u64]).collect();
        let crashed = [1u32];
        let mut sim = make_sim(n, slots, 4, commands, &crashed);
        sim.run_until_done(100_000).unwrap();
        let all = logs(&sim, &crashed);
        for l in &all {
            assert_eq!(l, &all[0], "logs must be identical");
        }
        let entries: Vec<&Decision<u64>> = all[0].iter().map(|e| &e.entry).collect();
        assert_eq!(entries[0], &Decision::Value(100));
        assert_eq!(entries[1], &Decision::Bot, "crashed proposer slot skipped");
        assert_eq!(entries[2], &Decision::Value(102));
        assert_eq!(entries[3], &Decision::Value(103));
    }

    #[test]
    fn window_controls_stride() {
        let n = 5;
        let cfg = SystemConfig::new(n, 9).unwrap();
        let (pki, keys) = trusted_setup(n, 77);
        let factory = RecursiveBaFactory::new(cfg, keys[0].clone(), pki.clone());
        let sr = Log::slot_rounds(&cfg, &factory);
        let mk = |w| {
            ReplicatedLog::<u64, RecursiveBaFactory>::new(
                cfg,
                ProcessId(0),
                keys[0].clone(),
                pki.clone(),
                factory.clone(),
                6,
                vec![],
                0,
            )
            .with_window(w)
        };
        let seq = mk(1);
        assert_eq!(seq.stride(), sr);
        assert_eq!(seq.total_rounds(), 5 * sr + sr);
        let pip = mk(3);
        assert_eq!(pip.stride(), sr.div_ceil(3));
        assert!(pip.total_rounds() < seq.total_rounds());
        // W = 0 is clamped to 1, not a division by zero.
        assert_eq!(mk(0).stride(), sr);
    }

    /// The service-facing seam: dynamically enqueued commands bind to
    /// proposer slots, and explicit slot spawning is collision-checked
    /// with a typed error instead of silently aliasing the live session.
    #[test]
    fn enqueue_and_dynamic_spawn_seam() {
        use meba_sim::SessionSpawnError;
        let n = 5;
        let cfg = SystemConfig::new(n, 9).unwrap();
        let (pki, keys) = trusted_setup(n, 77);
        let factory = RecursiveBaFactory::new(cfg, keys[0].clone(), pki.clone());
        let mut log = ReplicatedLog::<u64, RecursiveBaFactory>::new(
            cfg,
            ProcessId(0),
            keys[0].clone(),
            pki,
            factory,
            6,
            vec![],
            0,
        );
        assert_eq!(log.queued(), 0);
        log.enqueue(111);
        log.enqueue(222);
        assert_eq!(log.queued(), 2);
        assert_eq!(log.queued_front(), Some(&111));
        assert_eq!(log.total_slots(), 6);
        assert_eq!(log.proposer_of(0), ProcessId(0));
        assert_eq!(log.proposer_of(7), ProcessId(2));
        let stride = log.stride();
        assert_eq!(log.due_slot(0), Some(0));
        assert_eq!(log.due_slot(1), None);
        assert_eq!(log.due_slot(stride), Some(1));
        assert_eq!(log.due_slot(6 * stride), None, "past the last slot");
        // Spawning slot 0 binds the queue head; spawning it again is a
        // typed collision, and the queue is untouched.
        assert_eq!(log.spawn_due(0), Ok(()));
        assert_eq!(log.queued(), 1, "slot 0 popped the queue head");
        assert_eq!(
            log.try_open_slot(0),
            Err(SessionSpawnError::Live(meba_sim::SessionId(0))),
            "reusing a live slot id must surface, not alias"
        );
        assert_eq!(log.queued(), 1, "collision must not consume a command");
        // Out-of-range slots are refused, stickily.
        assert_eq!(log.try_open_slot(99), Err(SessionSpawnError::Refused(meba_sim::SessionId(99))));
        assert_eq!(log.try_open_slot(99), Err(SessionSpawnError::Retired(meba_sim::SessionId(99))));
    }

    /// Acceptance for the state-transfer seam: every failure-free slot
    /// retires with commit evidence; the evidence re-derives exactly the
    /// committed decision for a third party; and replayed-to-another-slot
    /// or bit-flipped evidence is rejected, not mis-verified.
    #[test]
    fn evidence_certifies_committed_slots_and_rejects_forgeries() {
        let n = 5;
        let commands: Vec<Vec<u64>> = (0..n).map(|i| vec![100 + i as u64]).collect();
        let mut sim = make_sim(n, 3, 1, commands, &[]);
        sim.run_until_done(100_000).unwrap();
        let cfg = SystemConfig::new(n, 9).unwrap();
        let (pki, _) = trusted_setup(n, 77);
        let l: &Log = sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
        assert_eq!(l.committed_prefix(), 3);
        for slot in 0..3u64 {
            let ev = l.evidence(slot).expect("fast-path slot carries evidence");
            let d = verify_slot_evidence::<u64>(&cfg, &pki, slot, ev)
                .expect("genuine evidence verifies");
            assert_eq!(d, l.entry(slot).unwrap().entry, "slot {slot} decision re-derived");
            // Cross-slot replay: the per-slot session domain must refuse
            // slot k's certificate presented for slot k + 7.
            assert!(
                verify_slot_evidence::<u64>(&cfg, &pki, slot + 7, ev).is_none(),
                "slot {slot} evidence replayed for another slot must fail"
            );
            // Tampered value bytes: the proof's digest no longer matches.
            let mut forged = ev.clone();
            let last = forged.ba_value.len() - 1;
            forged.ba_value[last] ^= 1;
            assert!(
                verify_slot_evidence::<u64>(&cfg, &pki, slot, &forged).is_none(),
                "slot {slot} tampered evidence must fail"
            );
        }
    }

    #[test]
    fn slot_journal_domains_are_disjoint() {
        // Crash recovery shares ONE signing registry (and one journal)
        // per process across all pipelined slots: this is safe exactly
        // because slot_cfg's session derivation makes every slot's
        // signing contexts disjoint. Registering the full signing
        // surface of many slots must never collide; re-signing a slot's
        // context with a different preimage must still be refused.
        use meba_core::signing::{BbIdkSig, BbValueSig};
        use meba_crypto::{Digest, SignContext, SignRegistry, Signable};
        let cfg = SystemConfig::new(5, 9).unwrap();
        let mut registry = SignRegistry::new();
        for slot in 0..16u64 {
            let session = Log::slot_cfg(&cfg, slot).session();
            let value = 100 + slot;
            let val = BbValueSig { session, value: &value };
            assert!(
                registry
                    .record(&val.context_bytes(), Digest::of(&val.signing_bytes()))
                    .expect("fresh slot domain"),
                "slot {slot} value context must be new"
            );
            for phase in 1..4u32 {
                let idk = BbIdkSig { session, phase };
                assert!(registry
                    .record(&idk.context_bytes(), Digest::of(&idk.signing_bytes()))
                    .expect("fresh (slot, phase) domain"));
            }
        }
        // Within one slot the guard still bites: a second value under
        // slot 3's sender context is the classic equivocation.
        let session = Log::slot_cfg(&cfg, 3).session();
        let forged = BbValueSig { session, value: &999u64 };
        assert!(registry
            .record(&forged.context_bytes(), Digest::of(&forged.signing_bytes()))
            .is_err());
        assert_eq!(registry.refused(), 1);
    }
}
