//! State-machine replication over repeated adaptive Byzantine Broadcast.
//!
//! The paper's introduction motivates adaptive BA precisely for "many
//! distributed systems" that run agreement continuously and whose runs
//! are usually failure-free. This crate is that downstream consumer: a
//! replicated log where slot `k` is one adaptive BB instance with
//! rotating proposer `p_{k mod n}`. Clean slots cost the adaptive
//! `O(n(f+1))` price; a faulty proposer merely yields a `⊥` (no-op) slot.
//!
//! Slots are hosted as sessions of a [`meba_sim::Mux`], each tagged with
//! its slot number on the wire ([`SmrMsg`]). The log is **pipelined**:
//! slot `k + 1` opens a fixed stride of rounds after slot `k`
//! (configurable window `W`, [`ReplicatedLog::with_window`]), and a slot
//! retires as soon as its instance finishes instead of burning the
//! worst-case schedule — so clean slots are not just cheap in words but
//! fast in rounds, realizing the paper's adaptivity end-to-end. The
//! session id of slot `k` domain-separates its signatures from every
//! other slot, which is what makes the concurrent instances safe.
//!
//! # Examples
//!
//! See `examples/replicated_log.rs` at the workspace root and the tests
//! in this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod log;

pub use log::{slot_config, verify_slot_evidence, CommitEvidence, LogEntry, ReplicatedLog, SmrMsg};
