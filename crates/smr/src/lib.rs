//! State-machine replication over repeated adaptive Byzantine Broadcast.
//!
//! The paper's introduction motivates adaptive BA precisely for "many
//! distributed systems" that run agreement continuously and whose runs
//! are usually failure-free. This crate is that downstream consumer: a
//! replicated log where slot `k` is one adaptive BB instance with
//! rotating proposer `p_{k mod n}`. Clean slots cost the adaptive
//! `O(n(f+1))` price; a faulty proposer merely yields a `⊥` (no-op) slot.
//!
//! Slots run on a **fixed, system-wide schedule** of
//! [`ReplicatedLog::slot_rounds`] rounds each (the worst-case BB schedule,
//! fallback included), so all correct replicas stay in lockstep without
//! any extra coordination; the session id of slot `k` domain-separates
//! its signatures from every other slot.
//!
//! # Examples
//!
//! See `examples/replicated_log.rs` at the workspace root and the tests
//! in this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod log;

pub use log::{LogEntry, ReplicatedLog, SmrMsg};
