//! Error types for signature verification and certificate assembly.

use crate::ProcessId;
use std::error::Error;
use std::fmt;

/// Error produced by verification or combination of signatures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The signature tag does not verify against the claimed signer and
    /// message.
    BadSignature {
        /// Claimed signer.
        signer: ProcessId,
    },
    /// A signer identity is outside the PKI's process set.
    UnknownSigner {
        /// The out-of-range identity.
        signer: ProcessId,
    },
    /// The same process contributed more than one share.
    DuplicateSigner {
        /// The duplicated identity.
        signer: ProcessId,
    },
    /// Fewer valid shares than the scheme's threshold.
    InsufficientShares {
        /// Shares required by the `(k, n)` scheme.
        needed: usize,
        /// Valid, distinct shares supplied.
        got: usize,
    },
    /// A threshold or aggregate signature was presented for a different
    /// message than it certifies.
    MessageMismatch,
    /// The threshold parameter is zero or exceeds `n`.
    BadThreshold {
        /// Offending threshold.
        k: usize,
        /// System size.
        n: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature { signer } => {
                write!(f, "signature by {signer} does not verify")
            }
            CryptoError::UnknownSigner { signer } => {
                write!(f, "signer {signer} is not part of the PKI")
            }
            CryptoError::DuplicateSigner { signer } => {
                write!(f, "duplicate share from {signer}")
            }
            CryptoError::InsufficientShares { needed, got } => {
                write!(f, "needed {needed} distinct valid shares, got {got}")
            }
            CryptoError::MessageMismatch => {
                write!(f, "certificate does not certify the presented message")
            }
            CryptoError::BadThreshold { k, n } => {
                write!(f, "invalid threshold {k} for system of {n} processes")
            }
        }
    }
}

impl Error for CryptoError {}

/// Error produced while decoding canonical wire bytes.
///
/// Decoding is total: any byte string either decodes or yields one of
/// these errors — malformed input never panics and never allocates
/// unboundedly (length prefixes are checked against the remaining input
/// before any buffer is built).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input ended before a field was complete.
    UnexpectedEnd {
        /// Bytes the pending field still required.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A field's type-prefix byte did not match the expected field kind.
    TypeTag {
        /// Tag byte the decoder expected.
        expected: u8,
        /// Tag byte found in the input.
        found: u8,
    },
    /// A field decoded but its value is not canonical (e.g. a boolean or
    /// option presence byte other than 0/1, an unsorted signer set, a
    /// non-UTF-8 string, or an out-of-range enum discriminant).
    Invalid {
        /// Human-readable description of the offending field.
        what: &'static str,
    },
    /// Input remained after the value was fully decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        count: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { needed, remaining } => {
                write!(f, "input ended early: field needs {needed} bytes, {remaining} remain")
            }
            DecodeError::TypeTag { expected, found } => {
                write!(f, "type tag mismatch: expected {expected:#04x}, found {found:#04x}")
            }
            DecodeError::Invalid { what } => write!(f, "non-canonical encoding: {what}"),
            DecodeError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after a complete value")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = CryptoError::InsufficientShares { needed: 4, got: 2 };
        let s = e.to_string();
        assert!(s.starts_with("needed 4"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CryptoError>();
    }
}
