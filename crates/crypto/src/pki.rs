//! Trusted public-key infrastructure with ideal signature schemes.
//!
//! The paper (§2) "abstracts away the details of cryptography and
//! assumes the threshold signature schemes are ideal". This module
//! realizes that abstraction inside the simulation:
//!
//! * Every process holds a [`SecretKey`] only the trusted setup can mint.
//! * [`Signature`], [`ThresholdSignature`] and [`AggregateSignature`] have
//!   **private constructors** — the only way to obtain one is to hold the
//!   relevant secret keys and call the signing/combining API. A Byzantine
//!   process in the simulation therefore cannot forge a certificate it
//!   could not forge under an ideal scheme.
//! * Tags are HMAC-SHA256 under per-process keys derived from a master
//!   secret held by the [`Pki`] verification handle, which exposes no key
//!   material.
//!
//! Word accounting follows the paper's model: each signature object —
//! individual, threshold, or aggregate — costs **one word** (see
//! [`crate::words::WordCost`]), while its *constituent* signature count
//! (used by experiment E4 to reproduce the Dolev–Reischuk `Ω(nt)`
//! signature bound) is `1`, `k`, and `|signers|` respectively.

use crate::error::{CryptoError, DecodeError};
use crate::hmac::{ct_eq, hmac_sha256, HmacSha256};
use crate::ids::ProcessId;
use crate::sha256::Digest;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Domain-separation tags for the three schemes.
const DOM_SIGN: &[u8] = b"meba/sig/v1";
const DOM_THRESH: &[u8] = b"meba/thresh/v1";
const DOM_AGG: &[u8] = b"meba/agg/v1";
const DOM_SK: &[u8] = b"meba/sk/v1";

/// Runs the trusted setup: generates a PKI for `n` processes and the
/// per-process secret keys.
///
/// The caller (the simulation harness) distributes each [`SecretKey`] to
/// its process; the [`Pki`] handle is public and may be cloned freely.
///
/// # Examples
///
/// ```
/// use meba_crypto::pki::trusted_setup;
///
/// let (pki, keys) = trusted_setup(4, 42);
/// let sig = keys[1].sign(b"hello");
/// assert!(pki.verify(b"hello", &sig).is_ok());
/// assert!(pki.verify(b"tampered", &sig).is_err());
/// ```
pub fn trusted_setup(n: usize, seed: u64) -> (Pki, Vec<SecretKey>) {
    assert!(n > 0, "a system needs at least one process");
    let master = hmac_sha256(&seed.to_be_bytes(), b"meba master secret");
    // Pre-absorb key pads and domain tags once per scheme so every
    // sign/verify afterwards clones a primed MAC state instead of
    // re-deriving the per-signer secret and re-running key setup. The
    // resulting tags are byte-identical to the unprimed construction.
    let sig_macs = ProcessId::all(n)
        .map(|id| {
            let mut mac = HmacSha256::new(&derive_secret(&master, id));
            mac.update(DOM_SIGN);
            mac
        })
        .collect();
    let mut thresh_mac = HmacSha256::new(&master);
    thresh_mac.update(DOM_THRESH);
    let mut agg_mac = HmacSha256::new(&master);
    agg_mac.update(DOM_AGG);
    let inner = Arc::new(PkiInner { n, sig_macs, thresh_mac, agg_mac });
    let pki = Pki { inner };
    let keys = ProcessId::all(n).map(|id| SecretKey::new(id, derive_secret(&master, id))).collect();
    (pki, keys)
}

fn derive_secret(master: &[u8; 32], id: ProcessId) -> [u8; 32] {
    let mut mac = HmacSha256::new(master);
    mac.update(DOM_SK);
    mac.update(&id.0.to_be_bytes());
    mac.finalize()
}

struct PkiInner {
    n: usize,
    /// Per-signer HMAC states with key pads + `DOM_SIGN` already absorbed.
    sig_macs: Vec<HmacSha256>,
    /// Master-keyed HMAC state with `DOM_THRESH` absorbed.
    thresh_mac: HmacSha256,
    /// Master-keyed HMAC state with `DOM_AGG` absorbed.
    agg_mac: HmacSha256,
}

/// Public verification handle for the system's signature schemes.
///
/// Cheap to clone (shared internals). Exposes *no* key material: holding a
/// `Pki` lets a process verify anything but sign nothing.
#[derive(Clone)]
pub struct Pki {
    inner: Arc<PkiInner>,
}

impl fmt::Debug for Pki {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pki").field("n", &self.inner.n).finish_non_exhaustive()
    }
}

impl Pki {
    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.inner.n
    }

    fn check_signer(&self, signer: ProcessId) -> Result<(), CryptoError> {
        if signer.index() >= self.inner.n {
            Err(CryptoError::UnknownSigner { signer })
        } else {
            Ok(())
        }
    }

    /// Tag for a checked signer: clones the primed per-signer MAC state,
    /// so per-verify cost is only the message absorption + finalize.
    fn sig_tag(&self, signer: ProcessId, msg: &[u8]) -> [u8; 32] {
        let mut mac = self.inner.sig_macs[signer.index()].clone();
        mac.update(msg);
        mac.finalize()
    }

    /// Verifies an individual signature on `msg`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::UnknownSigner`] if the claimed signer is outside the
    /// system, [`CryptoError::BadSignature`] if the tag does not verify.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        self.check_signer(sig.signer)?;
        if ct_eq(&self.sig_tag(sig.signer, msg), &sig.tag) {
            Ok(())
        } else {
            Err(CryptoError::BadSignature { signer: sig.signer })
        }
    }

    /// Verifies a batch of individual signatures on one message — the
    /// shape of a certificate's `k` shares. Exactly equivalent to calling
    /// [`Pki::verify`] on each signature in slice order and returning the
    /// first error; the batch form exists so call sites verifying a
    /// certificate's shares go through one amortized entry point (primed
    /// MAC states, no per-signature key derivation or pad absorption).
    pub fn verify_batch(&self, msg: &[u8], sigs: &[Signature]) -> Result<(), CryptoError> {
        sigs.iter().try_for_each(|sig| self.verify(msg, sig))
    }

    fn thresh_tag(&self, k: usize, digest: &Digest) -> [u8; 32] {
        let mut mac = self.inner.thresh_mac.clone();
        mac.update(&(k as u64).to_be_bytes());
        mac.update(digest.as_bytes());
        mac.finalize()
    }

    /// Batches `k` (or more) unique valid signatures on `msg` into a
    /// `(k, n)`-threshold signature — one word, per the paper's model.
    ///
    /// Invalid shares are rejected (not silently skipped) so a correct
    /// leader never wastes a round on a certificate that will not verify.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::BadThreshold`] — `k == 0` or `k > n`.
    /// * [`CryptoError::DuplicateSigner`] — two shares from one process.
    /// * [`CryptoError::BadSignature`] / [`CryptoError::UnknownSigner`] —
    ///   an invalid share.
    /// * [`CryptoError::InsufficientShares`] — fewer than `k` shares.
    ///
    /// # Examples
    ///
    /// ```
    /// use meba_crypto::pki::trusted_setup;
    ///
    /// let (pki, keys) = trusted_setup(5, 1);
    /// let shares: Vec<_> = keys.iter().take(3).map(|k| k.sign(b"v")).collect();
    /// let qc = pki.combine(3, b"v", &shares)?;
    /// assert!(pki.verify_threshold(b"v", &qc).is_ok());
    /// # Ok::<(), meba_crypto::CryptoError>(())
    /// ```
    pub fn combine(
        &self,
        k: usize,
        msg: &[u8],
        shares: &[Signature],
    ) -> Result<ThresholdSignature, CryptoError> {
        if k == 0 || k > self.inner.n {
            return Err(CryptoError::BadThreshold { k, n: self.inner.n });
        }
        let mut seen = BTreeSet::new();
        for s in shares {
            self.verify(msg, s)?;
            if !seen.insert(s.signer) {
                return Err(CryptoError::DuplicateSigner { signer: s.signer });
            }
        }
        if seen.len() < k {
            return Err(CryptoError::InsufficientShares { needed: k, got: seen.len() });
        }
        let digest = Digest::of(msg);
        Ok(ThresholdSignature { threshold: k, digest, tag: self.thresh_tag(k, &digest) })
    }

    /// Verifies that `ts` certifies `msg` under its `(k, n)` scheme.
    ///
    /// # Errors
    ///
    /// [`CryptoError::MessageMismatch`] if the certificate was issued for a
    /// different message or its tag does not verify.
    pub fn verify_threshold(&self, msg: &[u8], ts: &ThresholdSignature) -> Result<(), CryptoError> {
        self.verify_threshold_digest(&Digest::of(msg), ts)
    }

    fn verify_threshold_digest(
        &self,
        digest: &Digest,
        ts: &ThresholdSignature,
    ) -> Result<(), CryptoError> {
        if *digest != ts.digest {
            return Err(CryptoError::MessageMismatch);
        }
        if ct_eq(&self.thresh_tag(ts.threshold, digest), &ts.tag) {
            Ok(())
        } else {
            Err(CryptoError::MessageMismatch)
        }
    }

    /// Verifies a batch of threshold certificates, each against its own
    /// preimage. Exactly equivalent to calling [`Pki::verify_threshold`]
    /// on each pair in order and returning the first error. Consecutive
    /// entries certifying the same preimage — the common shape when one
    /// round admits many copies of a certificate — share a single
    /// message digest, on top of the primed master-MAC state every
    /// verification reuses.
    pub fn verify_threshold_batch(
        &self,
        items: &[(&[u8], &ThresholdSignature)],
    ) -> Result<(), CryptoError> {
        let mut memo: Option<(&[u8], Digest)> = None;
        for &(msg, ts) in items {
            let digest = match &memo {
                Some((m, d)) if *m == msg => *d,
                _ => {
                    let d = Digest::of(msg);
                    memo = Some((msg, d));
                    d
                }
            };
            self.verify_threshold_digest(&digest, ts)?;
        }
        Ok(())
    }

    fn agg_tag(&self, signers: &BTreeSet<ProcessId>, digest: &Digest) -> [u8; 32] {
        let mut mac = self.inner.agg_mac.clone();
        for s in signers {
            mac.update(&s.0.to_be_bytes());
        }
        mac.update(digest.as_bytes());
        mac.finalize()
    }

    /// Aggregates individual signatures on `msg` into a multi-signature
    /// with an explicit signer set (BLS-style; one word plus the signer
    /// bitmap, which the word model also counts as one word).
    ///
    /// # Errors
    ///
    /// Same share-validation errors as [`Pki::combine`]; an empty share
    /// list yields [`CryptoError::InsufficientShares`].
    pub fn aggregate(
        &self,
        msg: &[u8],
        shares: &[Signature],
    ) -> Result<AggregateSignature, CryptoError> {
        if shares.is_empty() {
            return Err(CryptoError::InsufficientShares { needed: 1, got: 0 });
        }
        let mut signers = BTreeSet::new();
        for s in shares {
            self.verify(msg, s)?;
            if !signers.insert(s.signer) {
                return Err(CryptoError::DuplicateSigner { signer: s.signer });
            }
        }
        let digest = Digest::of(msg);
        let tag = self.agg_tag(&signers, &digest);
        Ok(AggregateSignature { signers, digest, tag })
    }

    /// Extends an aggregate with one more signature on the same message
    /// (used by Dolev–Strong style forwarding chains).
    ///
    /// # Errors
    ///
    /// [`CryptoError::MessageMismatch`] if `agg` does not certify `msg`;
    /// [`CryptoError::DuplicateSigner`] if the signer already contributed;
    /// plus individual-signature errors for `extra`.
    pub fn extend_aggregate(
        &self,
        msg: &[u8],
        agg: &AggregateSignature,
        extra: &Signature,
    ) -> Result<AggregateSignature, CryptoError> {
        self.verify_aggregate(msg, agg)?;
        self.verify(msg, extra)?;
        if agg.signers.contains(&extra.signer) {
            return Err(CryptoError::DuplicateSigner { signer: extra.signer });
        }
        let mut signers = agg.signers.clone();
        signers.insert(extra.signer);
        let tag = self.agg_tag(&signers, &agg.digest);
        Ok(AggregateSignature { signers, digest: agg.digest, tag })
    }

    /// Verifies an aggregate signature on `msg`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::MessageMismatch`] on digest or tag mismatch;
    /// [`CryptoError::UnknownSigner`] if the signer set leaves the system.
    pub fn verify_aggregate(
        &self,
        msg: &[u8],
        agg: &AggregateSignature,
    ) -> Result<(), CryptoError> {
        for &s in &agg.signers {
            self.check_signer(s)?;
        }
        let digest = Digest::of(msg);
        if digest != agg.digest {
            return Err(CryptoError::MessageMismatch);
        }
        if ct_eq(&self.agg_tag(&agg.signers, &digest), &agg.tag) {
            Ok(())
        } else {
            Err(CryptoError::MessageMismatch)
        }
    }
}

/// Signing key of a single process.
///
/// Only the trusted setup can create one; the harness hands each process
/// (and the adversary, for corrupted processes) its key.
#[derive(Clone)]
pub struct SecretKey {
    id: ProcessId,
    /// HMAC state with the key pads and `DOM_SIGN` pre-absorbed; each
    /// `sign` clones it and absorbs only the message.
    primed: HmacSha256,
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey({})", self.id)
    }
}

impl SecretKey {
    fn new(id: ProcessId, key: [u8; 32]) -> Self {
        let mut primed = HmacSha256::new(&key);
        primed.update(DOM_SIGN);
        SecretKey { id, primed }
    }

    /// The identity this key signs for.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Signs `msg`, producing `⟨msg⟩_p` in the paper's notation.
    ///
    /// # Examples
    ///
    /// ```
    /// use meba_crypto::pki::trusted_setup;
    ///
    /// let (pki, keys) = trusted_setup(3, 7);
    /// let sig = keys[0].sign(b"proposal");
    /// assert_eq!(sig.signer(), keys[0].id());
    /// assert!(pki.verify(b"proposal", &sig).is_ok());
    /// ```
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let mut mac = self.primed.clone();
        mac.update(msg);
        Signature { signer: self.id, tag: mac.finalize() }
    }
}

/// An individual signature `⟨m⟩_p`. One word.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signature {
    signer: ProcessId,
    tag: [u8; 32],
}

impl Signature {
    /// The claimed signer (authenticated once [`Pki::verify`] succeeds).
    pub fn signer(&self) -> ProcessId {
        self.signer
    }

    /// Writes the signature's canonical wire encoding (signer + tag) into
    /// `enc`, so values embedding signatures hash deterministically.
    pub fn encode(&self, enc: &mut crate::encoding::Encoder) {
        enc.put_id(self.signer);
        enc.put_bytes(&self.tag);
    }

    /// Reads a signature from its canonical wire encoding.
    ///
    /// Decoding does **not** authenticate: the result carries whatever tag
    /// the bytes claimed and only [`Pki::verify`] decides whether it is
    /// genuine, so the ideal-scheme unforgeability argument is unchanged.
    pub fn decode(dec: &mut crate::encoding::Decoder<'_>) -> Result<Self, DecodeError> {
        let signer = dec.get_id()?;
        let tag: [u8; 32] = dec
            .get_bytes_borrowed()?
            .try_into()
            .map_err(|_| DecodeError::Invalid { what: "signature tag length" })?;
        Ok(Signature { signer, tag })
    }
}

impl crate::encoding::WireCodec for Signature {
    fn encode_wire(&self, enc: &mut crate::encoding::Encoder) {
        self.encode(enc);
    }
    fn decode_wire(dec: &mut crate::encoding::Decoder<'_>) -> Result<Self, DecodeError> {
        Signature::decode(dec)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sig({})", self.signer)
    }
}

/// A `(k, n)`-threshold signature: `k` unique signatures batched into one
/// word. Does not reveal the signer set, matching real threshold schemes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThresholdSignature {
    threshold: usize,
    digest: Digest,
    tag: [u8; 32],
}

impl ThresholdSignature {
    /// The scheme threshold `k` this certificate proves.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Digest of the certified message.
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// Writes the certificate's canonical wire encoding into `enc`.
    pub fn encode(&self, enc: &mut crate::encoding::Encoder) {
        enc.put_u64(self.threshold as u64);
        enc.put_digest(&self.digest);
        enc.put_bytes(&self.tag);
    }

    /// Reads a threshold certificate from its canonical wire encoding.
    /// Unauthenticated until [`Pki::verify_threshold`] accepts it.
    pub fn decode(dec: &mut crate::encoding::Decoder<'_>) -> Result<Self, DecodeError> {
        let threshold = dec.get_u64()?;
        let threshold = usize::try_from(threshold)
            .map_err(|_| DecodeError::Invalid { what: "threshold overflows usize" })?;
        let digest = dec.get_digest()?;
        let tag: [u8; 32] = dec
            .get_bytes_borrowed()?
            .try_into()
            .map_err(|_| DecodeError::Invalid { what: "certificate tag length" })?;
        Ok(ThresholdSignature { threshold, digest, tag })
    }
}

impl crate::encoding::WireCodec for ThresholdSignature {
    fn encode_wire(&self, enc: &mut crate::encoding::Encoder) {
        self.encode(enc);
    }
    fn decode_wire(dec: &mut crate::encoding::Decoder<'_>) -> Result<Self, DecodeError> {
        ThresholdSignature::decode(dec)
    }
}

impl fmt::Debug for ThresholdSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ThreshSig(k={}, {:?})", self.threshold, self.digest)
    }
}

/// A multi-signature with an explicit signer set. One word.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AggregateSignature {
    signers: BTreeSet<ProcessId>,
    digest: Digest,
    tag: [u8; 32],
}

impl AggregateSignature {
    /// Set of processes that signed.
    pub fn signers(&self) -> &BTreeSet<ProcessId> {
        &self.signers
    }

    /// Number of constituent signatures.
    pub fn len(&self) -> usize {
        self.signers.len()
    }

    /// Whether the signer set is empty (never true for a constructed
    /// aggregate, but required by convention alongside [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.signers.is_empty()
    }

    /// Digest of the certified message.
    pub fn digest(&self) -> Digest {
        self.digest
    }

    /// Whether `p` contributed to this aggregate.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.signers.contains(&p)
    }

    /// Writes the aggregate's canonical wire encoding into `enc`.
    pub fn encode(&self, enc: &mut crate::encoding::Encoder) {
        enc.put_u64(self.signers.len() as u64);
        for s in &self.signers {
            enc.put_id(*s);
        }
        enc.put_digest(&self.digest);
        enc.put_bytes(&self.tag);
    }

    /// Reads an aggregate from its canonical wire encoding.
    ///
    /// The signer list must be strictly ascending — the only order the
    /// encoder (iterating a `BTreeSet`) ever produces — so every aggregate
    /// has exactly one byte representation. Unauthenticated until
    /// [`Pki::verify_aggregate`] accepts it.
    pub fn decode(dec: &mut crate::encoding::Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.get_u64()?;
        let mut signers = BTreeSet::new();
        let mut prev: Option<ProcessId> = None;
        for _ in 0..len {
            let id = dec.get_id()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(DecodeError::Invalid { what: "aggregate signer set not ascending" });
            }
            prev = Some(id);
            signers.insert(id);
        }
        let digest = dec.get_digest()?;
        let tag: [u8; 32] = dec
            .get_bytes_borrowed()?
            .try_into()
            .map_err(|_| DecodeError::Invalid { what: "aggregate tag length" })?;
        Ok(AggregateSignature { signers, digest, tag })
    }
}

impl crate::encoding::WireCodec for AggregateSignature {
    fn encode_wire(&self, enc: &mut crate::encoding::Encoder) {
        self.encode(enc);
    }
    fn decode_wire(dec: &mut crate::encoding::Decoder<'_>) -> Result<Self, DecodeError> {
        AggregateSignature::decode(dec)
    }
}

impl fmt::Debug for AggregateSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AggSig({:?}, {:?})", self.signers, self.digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (Pki, Vec<SecretKey>) {
        trusted_setup(n, 0xfeed)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (pki, keys) = setup(4);
        for k in &keys {
            let sig = k.sign(b"m");
            assert!(pki.verify(b"m", &sig).is_ok());
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let (pki, keys) = setup(3);
        let sig = keys[0].sign(b"m");
        assert_eq!(
            pki.verify(b"m2", &sig),
            Err(CryptoError::BadSignature { signer: ProcessId(0) })
        );
    }

    #[test]
    fn cross_seed_keys_do_not_verify() {
        let (pki_a, _) = trusted_setup(3, 1);
        let (_, keys_b) = trusted_setup(3, 2);
        let sig = keys_b[0].sign(b"m");
        assert!(pki_a.verify(b"m", &sig).is_err());
    }

    #[test]
    fn deterministic_setup() {
        let (pki1, keys1) = trusted_setup(3, 9);
        let (pki2, keys2) = trusted_setup(3, 9);
        let s1 = keys1[2].sign(b"x");
        let s2 = keys2[2].sign(b"x");
        assert_eq!(s1, s2);
        assert!(pki1.verify(b"x", &s2).is_ok());
        assert!(pki2.verify(b"x", &s1).is_ok());
    }

    #[test]
    fn combine_happy_path() {
        let (pki, keys) = setup(7);
        let shares: Vec<_> = keys.iter().take(4).map(|k| k.sign(b"v")).collect();
        let qc = pki.combine(4, b"v", &shares).unwrap();
        assert_eq!(qc.threshold(), 4);
        assert!(pki.verify_threshold(b"v", &qc).is_ok());
        assert!(pki.verify_threshold(b"w", &qc).is_err());
    }

    #[test]
    fn combine_accepts_surplus_shares() {
        let (pki, keys) = setup(5);
        let shares: Vec<_> = keys.iter().map(|k| k.sign(b"v")).collect();
        assert!(pki.combine(3, b"v", &shares).is_ok());
    }

    #[test]
    fn combine_rejects_duplicates() {
        let (pki, keys) = setup(5);
        let s = keys[0].sign(b"v");
        let shares = vec![s.clone(), s, keys[1].sign(b"v")];
        assert_eq!(
            pki.combine(3, b"v", &shares),
            Err(CryptoError::DuplicateSigner { signer: ProcessId(0) })
        );
    }

    #[test]
    fn combine_rejects_insufficient() {
        let (pki, keys) = setup(5);
        let shares: Vec<_> = keys.iter().take(2).map(|k| k.sign(b"v")).collect();
        assert_eq!(
            pki.combine(3, b"v", &shares),
            Err(CryptoError::InsufficientShares { needed: 3, got: 2 })
        );
    }

    #[test]
    fn combine_rejects_mixed_messages() {
        let (pki, keys) = setup(5);
        let shares = vec![keys[0].sign(b"v"), keys[1].sign(b"w"), keys[2].sign(b"v")];
        assert!(matches!(pki.combine(3, b"v", &shares), Err(CryptoError::BadSignature { .. })));
    }

    #[test]
    fn combine_rejects_bad_threshold() {
        let (pki, keys) = setup(3);
        let shares: Vec<_> = keys.iter().map(|k| k.sign(b"v")).collect();
        assert!(matches!(pki.combine(0, b"v", &shares), Err(CryptoError::BadThreshold { .. })));
        assert!(matches!(pki.combine(4, b"v", &shares), Err(CryptoError::BadThreshold { .. })));
    }

    #[test]
    fn threshold_sig_binds_threshold_value() {
        // A (2,n) certificate must not verify as a (3,n) certificate.
        let (pki, keys) = setup(5);
        let shares: Vec<_> = keys.iter().take(3).map(|k| k.sign(b"v")).collect();
        let qc2 = pki.combine(2, b"v", &shares).unwrap();
        let qc3 = pki.combine(3, b"v", &shares).unwrap();
        assert_ne!(qc2, qc3);
        assert_eq!(qc2.threshold(), 2);
    }

    #[test]
    fn aggregate_roundtrip_and_extend() {
        let (pki, keys) = setup(6);
        let shares: Vec<_> = keys.iter().take(2).map(|k| k.sign(b"v")).collect();
        let agg = pki.aggregate(b"v", &shares).unwrap();
        assert_eq!(agg.len(), 2);
        assert!(pki.verify_aggregate(b"v", &agg).is_ok());

        let extended = pki.extend_aggregate(b"v", &agg, &keys[4].sign(b"v")).unwrap();
        assert_eq!(extended.len(), 3);
        assert!(extended.contains(ProcessId(4)));
        assert!(pki.verify_aggregate(b"v", &extended).is_ok());

        // Extending with an existing signer fails.
        assert_eq!(
            pki.extend_aggregate(b"v", &extended, &keys[0].sign(b"v")),
            Err(CryptoError::DuplicateSigner { signer: ProcessId(0) })
        );
    }

    #[test]
    fn aggregate_rejects_empty_and_wrong_message() {
        let (pki, keys) = setup(3);
        assert!(matches!(pki.aggregate(b"v", &[]), Err(CryptoError::InsufficientShares { .. })));
        let agg = pki.aggregate(b"v", &[keys[0].sign(b"v")]).unwrap();
        assert_eq!(pki.verify_aggregate(b"w", &agg), Err(CryptoError::MessageMismatch));
    }

    #[test]
    fn verify_batch_matches_sequential_verify() {
        let (pki, keys) = setup(6);
        let mut shares: Vec<_> = keys.iter().take(4).map(|k| k.sign(b"v")).collect();
        assert!(pki.verify_batch(b"v", &shares).is_ok());
        assert!(pki.verify_batch(b"v", &[]).is_ok());

        // A forged share in the middle: first error in slice order.
        shares[2] = keys[2].sign(b"other");
        let sequential = shares.iter().try_for_each(|s| pki.verify(b"v", s));
        assert_eq!(pki.verify_batch(b"v", &shares), sequential);
        assert_eq!(
            pki.verify_batch(b"v", &shares),
            Err(CryptoError::BadSignature { signer: ProcessId(2) })
        );
    }

    #[test]
    fn verify_threshold_batch_matches_sequential() {
        let (pki, keys) = setup(5);
        let sh_v: Vec<_> = keys.iter().take(3).map(|k| k.sign(b"v")).collect();
        let sh_w: Vec<_> = keys.iter().take(3).map(|k| k.sign(b"w")).collect();
        let qc_v = pki.combine(3, b"v", &sh_v).unwrap();
        let qc_w = pki.combine(3, b"w", &sh_w).unwrap();

        // Mixed preimages, including the digest-memo repeat path.
        let items: Vec<(&[u8], &ThresholdSignature)> =
            vec![(b"v", &qc_v), (b"v", &qc_v), (b"w", &qc_w), (b"v", &qc_v)];
        assert!(pki.verify_threshold_batch(&items).is_ok());

        let bad: Vec<(&[u8], &ThresholdSignature)> =
            vec![(b"v", &qc_v), (b"v", &qc_w), (b"w", &qc_w)];
        let sequential = bad.iter().try_for_each(|(m, ts)| pki.verify_threshold(m, ts));
        assert_eq!(pki.verify_threshold_batch(&bad), sequential);
        assert_eq!(pki.verify_threshold_batch(&bad), Err(CryptoError::MessageMismatch));
        assert!(pki.verify_threshold_batch(&[]).is_ok());
    }

    #[test]
    fn unknown_signer_rejected() {
        let (pki_small, _) = trusted_setup(2, 5);
        let (_, keys_big) = trusted_setup(4, 5);
        let sig = keys_big[3].sign(b"m");
        assert_eq!(
            pki_small.verify(b"m", &sig),
            Err(CryptoError::UnknownSigner { signer: ProcessId(3) })
        );
    }
}
