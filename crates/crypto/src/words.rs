//! The paper's word-complexity model (§2).
//!
//! "A word contains a constant number of signatures and values from a
//! finite domain, and each message contains at least 1 word."
//!
//! [`WordCost::words`] is the quantity summed by the communication
//! complexity of a protocol; [`WordCost::constituent_sigs`] counts how many
//! *individual* signatures an object represents, which is the quantity the
//! Dolev–Reischuk `Ω(nt)` lower bound speaks about (experiment E4): a
//! `(k, n)`-threshold signature is one word but `k` constituent signatures.

use crate::pki::{AggregateSignature, Signature, ThresholdSignature};
use crate::sha256::Digest;

/// Cost of an object under the paper's word model.
pub trait WordCost {
    /// Number of words this object occupies on the wire.
    fn words(&self) -> u64;

    /// Number of individual signatures compacted into this object.
    fn constituent_sigs(&self) -> u64 {
        0
    }
}

impl WordCost for Signature {
    fn words(&self) -> u64 {
        1
    }
    fn constituent_sigs(&self) -> u64 {
        1
    }
}

impl WordCost for ThresholdSignature {
    fn words(&self) -> u64 {
        1
    }
    fn constituent_sigs(&self) -> u64 {
        self.threshold() as u64
    }
}

impl WordCost for AggregateSignature {
    fn words(&self) -> u64 {
        1
    }
    fn constituent_sigs(&self) -> u64 {
        self.len() as u64
    }
}

impl WordCost for Digest {
    fn words(&self) -> u64 {
        1
    }
}

impl<T: WordCost> WordCost for Option<T> {
    fn words(&self) -> u64 {
        self.as_ref().map_or(0, WordCost::words)
    }
    fn constituent_sigs(&self) -> u64 {
        self.as_ref().map_or(0, WordCost::constituent_sigs)
    }
}

impl<T: WordCost> WordCost for &T {
    fn words(&self) -> u64 {
        (**self).words()
    }
    fn constituent_sigs(&self) -> u64 {
        (**self).constituent_sigs()
    }
}

impl<T: WordCost> WordCost for Vec<T> {
    fn words(&self) -> u64 {
        self.iter().map(WordCost::words).sum()
    }
    fn constituent_sigs(&self) -> u64 {
        self.iter().map(WordCost::constituent_sigs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::trusted_setup;

    #[test]
    fn threshold_sig_is_one_word_k_sigs() {
        let (pki, keys) = trusted_setup(7, 3);
        let shares: Vec<_> = keys.iter().take(5).map(|k| k.sign(b"v")).collect();
        let qc = pki.combine(5, b"v", &shares).unwrap();
        assert_eq!(qc.words(), 1);
        assert_eq!(qc.constituent_sigs(), 5);
    }

    #[test]
    fn aggregate_counts_signer_set() {
        let (pki, keys) = trusted_setup(4, 3);
        let shares: Vec<_> = keys.iter().take(3).map(|k| k.sign(b"v")).collect();
        let agg = pki.aggregate(b"v", &shares).unwrap();
        assert_eq!(agg.words(), 1);
        assert_eq!(agg.constituent_sigs(), 3);
    }

    #[test]
    fn option_and_vec_sum() {
        let (_, keys) = trusted_setup(2, 3);
        let s = keys[0].sign(b"m");
        assert_eq!(Some(s.clone()).words(), 1);
        assert_eq!(None::<Signature>.words(), 0);
        assert_eq!(vec![s.clone(), s].words(), 2);
    }
}
