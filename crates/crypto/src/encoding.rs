//! Canonical byte encoding for signable protocol messages.
//!
//! Every signed protocol message implements [`Signable`]: a domain tag plus
//! a canonical field encoding. The encoding is length- and type-prefixed so
//! no two distinct messages share bytes, which is what makes signatures
//! transferable evidence in the protocols.
//!
//! # Examples
//!
//! ```
//! use meba_crypto::encoding::{Encoder, Signable};
//!
//! struct Vote { value: u64, phase: u32 }
//!
//! impl Signable for Vote {
//!     const DOMAIN: &'static str = "example/vote";
//!     fn encode_fields(&self, enc: &mut Encoder) {
//!         enc.put_u64(self.value);
//!         enc.put_u32(self.phase);
//!     }
//! }
//!
//! let a = Vote { value: 1, phase: 2 }.signing_bytes();
//! let b = Vote { value: 1, phase: 3 }.signing_bytes();
//! assert_ne!(a, b);
//! ```

use crate::ids::ProcessId;
use crate::sha256::Digest;

/// Canonical, unambiguous byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a fixed-width big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.push(b'4');
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a fixed-width big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.push(b'8');
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(b'b');
        self.buf.push(v as u8);
    }

    /// Appends a process identity.
    pub fn put_id(&mut self, id: ProcessId) {
        self.buf.push(b'p');
        self.buf.extend_from_slice(&id.0.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.buf.push(b's');
        self.buf.extend_from_slice(&(data.len() as u64).to_be_bytes());
        self.buf.extend_from_slice(data);
    }

    /// Appends a digest.
    pub fn put_digest(&mut self, d: &Digest) {
        self.buf.push(b'd');
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Appends an optional value via a presence byte and a closure.
    pub fn put_option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Encoder, &T)) {
        match v {
            None => self.buf.push(0),
            Some(inner) => {
                self.buf.push(1);
                f(self, inner);
            }
        }
    }

    /// Finishes encoding, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A message with a canonical signed representation.
pub trait Signable {
    /// Domain-separation tag; must be unique per message type.
    const DOMAIN: &'static str;

    /// Writes the message fields into `enc`.
    fn encode_fields(&self, enc: &mut Encoder);

    /// The exact bytes that are signed / verified for this message.
    fn signing_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(Self::DOMAIN.as_bytes());
        self.encode_fields(&mut enc);
        enc.into_bytes()
    }

    /// Digest of the signing bytes.
    fn signing_digest(&self) -> Digest {
        Digest::of(&self.signing_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_type_prefixed() {
        let mut a = Encoder::new();
        a.put_u32(1);
        let mut b = Encoder::new();
        b.put_u64(1);
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let mut a = Encoder::new();
        a.put_bytes(b"ab");
        a.put_bytes(b"c");
        let mut b = Encoder::new();
        b.put_bytes(b"a");
        b.put_bytes(b"bc");
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn option_encoding_distinguishes_none() {
        let mut a = Encoder::new();
        a.put_option(&None::<u32>, |e, v| e.put_u32(*v));
        let mut b = Encoder::new();
        b.put_option(&Some(0u32), |e, v| e.put_u32(*v));
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    struct M(u32);
    impl Signable for M {
        const DOMAIN: &'static str = "test/m";
        fn encode_fields(&self, enc: &mut Encoder) {
            enc.put_u32(self.0);
        }
    }

    struct N(u32);
    impl Signable for N {
        const DOMAIN: &'static str = "test/n";
        fn encode_fields(&self, enc: &mut Encoder) {
            enc.put_u32(self.0);
        }
    }

    #[test]
    fn domain_separates_identical_fields() {
        assert_ne!(M(5).signing_bytes(), N(5).signing_bytes());
        assert_ne!(M(5).signing_digest(), N(5).signing_digest());
    }
}
