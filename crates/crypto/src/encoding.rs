//! Canonical byte encoding for signable protocol messages.
//!
//! Every signed protocol message implements [`Signable`]: a domain tag plus
//! a canonical field encoding. The encoding is length- and type-prefixed so
//! no two distinct messages share bytes, which is what makes signatures
//! transferable evidence in the protocols.
//!
//! # Examples
//!
//! ```
//! use meba_crypto::encoding::{Encoder, Signable};
//!
//! struct Vote { value: u64, phase: u32 }
//!
//! impl Signable for Vote {
//!     const DOMAIN: &'static str = "example/vote";
//!     fn encode_fields(&self, enc: &mut Encoder) {
//!         enc.put_u64(self.value);
//!         enc.put_u32(self.phase);
//!     }
//! }
//!
//! let a = Vote { value: 1, phase: 2 }.signing_bytes();
//! let b = Vote { value: 1, phase: 3 }.signing_bytes();
//! assert_ne!(a, b);
//! ```

use crate::error::DecodeError;
use crate::ids::ProcessId;
use crate::sha256::Digest;
use std::borrow::Cow;
use std::cell::Cell;

/// Canonical, unambiguous byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    /// Wraps an existing buffer, clearing its contents but keeping its
    /// capacity. This is the reuse entry point: callers that encode in a
    /// loop hand the same `Vec` back in and steady-state encoding stops
    /// allocating.
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Encoder { buf }
    }

    /// Clears the encoded bytes, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes encoded so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a fixed-width big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.push(b'4');
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a fixed-width big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.push(b'8');
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a boolean.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(b'b');
        self.buf.push(v as u8);
    }

    /// Appends a process identity.
    pub fn put_id(&mut self, id: ProcessId) {
        self.buf.push(b'p');
        self.buf.extend_from_slice(&id.0.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, data: &[u8]) {
        self.buf.push(b's');
        self.buf.extend_from_slice(&(data.len() as u64).to_be_bytes());
        self.buf.extend_from_slice(data);
    }

    /// Appends a digest.
    pub fn put_digest(&mut self, d: &Digest) {
        self.buf.push(b'd');
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Appends an optional value via a presence byte and a closure.
    pub fn put_option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Encoder, &T)) {
        match v {
            None => self.buf.push(0),
            Some(inner) => {
                self.buf.push(1);
                f(self, inner);
            }
        }
    }

    /// Finishes encoding, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

thread_local! {
    /// Per-thread scratch buffer behind [`with_scratch_encoder`]. A `Cell`
    /// (not `RefCell`) so reentrant use degrades to a fresh allocation
    /// instead of a panic: an inner call takes an empty `Vec`, and the
    /// outer call's buffer wins the final `set`.
    static SCRATCH: Cell<Vec<u8>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` with a thread-local scratch [`Encoder`] whose allocation is
/// reused across calls. After warm-up this encodes without touching the
/// heap, which is what lets `wire_len` / `signing_digest` sit on hot
/// paths without a per-call `Vec`.
pub fn with_scratch_encoder<R>(f: impl FnOnce(&mut Encoder) -> R) -> R {
    SCRATCH.with(|slot| {
        let mut enc = Encoder::from_vec(slot.take());
        let out = f(&mut enc);
        slot.set(enc.into_bytes());
        out
    })
}

/// Bounds-checked reader for the [`Encoder`]'s canonical format.
///
/// Each `get_*` mirrors the corresponding `put_*` byte-for-byte: the same
/// type-prefix tag, the same fixed-width big-endian payload. Decoding is
/// strict — a presence byte other than `0`/`1`, a wrong tag, or a length
/// prefix exceeding the remaining input all return a typed
/// [`DecodeError`] instead of panicking, which makes the decoder a safe
/// surface for attacker-controlled network bytes.
///
/// # Examples
///
/// ```
/// use meba_crypto::encoding::{Decoder, Encoder};
///
/// let mut enc = Encoder::new();
/// enc.put_u32(7);
/// enc.put_bool(true);
/// let bytes = enc.into_bytes();
///
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.get_u32().unwrap(), 7);
/// assert!(dec.get_bool().unwrap());
/// dec.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn tag(&mut self, expected: u8) -> Result<(), DecodeError> {
        let found = self.take(1)?[0];
        if found != expected {
            return Err(DecodeError::TypeTag { expected, found });
        }
        Ok(())
    }

    /// Reads a fixed-width big-endian `u32` (counterpart of
    /// [`Encoder::put_u32`]).
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.tag(b'4')?;
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a fixed-width big-endian `u64` (counterpart of
    /// [`Encoder::put_u64`]).
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.tag(b'8')?;
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a boolean, rejecting any payload byte other than `0`/`1` so
    /// the encoding stays canonical.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        self.tag(b'b')?;
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid { what: "boolean byte not 0/1" }),
        }
    }

    /// Reads a process identity (counterpart of [`Encoder::put_id`]).
    pub fn get_id(&mut self) -> Result<ProcessId, DecodeError> {
        self.tag(b'p')?;
        let b = self.take(4)?;
        Ok(ProcessId(u32::from_be_bytes(b.try_into().expect("4 bytes"))))
    }

    /// Reads a length-prefixed byte string as a borrowed view into the
    /// input buffer (zero-copy counterpart of [`Encoder::put_bytes`]).
    /// The length prefix is validated against the remaining input, so a
    /// forged length cannot read past the buffer or trigger an
    /// out-of-memory. Consumes and validates exactly the same bytes as
    /// [`Decoder::get_bytes`] and fails with the same errors.
    pub fn get_bytes_borrowed(&mut self) -> Result<&'a [u8], DecodeError> {
        self.tag(b's')?;
        let len = u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes"));
        let len = usize::try_from(len)
            .map_err(|_| DecodeError::Invalid { what: "byte-string length overflows usize" })?;
        self.take(len)
    }

    /// Reads a length-prefixed byte string into an owned `Vec<u8>`. This
    /// is the owned escape hatch over [`Decoder::get_bytes_borrowed`] for
    /// decoded values that must outlive the frame buffer.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        Ok(self.get_bytes_borrowed()?.to_vec())
    }

    /// Reads a length-prefixed byte string as a [`Cow`] borrowing from
    /// the input. Call `.into_owned()` only on values that escape the
    /// frame's lifetime.
    pub fn get_bytes_cow(&mut self) -> Result<Cow<'a, [u8]>, DecodeError> {
        Ok(Cow::Borrowed(self.get_bytes_borrowed()?))
    }

    /// Reads a digest (counterpart of [`Encoder::put_digest`]).
    pub fn get_digest(&mut self) -> Result<Digest, DecodeError> {
        self.tag(b'd')?;
        let b = self.take(32)?;
        Ok(Digest(b.try_into().expect("32 bytes")))
    }

    /// Reads an optional value via its presence byte (counterpart of
    /// [`Encoder::put_option`]); presence bytes other than `0`/`1` are
    /// rejected to keep the encoding canonical.
    pub fn get_option<T>(
        &mut self,
        f: impl FnOnce(&mut Decoder<'a>) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(DecodeError::Invalid { what: "option presence byte not 0/1" }),
        }
    }

    /// Asserts the input is fully consumed; top-level decodes call this
    /// so no two distinct byte strings decode to the same value.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::TrailingBytes { count: self.remaining() });
        }
        Ok(())
    }
}

/// A value with a canonical, self-contained wire encoding: encoding then
/// decoding is the identity, and decoding then encoding reproduces the
/// exact input bytes.
///
/// The second direction is what makes the codec safe to combine with
/// signatures: a decoded message re-encodes to the very bytes that were
/// signed, so verification on the receiving side checks the same preimage
/// the sender committed to (docs/CORRECTNESS.md §9).
pub trait WireCodec: Sized {
    /// Writes the canonical encoding of `self` into `enc`.
    fn encode_wire(&self, enc: &mut Encoder);

    /// Reads one value from `dec`, leaving any following bytes in place.
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// The canonical encoding as a standalone byte string.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_wire(&mut enc);
        enc.into_bytes()
    }

    /// Writes the canonical encoding into a reusable encoder, replacing
    /// its previous contents. Looping callers that keep the encoder
    /// around reuse its allocation and produce bytes identical to
    /// [`WireCodec::to_wire_bytes`] without a fresh `Vec` per message.
    fn encode_wire_into(&self, enc: &mut Encoder) {
        enc.clear();
        self.encode_wire(enc);
    }

    /// Decodes a standalone byte string, rejecting trailing bytes.
    fn from_wire_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode_wire(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }

    /// Length of the canonical encoding in bytes. The default measures
    /// by encoding into the thread-local scratch buffer, so it does not
    /// allocate after warm-up.
    fn wire_len(&self) -> u64 {
        with_scratch_encoder(|enc| {
            self.encode_wire(enc);
            enc.len() as u64
        })
    }
}

impl WireCodec for ProcessId {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_id(*self);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_id()
    }
}

impl WireCodec for Digest {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_digest(self);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_digest()
    }
}

/// A message with a canonical signed representation.
pub trait Signable {
    /// Domain-separation tag; must be unique per message type.
    const DOMAIN: &'static str;

    /// Writes the message fields into `enc`.
    fn encode_fields(&self, enc: &mut Encoder);

    /// Writes the exact signed byte string (domain tag + fields) into a
    /// reusable encoder, replacing its previous contents. Byte-identical
    /// to [`Signable::signing_bytes`] without the fresh `Vec`.
    fn encode_signing(&self, enc: &mut Encoder) {
        enc.clear();
        enc.put_bytes(Self::DOMAIN.as_bytes());
        self.encode_fields(enc);
    }

    /// The exact bytes that are signed / verified for this message.
    fn signing_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_signing(&mut enc);
        enc.into_bytes()
    }

    /// Digest of the signing bytes, computed in the thread-local scratch
    /// buffer without the encode-to-temporary round trip.
    fn signing_digest(&self) -> Digest {
        with_scratch_encoder(|enc| {
            self.encode_signing(enc);
            Digest::of(enc.as_bytes())
        })
    }

    /// Runs `f` over the signing bytes assembled in the thread-local
    /// scratch buffer — the zero-allocation path for sign/verify call
    /// sites that only need a transient view of the preimage.
    fn with_signing_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        with_scratch_encoder(|enc| {
            self.encode_signing(enc);
            f(enc.as_bytes())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_are_type_prefixed() {
        let mut a = Encoder::new();
        a.put_u32(1);
        let mut b = Encoder::new();
        b.put_u64(1);
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn byte_strings_are_length_prefixed() {
        let mut a = Encoder::new();
        a.put_bytes(b"ab");
        a.put_bytes(b"c");
        let mut b = Encoder::new();
        b.put_bytes(b"a");
        b.put_bytes(b"bc");
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn option_encoding_distinguishes_none() {
        let mut a = Encoder::new();
        a.put_option(&None::<u32>, |e, v| e.put_u32(*v));
        let mut b = Encoder::new();
        b.put_option(&Some(0u32), |e, v| e.put_u32(*v));
        assert_ne!(a.into_bytes(), b.into_bytes());
    }

    struct M(u32);
    impl Signable for M {
        const DOMAIN: &'static str = "test/m";
        fn encode_fields(&self, enc: &mut Encoder) {
            enc.put_u32(self.0);
        }
    }

    struct N(u32);
    impl Signable for N {
        const DOMAIN: &'static str = "test/n";
        fn encode_fields(&self, enc: &mut Encoder) {
            enc.put_u32(self.0);
        }
    }

    #[test]
    fn domain_separates_identical_fields() {
        assert_ne!(M(5).signing_bytes(), N(5).signing_bytes());
        assert_ne!(M(5).signing_digest(), N(5).signing_digest());
    }

    #[test]
    fn decoder_mirrors_every_encoder_field() {
        let mut enc = Encoder::new();
        enc.put_u32(0xdead_beef);
        enc.put_u64(u64::MAX - 3);
        enc.put_bool(true);
        enc.put_id(ProcessId(9));
        enc.put_bytes(b"payload");
        enc.put_digest(&Digest::of(b"x"));
        enc.put_option(&Some(11u32), |e, v| e.put_u32(*v));
        enc.put_option(&None::<u32>, |e, v| e.put_u32(*v));
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 3);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_id().unwrap(), ProcessId(9));
        assert_eq!(dec.get_bytes().unwrap(), b"payload");
        assert_eq!(dec.get_digest().unwrap(), Digest::of(b"x"));
        assert_eq!(dec.get_option(|d| d.get_u32()).unwrap(), Some(11));
        assert_eq!(dec.get_option(|d| d.get_u32()).unwrap(), None);
        dec.finish().unwrap();
    }

    #[test]
    fn decoder_rejects_wrong_tag() {
        let mut enc = Encoder::new();
        enc.put_u64(5);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u32(), Err(DecodeError::TypeTag { expected: b'4', found: b'8' }));
    }

    #[test]
    fn decoder_rejects_truncation_at_every_prefix() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"hello");
        enc.put_u32(1);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let r = dec.get_bytes().and_then(|_| dec.get_u32());
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn forged_length_prefix_is_rejected_without_allocation() {
        // Claim a 2^63-byte string backed by 2 bytes of input.
        let mut bytes = vec![b's'];
        bytes.extend_from_slice(&(1u64 << 63).to_be_bytes());
        bytes.extend_from_slice(b"ab");
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_bytes(), Err(DecodeError::UnexpectedEnd { .. })));
    }

    #[test]
    fn non_canonical_presence_bytes_rejected() {
        let mut dec = Decoder::new(&[b'b', 2]);
        assert_eq!(dec.get_bool(), Err(DecodeError::Invalid { what: "boolean byte not 0/1" }));
        let mut dec = Decoder::new(&[7]);
        assert_eq!(
            dec.get_option(|d| d.get_u32()),
            Err(DecodeError::Invalid { what: "option presence byte not 0/1" })
        );
    }

    #[test]
    fn borrowed_bytes_match_owned_bytes() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"zero-copy");
        let bytes = enc.into_bytes();

        let mut owned = Decoder::new(&bytes);
        let mut borrowed = Decoder::new(&bytes);
        let mut cow = Decoder::new(&bytes);
        assert_eq!(owned.get_bytes().unwrap(), b"zero-copy");
        assert_eq!(borrowed.get_bytes_borrowed().unwrap(), b"zero-copy");
        assert!(matches!(cow.get_bytes_cow().unwrap(), Cow::Borrowed(b"zero-copy")));
        assert_eq!(owned.remaining(), borrowed.remaining());
        assert_eq!(owned.remaining(), cow.remaining());
    }

    #[test]
    fn borrowed_bytes_fail_like_owned_bytes() {
        // Truncated at every prefix, the borrowed getter must consume and
        // reject exactly as the owned one does.
        let mut enc = Encoder::new();
        enc.put_bytes(b"hello");
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut owned = Decoder::new(&bytes[..cut]);
            let mut borrowed = Decoder::new(&bytes[..cut]);
            let o = owned.get_bytes();
            let b = borrowed.get_bytes_borrowed();
            assert_eq!(o.err(), b.err(), "divergent errors at cut {cut}");
            assert_eq!(owned.remaining(), borrowed.remaining());
        }
    }

    #[test]
    fn encoder_reuse_keeps_capacity_and_bytes() {
        let mut enc = Encoder::with_capacity(64);
        enc.put_id(ProcessId(1));
        let first = enc.as_bytes().to_vec();
        let cap = enc.into_bytes().capacity();

        let mut enc = Encoder::from_vec(Vec::with_capacity(cap));
        for _ in 0..100 {
            ProcessId(1).encode_wire_into(&mut enc);
            assert_eq!(enc.as_bytes(), &first[..]);
        }
        assert_eq!(enc.into_bytes().capacity(), cap, "reuse must not reallocate");
    }

    #[test]
    fn scratch_encoder_is_reentrancy_safe() {
        let outer = with_scratch_encoder(|enc| {
            enc.put_u32(7);
            let inner = with_scratch_encoder(|enc2| {
                enc2.put_u64(9);
                enc2.as_bytes().to_vec()
            });
            assert_eq!(inner, {
                let mut e = Encoder::new();
                e.put_u64(9);
                e.into_bytes()
            });
            enc.as_bytes().to_vec()
        });
        assert_eq!(outer, {
            let mut e = Encoder::new();
            e.put_u32(7);
            e.into_bytes()
        });
    }

    #[test]
    fn wire_len_matches_full_encoding() {
        let d = Digest::of(b"x");
        assert_eq!(d.wire_len(), d.to_wire_bytes().len() as u64);
        assert_eq!(ProcessId(3).wire_len(), ProcessId(3).to_wire_bytes().len() as u64);
    }

    #[test]
    fn signing_helpers_agree_with_signing_bytes() {
        let m = M(5);
        let via_scratch = m.with_signing_bytes(|b| b.to_vec());
        assert_eq!(via_scratch, m.signing_bytes());
        assert_eq!(m.signing_digest(), Digest::of(&m.signing_bytes()));
        let mut enc = Encoder::from_vec(vec![1, 2, 3]);
        m.encode_signing(&mut enc);
        assert_eq!(enc.as_bytes(), &m.signing_bytes()[..]);
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut enc = Encoder::new();
        enc.put_u32(1);
        let mut bytes = enc.into_bytes();
        bytes.push(0);
        let mut dec = Decoder::new(&bytes);
        dec.get_u32().unwrap();
        assert_eq!(dec.finish(), Err(DecodeError::TrailingBytes { count: 1 }));
    }
}
