//! HMAC-SHA256 (RFC 2104), used as the MAC underlying the simulated
//! signature schemes in [`crate::pki`].
//!
//! # Examples
//!
//! ```
//! use meba_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! assert_ne!(tag, hmac_sha256(b"key", b"other message"));
//! ```

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(msg);
    mac.finalize()
}

/// Streaming HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use meba_crypto::hmac::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"k");
/// mac.update(b"ab");
/// mac.update(b"c");
/// assert_eq!(mac.finalize(), hmac_sha256(b"k", b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK],
}

impl HmacSha256 {
    /// Creates a MAC keyed with `key` (any length; longer than one block is
    /// hashed first, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = crate::sha256::Digest::of(key);
            k[..32].copy_from_slice(d.as_bytes());
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad_key: opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, msg: &[u8]) {
        self.inner.update(msg);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        *outer.finalize().as_bytes()
    }
}

/// Constant-time comparison of two 32-byte tags.
///
/// The simulator does not face real timing adversaries, but verification
/// code should still model good practice.
pub fn ct_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(tag: &[u8]) -> String {
        tag.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b_u8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(hex(&tag), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa_u8; 20];
        let msg = [0xdd_u8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(hex(&tag), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: key longer than one block.
        let key = [0xaa_u8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&tag), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut mac = HmacSha256::new(b"secret");
        mac.update(b"split ");
        mac.update(b"message");
        assert_eq!(mac.finalize(), hmac_sha256(b"secret", b"split message"));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn ct_eq_works() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(ct_eq(&a, &b));
        b[31] ^= 1;
        assert!(!ct_eq(&a, &b));
    }
}
