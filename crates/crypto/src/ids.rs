//! Process identities.
//!
//! The trusted setup (PKI) assigns every process a stable identity
//! `p0, p1, …, p(n-1)`; identities double as indices into round-robin
//! leader rotations throughout the workspace.

use std::fmt;

/// Identity of a process in the system `Π = {p0, …, p(n-1)}`.
///
/// # Examples
///
/// ```
/// use meba_crypto::ProcessId;
///
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

serde::impl_serde_newtype!(ProcessId);

impl ProcessId {
    /// The identity's position in `Π`, usable as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all identities of a system of `n` processes.
    ///
    /// # Examples
    ///
    /// ```
    /// use meba_crypto::ProcessId;
    /// let all: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(all, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n as u32).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId(0) < ProcessId(1));
        assert_eq!(ProcessId(7).index(), 7);
    }

    #[test]
    fn all_enumerates_in_order() {
        assert_eq!(ProcessId::all(0).count(), 0);
        let v: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[3], ProcessId(3));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", ProcessId(12)), "p12");
        assert_eq!(format!("{:?}", ProcessId(12)), "p12");
    }
}
