//! The never-re-sign-conflicting guard for crash-recovering processes.
//!
//! A restarted process with amnesia can sign a second, different payload
//! in a signing slot it already used before the crash — equivocation
//! manufactured out of a benign crash. The guard closes this: every
//! signature is recorded under its *equivocation context* (domain tag
//! plus slot-identifying fields such as session and phase, but **not**
//! the value being signed), and a second signature in the same context
//! is only permitted when it signs the exact same preimage. Because the
//! PKI signs deterministically, re-signing the same preimage yields the
//! byte-identical signature — harmless retransmission, not equivocation.
//!
//! The guard is pure bookkeeping over `(context → preimage digest)`
//! pairs; durability of those pairs across a crash is the journal's job
//! (`meba-journal`), and wiring the two together is the `Recoverable`
//! wrapper's job (`meba-core`).

use crate::encoding::{Encoder, Signable};
use crate::pki::{SecretKey, Signature};
use crate::sha256::Digest;
use std::collections::BTreeMap;
use std::fmt;

/// A signing attempt that would contradict a previously recorded
/// signature: same context, different preimage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivocationError {
    /// The shared equivocation context.
    pub context: Vec<u8>,
    /// Digest of the preimage signed first (and journaled).
    pub recorded: Digest,
    /// Digest of the conflicting preimage whose signing was refused.
    pub attempted: Digest,
}

impl fmt::Display for EquivocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refusing to equivocate: context already bound to {:?}, attempted {:?}",
            self.recorded, self.attempted
        )
    }
}

impl std::error::Error for EquivocationError {}

/// A signable payload that also names the signing *slot* it occupies.
///
/// [`SignContext::context_bytes`] must encode everything that identifies
/// the slot — the domain tag and fields like session or phase — and must
/// **exclude** the free choice (the value): two payloads that differ only
/// in value share a context, which is exactly what makes signing both of
/// them equivocation.
pub trait SignContext: Signable {
    /// Canonical encoding of the signing slot. The default is the domain
    /// tag alone (correct for payload types whose domain admits only one
    /// signature per instance); types with per-phase or per-session slots
    /// override it.
    fn context_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(Self::DOMAIN.as_bytes());
        enc.into_bytes()
    }
}

/// The `(context → preimage digest)` table behind the guard.
///
/// Recording is idempotent — the same pair can be inserted any number of
/// times (journal replay does exactly that) — and conflicting pairs are
/// refused and counted.
///
/// # Examples
///
/// ```
/// use meba_crypto::{Digest, SignRegistry};
///
/// let mut reg = SignRegistry::new();
/// assert!(reg.record(b"slot", Digest::of(b"v1")).unwrap());
/// // Idempotent re-record: fine, reports "already present".
/// assert!(!reg.record(b"slot", Digest::of(b"v1")).unwrap());
/// // Conflicting preimage in the same slot: refused and counted.
/// assert!(reg.record(b"slot", Digest::of(b"v2")).is_err());
/// assert_eq!(reg.refused(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SignRegistry {
    map: BTreeMap<Vec<u8>, Digest>,
    refused: u64,
}

impl SignRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `context → digest`. Returns `Ok(true)` when newly bound,
    /// `Ok(false)` when the identical pair was already present.
    ///
    /// # Errors
    ///
    /// [`EquivocationError`] when the context is already bound to a
    /// *different* digest; the conflict is counted in
    /// [`SignRegistry::refused`].
    pub fn record(&mut self, context: &[u8], digest: Digest) -> Result<bool, EquivocationError> {
        match self.map.get(context) {
            None => {
                self.map.insert(context.to_vec(), digest);
                Ok(true)
            }
            Some(existing) if *existing == digest => Ok(false),
            Some(existing) => {
                self.refused += 1;
                Err(EquivocationError {
                    context: context.to_vec(),
                    recorded: *existing,
                    attempted: digest,
                })
            }
        }
    }

    /// The digest bound to `context`, if any.
    pub fn lookup(&self, context: &[u8]) -> Option<Digest> {
        self.map.get(context).copied()
    }

    /// Number of refused (conflicting) record attempts.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Number of distinct contexts bound.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no context has been bound yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all `(context, digest)` bindings.
    pub fn entries(&self) -> impl Iterator<Item = (&[u8], Digest)> {
        self.map.iter().map(|(k, v)| (k.as_slice(), *v))
    }
}

/// A [`SecretKey`] wrapped with a [`SignRegistry`]: the signing-guard
/// hook the crash-recovery stack builds on.
///
/// # Examples
///
/// ```
/// use meba_crypto::{trusted_setup, Encoder, GuardedKey, Signable, SignContext};
///
/// struct Vote { phase: u32, value: u64 }
/// impl Signable for Vote {
///     const DOMAIN: &'static str = "example/vote";
///     fn encode_fields(&self, enc: &mut Encoder) {
///         enc.put_u32(self.phase);
///         enc.put_u64(self.value);
///     }
/// }
/// impl SignContext for Vote {
///     fn context_bytes(&self) -> Vec<u8> {
///         let mut enc = Encoder::new();
///         enc.put_bytes(Self::DOMAIN.as_bytes());
///         enc.put_u32(self.phase); // slot = (domain, phase); value excluded
///         enc.into_bytes()
///     }
/// }
///
/// let (_, keys) = trusted_setup(3, 1);
/// let mut guarded = GuardedKey::new(keys[0].clone());
/// let s1 = guarded.try_sign(&Vote { phase: 1, value: 5 }).unwrap();
/// // Deterministic re-sign of the same payload: identical signature.
/// assert_eq!(guarded.try_sign(&Vote { phase: 1, value: 5 }).unwrap(), s1);
/// // A different value in the same phase is equivocation: refused.
/// assert!(guarded.try_sign(&Vote { phase: 1, value: 6 }).is_err());
/// // A different phase is a fresh slot: fine.
/// assert!(guarded.try_sign(&Vote { phase: 2, value: 6 }).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct GuardedKey {
    key: SecretKey,
    registry: SignRegistry,
}

impl GuardedKey {
    /// Wraps `key` with an empty registry (fresh process, no history).
    pub fn new(key: SecretKey) -> Self {
        Self::with_registry(key, SignRegistry::new())
    }

    /// Wraps `key` with a pre-populated registry (recovered from a
    /// journal replay).
    pub fn with_registry(key: SecretKey, registry: SignRegistry) -> Self {
        GuardedKey { key, registry }
    }

    /// The identity this key signs for.
    pub fn id(&self) -> crate::ids::ProcessId {
        self.key.id()
    }

    /// Signs `payload` if doing so cannot equivocate: the payload's
    /// context is recorded first, and signing proceeds only when the
    /// context is fresh or already bound to this exact preimage.
    ///
    /// # Errors
    ///
    /// [`EquivocationError`] when the context is bound to a different
    /// preimage; no signature is produced.
    pub fn try_sign<S: SignContext>(
        &mut self,
        payload: &S,
    ) -> Result<Signature, EquivocationError> {
        let preimage = payload.signing_bytes();
        self.registry.record(&payload.context_bytes(), Digest::of(&preimage))?;
        Ok(self.key.sign(&preimage))
    }

    /// The guard's registry.
    pub fn registry(&self) -> &SignRegistry {
        &self.registry
    }

    /// The guard's registry, mutably (journal replay populates it here).
    pub fn registry_mut(&mut self) -> &mut SignRegistry {
        &mut self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::trusted_setup;

    struct Slot {
        slot: u64,
        value: u64,
    }
    impl Signable for Slot {
        const DOMAIN: &'static str = "test/slot";
        fn encode_fields(&self, enc: &mut Encoder) {
            enc.put_u64(self.slot);
            enc.put_u64(self.value);
        }
    }
    impl SignContext for Slot {
        fn context_bytes(&self) -> Vec<u8> {
            let mut enc = Encoder::new();
            enc.put_bytes(Self::DOMAIN.as_bytes());
            enc.put_u64(self.slot);
            enc.into_bytes()
        }
    }

    #[test]
    fn registry_is_idempotent_and_refuses_conflicts() {
        let mut reg = SignRegistry::new();
        let d1 = Digest::of(b"a");
        let d2 = Digest::of(b"b");
        assert!(reg.record(b"c1", d1).unwrap());
        assert!(!reg.record(b"c1", d1).unwrap());
        assert!(!reg.record(b"c1", d1).unwrap());
        assert_eq!(reg.len(), 1);
        let err = reg.record(b"c1", d2).unwrap_err();
        assert_eq!(err.recorded, d1);
        assert_eq!(err.attempted, d2);
        assert_eq!(reg.refused(), 1);
        // The original binding is untouched.
        assert_eq!(reg.lookup(b"c1"), Some(d1));
        assert!(reg.record(b"c2", d2).unwrap());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn guarded_key_signs_like_the_raw_key() {
        let (pki, keys) = trusted_setup(3, 7);
        let mut guarded = GuardedKey::new(keys[1].clone());
        let payload = Slot { slot: 4, value: 9 };
        let sig = guarded.try_sign(&payload).unwrap();
        assert_eq!(sig, keys[1].sign(&payload.signing_bytes()));
        assert!(pki.verify(&payload.signing_bytes(), &sig).is_ok());
        assert_eq!(guarded.id(), keys[1].id());
    }

    #[test]
    fn guarded_key_refuses_cross_restart_equivocation() {
        // Simulate: sign before crash, replay registry into a new key
        // wrapper, attempt a conflicting sign after restart.
        let (_, keys) = trusted_setup(3, 7);
        let mut before = GuardedKey::new(keys[0].clone());
        before.try_sign(&Slot { slot: 1, value: 10 }).unwrap();

        let recovered_registry = before.registry().clone();
        let mut after = GuardedKey::with_registry(keys[0].clone(), recovered_registry);
        // Same payload re-signs identically.
        assert!(after.try_sign(&Slot { slot: 1, value: 10 }).is_ok());
        // Conflicting payload is refused and counted.
        assert!(after.try_sign(&Slot { slot: 1, value: 11 }).is_err());
        assert_eq!(after.registry().refused(), 1);
    }

    #[test]
    fn default_context_is_domain_only() {
        struct Once(u64);
        impl Signable for Once {
            const DOMAIN: &'static str = "test/once";
            fn encode_fields(&self, enc: &mut Encoder) {
                enc.put_u64(self.0);
            }
        }
        impl SignContext for Once {}
        let mut reg = SignRegistry::new();
        reg.record(&Once(1).context_bytes(), Once(1).signing_digest()).unwrap();
        // Any second value under the same domain conflicts.
        assert!(reg.record(&Once(2).context_bytes(), Once(2).signing_digest()).is_err());
    }
}
