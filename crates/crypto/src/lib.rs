//! Cryptographic substrate for the `meba` workspace.
//!
//! The paper ("Make Every Word Count", PODC 2022) assumes a trusted PKI and
//! *ideal* threshold signature schemes (§2). This crate provides that
//! substrate from scratch:
//!
//! * [`sha256`] — pure-Rust SHA-256 (FIPS 180-4, NIST-vector tested);
//! * [`hmac`] — HMAC-SHA256 (RFC 2104/4231);
//! * [`pki`] — trusted setup, individual signatures, `(k, n)`-threshold
//!   signatures, and aggregate multi-signatures, with ideality enforced by
//!   the type system (private constructors);
//! * [`words`] — the paper's word-complexity accounting model;
//! * [`encoding`] — canonical byte encoding for signable messages;
//! * [`guard`] — the never-re-sign-conflicting signing guard that keeps
//!   a crash-restarted process from equivocating (used by
//!   `meba-journal`'s recovery stack).
//!
//! # Examples
//!
//! Form the paper's key certificate, a `⌈(n+t+1)/2⌉`-threshold quorum:
//!
//! ```
//! use meba_crypto::{trusted_setup, WordCost};
//!
//! let (n, t) = (7usize, 3usize);
//! let quorum = meba_crypto::quorum_threshold(n, t); // ⌈(n+t+1)/2⌉ = 6
//! let (pki, keys) = trusted_setup(n, 42);
//! let shares: Vec<_> = keys.iter().take(quorum).map(|k| k.sign(b"commit v")).collect();
//! let qc = pki.combine(quorum, b"commit v", &shares)?;
//! assert_eq!(qc.words(), 1);              // one word on the wire...
//! assert_eq!(qc.constituent_sigs(), 6);   // ...carrying six signatures
//! # Ok::<(), meba_crypto::CryptoError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod encoding;
pub mod error;
pub mod guard;
pub mod hmac;
pub mod ids;
pub mod pki;
pub mod sha256;
pub mod words;

pub use encoding::{with_scratch_encoder, Decoder, Encoder, Signable, WireCodec};
pub use error::{CryptoError, DecodeError};
pub use guard::{EquivocationError, GuardedKey, SignContext, SignRegistry};
pub use ids::ProcessId;
pub use pki::{trusted_setup, AggregateSignature, Pki, SecretKey, Signature, ThresholdSignature};
pub use sha256::Digest;
pub use words::WordCost;

/// The paper's quorum threshold `⌈(n+t+1)/2⌉` (§6).
///
/// Two certificates with this many unique signatures out of `n = 2t + 1`
/// processes intersect in at least one *correct* process, which is the key
/// safety observation of the adaptive weak BA.
///
/// # Examples
///
/// ```
/// assert_eq!(meba_crypto::quorum_threshold(7, 3), 6);
/// assert_eq!(meba_crypto::quorum_threshold(9, 4), 7);
/// ```
pub fn quorum_threshold(n: usize, t: usize) -> usize {
    (n + t + 1).div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_intersection_property() {
        // For every n = 2t+1 up to 201: two quorums of size q intersect in
        // at least t+1 processes, hence at least one correct one.
        for t in 1..100usize {
            let n = 2 * t + 1;
            let q = quorum_threshold(n, t);
            assert!(2 * q - n > t, "n={n} t={t} q={q}");
            // And the threshold is reachable when f < (n-t-1)/2:
            // n - f >= q for f < (n-t-1)/2.
            let f_max_adaptive = (n - t - 1) / 2;
            if f_max_adaptive > 0 {
                assert!(n - (f_max_adaptive - 1) >= q);
            }
        }
    }
}
