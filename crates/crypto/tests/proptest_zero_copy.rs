//! Equivalence properties for the zero-copy refactor.
//!
//! Two families of properties pin the refactor to the semantics it
//! replaced:
//!
//! 1. **Borrowed ≡ owned decoding.** The pre-refactor owned byte-string
//!    decoder is reimplemented here verbatim as an independent reference
//!    (`reference_owned_get_bytes`). Over valid encodings, truncations,
//!    mutations, and raw junk, the current `get_bytes`,
//!    `get_bytes_borrowed`, and `get_bytes_cow` must return exactly the
//!    same bytes on accepts, exactly the same [`DecodeError`] on
//!    rejects, and consume exactly the same number of input bytes.
//! 2. **Batch ≡ sequential verification.** On every mixed valid/forged
//!    subset — wrong message, tampered tag, out-of-range signer —
//!    [`Pki::verify_batch`] must agree with folding [`Pki::verify`] over
//!    the slice, including *which* error surfaces first; likewise
//!    [`Pki::verify_threshold_batch`] against [`Pki::verify_threshold`].

use meba_crypto::{
    trusted_setup, DecodeError, Decoder, Encoder, Signature, ThresholdSignature, WireCodec,
};
use proptest::prelude::*;
use std::borrow::Cow;

// ---------------------------------------------------------------------
// 1. Borrowed ≡ owned decoding
// ---------------------------------------------------------------------

/// Cursor-advancing slice read, as the pre-refactor decoder performed it.
fn ref_take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
    let remaining = buf.len() - *pos;
    if remaining < n {
        return Err(DecodeError::UnexpectedEnd { needed: n, remaining });
    }
    let out = &buf[*pos..*pos + n];
    *pos += n;
    Ok(out)
}

/// The old owned byte-string decoder, reimplemented independently of
/// `Decoder` so the property is an external check, not a tautology:
/// tag `b's'`, 8-byte big-endian length validated against the remaining
/// input, then an owned copy of the payload.
fn reference_owned_get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, DecodeError> {
    let found = ref_take(buf, pos, 1)?[0];
    if found != b's' {
        return Err(DecodeError::TypeTag { expected: b's', found });
    }
    let len = u64::from_be_bytes(ref_take(buf, pos, 8)?.try_into().expect("8 bytes"));
    let len = usize::try_from(len)
        .map_err(|_| DecodeError::Invalid { what: "byte-string length overflows usize" })?;
    Ok(ref_take(buf, pos, len)?.to_vec())
}

/// Builds one input that exercises an accept/reject path of the
/// byte-string decoder, selected by `mode`: a canonical encoding (with
/// trailing bytes left for the cursor checks), a truncated canonical
/// encoding, a canonical encoding with one byte mutated anywhere (tag,
/// length prefix, or payload), or raw junk.
fn byte_string_input(
    data: &[u8],
    junk: Vec<u8>,
    mode: u8,
    cut: usize,
    at: usize,
    x: u8,
) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_bytes(data);
    let mut out = enc.into_bytes();
    match mode {
        0 => out.extend_from_slice(&junk),
        1 => out.truncate(cut % (out.len() + 1)),
        2 => {
            let at = at % out.len();
            out[at] ^= x;
        }
        _ => out = junk,
    }
    out
}

proptest! {
    #[test]
    fn borrowed_owned_and_cow_decoders_are_equivalent(
        data in proptest::collection::vec(any::<u8>(), 0..48),
        junk in proptest::collection::vec(any::<u8>(), 0..64),
        mode in 0u8..4,
        cut in any::<usize>(),
        at in any::<usize>(),
        x in 1u8..=255u8,
    ) {
        let input = byte_string_input(&data, junk, mode, cut, at, x);
        let mut ref_pos = 0usize;
        let reference = reference_owned_get_bytes(&input, &mut ref_pos);

        let mut owned = Decoder::new(&input);
        let mut borrowed = Decoder::new(&input);
        let mut cow = Decoder::new(&input);
        let o = owned.get_bytes();
        let b = borrowed.get_bytes_borrowed();
        let c = cow.get_bytes_cow();

        if let Ok(view) = &c {
            prop_assert!(
                matches!(view, Cow::Borrowed(_)),
                "cow getter must borrow, never copy"
            );
        }

        // Same accept/reject, same bytes, same error.
        let b_owned = b.map(<[u8]>::to_vec);
        let c_owned = c.map(Cow::into_owned);
        prop_assert_eq!(&o, &reference, "owned getter diverged from reference");
        prop_assert_eq!(&b_owned, &reference, "borrowed getter diverged from reference");
        prop_assert_eq!(&c_owned, &reference, "cow getter diverged from reference");

        // Same cursor advance — a decoder that consumed different bytes
        // would desynchronize every field that follows.
        prop_assert_eq!(input.len() - owned.remaining(), ref_pos);
        prop_assert_eq!(owned.remaining(), borrowed.remaining());
        prop_assert_eq!(owned.remaining(), cow.remaining());
    }
}

// ---------------------------------------------------------------------
// 2. Batch ≡ sequential verification
// ---------------------------------------------------------------------

/// Flips one bit of the signature's MAC tag via its wire encoding
/// (signer id, then the 32-byte tag as a length-prefixed byte string).
fn tamper_tag(sig: &Signature) -> Signature {
    let mut bytes = sig.to_wire_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    Signature::from_wire_bytes(&bytes).expect("tampered tag still decodes")
}

/// Rewrites the claimed signer to an id outside the system (wire layout:
/// `b'p'` + 4 big-endian id bytes at offsets 1..5).
fn tamper_signer(sig: &Signature, n: usize) -> Signature {
    let mut bytes = sig.to_wire_bytes();
    bytes[1..5].copy_from_slice(&(n as u32 + 7).to_be_bytes());
    Signature::from_wire_bytes(&bytes).expect("tampered signer still decodes")
}

proptest! {
    #[test]
    fn verify_batch_agrees_with_sequential_verify_on_mixed_subsets(
        n in 2usize..10,
        modes in proptest::collection::vec(0u8..4, 0..12),
    ) {
        let (pki, keys) = trusted_setup(n, 0x5eed);
        let msg = b"batch-equivalence";
        let sigs: Vec<Signature> = modes
            .iter()
            .enumerate()
            .map(|(i, mode)| {
                let key = &keys[i % n];
                match mode {
                    0 => key.sign(msg),
                    1 => key.sign(b"a different message"),
                    2 => tamper_tag(&key.sign(msg)),
                    _ => tamper_signer(&key.sign(msg), n),
                }
            })
            .collect();

        let sequential = sigs.iter().try_for_each(|s| pki.verify(msg, s));
        let batch = pki.verify_batch(msg, &sigs);
        prop_assert_eq!(
            batch.clone(), sequential,
            "batch must return the first sequential error (or Ok)"
        );
        let every = sigs.iter().all(|s| pki.verify(msg, s).is_ok());
        prop_assert_eq!(batch.is_ok(), every, "batch accepts iff every share verifies");
    }

    #[test]
    fn verify_threshold_batch_agrees_with_sequential_verify_threshold(
        n in 3usize..8,
        modes in proptest::collection::vec(0u8..4, 0..10),
    ) {
        let (pki, keys) = trusted_setup(n, 0xcafe);
        let k = n / 2 + 1;
        let certify = |msg: &[u8]| -> ThresholdSignature {
            let shares: Vec<_> = keys.iter().take(k).map(|key| key.sign(msg)).collect();
            pki.combine(k, msg, &shares).expect("valid shares combine")
        };
        let msg_a: &[u8] = b"cert-preimage-a";
        let msg_b: &[u8] = b"cert-preimage-b";
        let qa = certify(msg_a);
        let qb = certify(msg_b);
        let qa_bad = {
            let mut bytes = qa.to_wire_bytes();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            ThresholdSignature::from_wire_bytes(&bytes).expect("tampered cert still decodes")
        };

        // Mixed list: valid on two distinct preimages (exercising the
        // consecutive-same-preimage digest memo), cross-wired pairs, and
        // a tampered tag.
        let items: Vec<(&[u8], &ThresholdSignature)> = modes
            .iter()
            .map(|mode| match mode {
                0 => (msg_a, &qa),
                1 => (msg_b, &qb),
                2 => (msg_b, &qa),
                _ => (msg_a, &qa_bad),
            })
            .collect();

        let sequential = items.iter().try_for_each(|(m, ts)| pki.verify_threshold(m, ts));
        prop_assert_eq!(
            pki.verify_threshold_batch(&items), sequential,
            "threshold batch must match the sequential fold exactly"
        );
    }
}
