//! Property tests for the cryptographic substrate: streaming/oneshot
//! equivalence, signature unforgeability across messages and signers, and
//! certificate-assembly invariants.

use meba_crypto::hmac::hmac_sha256;
use meba_crypto::sha256::Sha256;
use meba_crypto::{trusted_setup, CryptoError, Digest, ProcessId, Signable};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..600), split in 0usize..600) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Digest::of(&data));
    }

    #[test]
    fn sha256_is_injective_on_samples(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(Digest::of(&a), Digest::of(&b));
        }
    }

    #[test]
    fn hmac_distinguishes_keys_and_messages(
        k1 in proptest::collection::vec(any::<u8>(), 1..48),
        k2 in proptest::collection::vec(any::<u8>(), 1..48),
        m in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &m), hmac_sha256(&k2, &m));
        }
    }

    #[test]
    fn signatures_bind_signer_and_message(
        n in 2usize..12,
        signer in 0u32..12,
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        other in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let signer = signer % n as u32;
        let (pki, keys) = trusted_setup(n, 7);
        let sig = keys[signer as usize].sign(&msg);
        prop_assert!(pki.verify(&msg, &sig).is_ok());
        prop_assert_eq!(sig.signer(), ProcessId(signer));
        if other != msg {
            prop_assert!(pki.verify(&other, &sig).is_err());
        }
    }

    #[test]
    fn combine_threshold_boundary(n in 3usize..14, k in 1usize..14, have in 0usize..14) {
        let k = k.min(n);
        let have = have.min(n);
        let (pki, keys) = trusted_setup(n, 3);
        let msg = b"combine boundary";
        let shares: Vec<_> = keys.iter().take(have).map(|key| key.sign(msg)).collect();
        let result = pki.combine(k, msg, &shares);
        if have >= k {
            let qc = result.unwrap();
            prop_assert_eq!(qc.threshold(), k);
            prop_assert!(pki.verify_threshold(msg, &qc).is_ok());
        } else {
            prop_assert_eq!(result, Err(CryptoError::InsufficientShares { needed: k, got: have }));
        }
    }

    #[test]
    fn aggregates_grow_one_signer_at_a_time(n in 2usize..10, order in proptest::collection::vec(0u32..10, 1..10)) {
        let (pki, keys) = trusted_setup(n, 5);
        let msg = b"agg";
        let mut agg = None;
        let mut seen = std::collections::BTreeSet::new();
        for idx in order {
            let idx = (idx % n as u32) as usize;
            let sig = keys[idx].sign(msg);
            match &agg {
                None => {
                    agg = Some(pki.aggregate(msg, &[sig]).unwrap());
                    seen.insert(idx);
                }
                Some(a) => {
                    let r = pki.extend_aggregate(msg, a, &sig);
                    if seen.insert(idx) {
                        agg = Some(r.unwrap());
                    } else {
                        prop_assert!(r.is_err(), "duplicate signer must be rejected");
                    }
                }
            }
        }
        let agg = agg.unwrap();
        prop_assert_eq!(agg.len(), seen.len());
        prop_assert!(pki.verify_aggregate(msg, &agg).is_ok());
    }

    #[test]
    fn cross_setup_certificates_fail(seed_a in 0u64..1000, seed_b in 1000u64..2000, n in 3usize..8) {
        let (pki_a, _) = trusted_setup(n, seed_a);
        let (_, keys_b) = trusted_setup(n, seed_b);
        let msg = b"cross";
        let shares: Vec<_> = keys_b.iter().map(|k| k.sign(msg)).collect();
        // Shares from a different setup never verify, so no certificate
        // can be assembled against pki_a.
        prop_assert!(pki_a.combine(2, msg, &shares).is_err());
        prop_assert!(pki_a.aggregate(msg, &shares).is_err());
    }
}

/// A signable with adversary-controlled fields: distinct field values must
/// produce distinct signing bytes (no encoding ambiguity).
struct Blob<'a> {
    a: &'a [u8],
    b: &'a [u8],
}

impl Signable for Blob<'_> {
    const DOMAIN: &'static str = "proptest/blob";
    fn encode_fields(&self, enc: &mut meba_crypto::Encoder) {
        enc.put_bytes(self.a);
        enc.put_bytes(self.b);
    }
}

proptest! {
    #[test]
    fn field_boundaries_are_unambiguous(
        a1 in proptest::collection::vec(any::<u8>(), 0..16),
        b1 in proptest::collection::vec(any::<u8>(), 0..16),
        a2 in proptest::collection::vec(any::<u8>(), 0..16),
        b2 in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let x = Blob { a: &a1, b: &b1 }.signing_bytes();
        let y = Blob { a: &a2, b: &b2 }.signing_bytes();
        if (a1, b1) != (a2, b2) {
            prop_assert_ne!(x, y, "moving a field boundary must change the bytes");
        } else {
            prop_assert_eq!(x, y);
        }
    }
}
