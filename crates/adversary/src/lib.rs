//! Byzantine strategy library for the `meba` workspace.
//!
//! Every adversary is an ordinary [`meba_sim::Actor`]: it holds the secret
//! keys of the corrupted processes (and nothing more), sees its inbox
//! (a round early, under the simulator's rushing schedule), and may send
//! arbitrary well-typed messages. Unforgeability is enforced by the crypto
//! API, so these strategies express exactly the power the paper's
//! adversary has.
//!
//! * [`wrappers`] — crash faults and outbox tampering over any correct
//!   actor;
//! * [`link_faults`] — a correct actor behind lossy/laggy outbound links
//!   (shared [`meba_sim::faults::LinkPolicy`] schedules);
//! * [`chaos`] — a seeded replay fuzzer for property tests;
//! * [`weak_ba_attacks`] — vote-splitting (E8) and late-help (E9) leaders;
//! * [`bb_attacks`] — the equivocating designated sender;
//! * [`fallback_attacks`] — Dolev–Strong equivocation, graded-agreement
//!   certificate splits;
//! * [`strong_ba_attacks`] — the equivocating strong-BA leader;
//! * [`transfer_attacks`] — the lying state-transfer donor (forged
//!   commit certificates, fabricated uncertified claims, unsolicited
//!   spam) against recovering replicas.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bb_attacks;
pub mod chaos;
pub mod fallback_attacks;
pub mod link_faults;
pub mod smr_attacks;
pub mod strong_ba_attacks;
pub mod transfer_attacks;
pub mod wasteful;
pub mod weak_ba_attacks;
pub mod wrappers;

pub use bb_attacks::EquivocatingSender;
pub use chaos::ChaosActor;
pub use fallback_attacks::{DsEquivocatingSender, GaSplitEchoer};
pub use link_faults::LossyLinkActor;
pub use smr_attacks::{MuxHelpRequester, SessionReplayer};
pub use strong_ba_attacks::EquivocatingStrongLeader;
pub use transfer_attacks::LyingDonor;
pub use wasteful::{WastefulBbLeader, WastefulWeakLeader};
pub use weak_ba_attacks::{LateHelperLeader, SplitVoteLeader};
pub use wrappers::{send_only_to, AmnesiacActor, CrashActor, TransformActor};
