//! Attacks on the session-multiplexed replicated log.
//!
//! * [`SessionReplayer`] — the cross-instance replay attack: records
//!   every message it sees for slot `k` (certificates included) and
//!   re-broadcasts the payloads into slot `k + 1`'s session a configurable
//!   number of rounds later, landing them at the *same instance step* of
//!   the next slot. Against per-slot signature domain separation every
//!   replayed signature verifies under the wrong session and is rejected;
//!   without it, a slot-`k` certificate would decide slot `k + 1`.
//! * [`MuxHelpRequester`] — a correctly-signed `help_req` injected into a
//!   chosen session at a chosen round, used to show that a
//!   decided-but-not-done instance routed through the mux still answers
//!   help requests.

use meba_core::bb::BbMsg;
use meba_core::signing::{sign_payload, HelpReqSig};
use meba_core::weak_ba::WeakBaMsg;
use meba_core::Value;
use meba_crypto::{ProcessId, SecretKey, WireCodec};
use meba_sim::{Actor, Message, RoundCtx, SessionEnvelope, SessionId};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// Byzantine replica that replays one session's traffic into another.
///
/// With rushing delivery it sees slot `k`'s round-`r` messages in round
/// `r` and re-emits each payload, re-tagged for session `onto`, at round
/// `r + delay`. Choosing `delay` = the log's stride lands every replayed
/// message at exactly the step of slot `k + 1` at which the original was
/// sent in slot `k` — the strongest alignment a replay can achieve.
pub struct SessionReplayer<M> {
    me: ProcessId,
    from_session: SessionId,
    onto: SessionId,
    delay: u64,
    queued: BTreeMap<u64, Vec<M>>,
}

impl<M: Message + WireCodec> SessionReplayer<M> {
    /// Replays session `from_session` into `onto`, `delay` rounds later.
    pub fn new(me: ProcessId, from_session: SessionId, onto: SessionId, delay: u64) -> Self {
        SessionReplayer { me, from_session, onto, delay, queued: BTreeMap::new() }
    }
}

impl<M: Message + WireCodec> Actor for SessionReplayer<M> {
    type Msg = SessionEnvelope<M>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let r = ctx.round().as_u64();
        for e in ctx.inbox() {
            if e.msg.session == self.from_session {
                self.queued.entry(r + self.delay).or_default().push(e.msg.msg.clone());
            }
        }
        for msg in self.queued.remove(&r).unwrap_or_default() {
            ctx.broadcast(SessionEnvelope { session: self.onto, msg });
        }
    }

    fn done(&self) -> bool {
        true // never holds the run open
    }
}

/// Byzantine replica that injects one validly-signed `help_req` into a
/// multiplexed BB session at a fixed round.
///
/// The signature is made with this process's real key over the *target
/// instance's* signature domain (`crypto_session`), so it passes
/// verification; a decided instance must answer with a `Help` certificate
/// even though it has not finished its schedule.
pub struct MuxHelpRequester<V, FM> {
    me: ProcessId,
    key: SecretKey,
    wire_session: SessionId,
    crypto_session: u64,
    at_round: u64,
    _msg: PhantomData<fn() -> (V, FM)>,
}

impl<V: Value, FM: Message + WireCodec> MuxHelpRequester<V, FM> {
    /// Sends the help request into `wire_session` (signed for
    /// `crypto_session`) at round `at_round`.
    pub fn new(
        me: ProcessId,
        key: SecretKey,
        wire_session: SessionId,
        crypto_session: u64,
        at_round: u64,
    ) -> Self {
        MuxHelpRequester { me, key, wire_session, crypto_session, at_round, _msg: PhantomData }
    }
}

impl<V: Value, FM: Message + WireCodec> Actor for MuxHelpRequester<V, FM> {
    type Msg = SessionEnvelope<BbMsg<V, FM>>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        if ctx.round().as_u64() == self.at_round {
            let sig = sign_payload(&self.key, &HelpReqSig { session: self.crypto_session });
            ctx.broadcast(SessionEnvelope {
                session: self.wire_session,
                msg: BbMsg::Ba(WeakBaMsg::HelpReq { sig }),
            });
        }
    }

    fn done(&self) -> bool {
        true
    }
}
