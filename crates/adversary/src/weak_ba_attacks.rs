//! Protocol-aware attacks on the adaptive weak BA.
//!
//! * [`SplitVoteLeader`] — drives the E8 threshold ablation: a Byzantine
//!   phase leader proposes different values to two groups and tries to
//!   assemble *two* commit/finalize certificates, topping up each side
//!   with the whole Byzantine cohort's signatures. Against the paper's
//!   `⌈(n+t+1)/2⌉` quorum this is impossible (the two vote sets would need
//!   to overlap in a correct process); against the naive `t + 1` quorum it
//!   succeeds and splits decisions.
//! * [`LateHelperLeader`] — drives the E9 safety-window ablation: a
//!   Byzantine leader completes a finalize certificate but shows it to
//!   nobody during the phases, then answers exactly one help request.
//!   With the paper's `2δ` window the lone decision propagates to every
//!   fallback participant; with the window disabled the fallback can
//!   contradict it.

use meba_core::signing::{
    sign_payload, verify_payload, CommitProof, DecideProof, DecideSig, VoteSig,
};
use meba_core::weak_ba::{WeakBaMsg, PHASE_ROUNDS};
use meba_core::{SystemConfig, Value};
use meba_crypto::{Pki, ProcessId, SecretKey, Signable, Signature, WireCodec};
use meba_sim::{Actor, Message, RoundCtx};
use std::collections::BTreeMap;
use std::marker::PhantomData;

fn collect_votes<V: Value, FM: Message + WireCodec>(
    cfg: &SystemConfig,
    pki: &Pki,
    ctx: &RoundCtx<'_, WeakBaMsg<V, FM>>,
    phase: u32,
    value: &V,
    store: &mut BTreeMap<ProcessId, Signature>,
) {
    for e in ctx.inbox() {
        if let WeakBaMsg::Vote { phase: p, value: v, sig } = &e.msg {
            if *p == phase
                && v == value
                && sig.signer() == e.from
                && verify_payload(
                    pki,
                    &VoteSig { session: cfg.session(), value, level: phase },
                    sig,
                )
            {
                store.insert(e.from, sig.clone());
            }
        }
    }
}

fn collect_decides<V: Value, FM: Message + WireCodec>(
    cfg: &SystemConfig,
    pki: &Pki,
    ctx: &RoundCtx<'_, WeakBaMsg<V, FM>>,
    phase: u32,
    value: &V,
    store: &mut BTreeMap<ProcessId, Signature>,
) {
    for e in ctx.inbox() {
        if let WeakBaMsg::Decide { phase: p, value: v, sig } = &e.msg {
            if *p == phase
                && v == value
                && sig.signer() == e.from
                && verify_payload(pki, &DecideSig { session: cfg.session(), value, phase }, sig)
            {
                store.insert(e.from, sig.clone());
            }
        }
    }
}

/// Tops `store` up with the cohort's own signatures over `payload` and
/// combines a quorum certificate if the threshold is reached.
fn top_up_and_combine<S: Signable>(
    cfg: &SystemConfig,
    pki: &Pki,
    cohort: &[SecretKey],
    payload: &S,
    store: &mut BTreeMap<ProcessId, Signature>,
) -> Option<meba_crypto::ThresholdSignature> {
    for key in cohort {
        store.entry(key.id()).or_insert_with(|| sign_payload(key, payload));
    }
    if store.len() < cfg.quorum() {
        return None;
    }
    let shares: Vec<Signature> = store.values().cloned().collect();
    pki.combine(cfg.quorum(), &payload.signing_bytes(), &shares).ok()
}

/// A Byzantine phase leader that proposes `value_a` to `group_a` and
/// `value_b` to `group_b`, trying to finalize both.
pub struct SplitVoteLeader<V, FM> {
    cfg: SystemConfig,
    me: ProcessId,
    pki: Pki,
    cohort: Vec<SecretKey>,
    phase: u32,
    value_a: V,
    value_b: V,
    group_a: Vec<ProcessId>,
    group_b: Vec<ProcessId>,
    votes_a: BTreeMap<ProcessId, Signature>,
    votes_b: BTreeMap<ProcessId, Signature>,
    decides_a: BTreeMap<ProcessId, Signature>,
    decides_b: BTreeMap<ProcessId, Signature>,
    _fm: PhantomData<fn() -> FM>,
}

impl<V: Value, FM: Message + WireCodec> SplitVoteLeader<V, FM> {
    /// Creates the attacker. `cohort` holds the secret keys of *all*
    /// corrupted processes (the adversary controls them jointly);
    /// `phase` must be a phase this process leads.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        pki: Pki,
        cohort: Vec<SecretKey>,
        phase: u32,
        value_a: V,
        value_b: V,
        group_a: Vec<ProcessId>,
        group_b: Vec<ProcessId>,
    ) -> Self {
        assert_eq!(cfg.leader_of_phase(phase), me, "attacker must lead the phase");
        SplitVoteLeader {
            cfg,
            me,
            pki,
            cohort,
            phase,
            value_a,
            value_b,
            group_a,
            group_b,
            votes_a: BTreeMap::new(),
            votes_b: BTreeMap::new(),
            decides_a: BTreeMap::new(),
            decides_b: BTreeMap::new(),
            _fm: PhantomData,
        }
    }
}

impl<V: Value, FM: Message + WireCodec> Actor for SplitVoteLeader<V, FM> {
    type Msg = WeakBaMsg<V, FM>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let base = (self.phase as u64 - 1) * PHASE_ROUNDS;
        let r = ctx.round().as_u64();
        // Accumulate evidence whenever it arrives (rushing delivers it a
        // round early).
        let (cfg, pki) = (self.cfg, self.pki.clone());
        collect_votes(&cfg, &pki, ctx, self.phase, &self.value_a.clone(), &mut self.votes_a);
        collect_votes(&cfg, &pki, ctx, self.phase, &self.value_b.clone(), &mut self.votes_b);
        collect_decides(&cfg, &pki, ctx, self.phase, &self.value_a.clone(), &mut self.decides_a);
        collect_decides(&cfg, &pki, ctx, self.phase, &self.value_b.clone(), &mut self.decides_b);

        if r == base {
            for &p in &self.group_a {
                ctx.send(p, WeakBaMsg::Propose { phase: self.phase, value: self.value_a.clone() });
            }
            for &p in &self.group_b {
                ctx.send(p, WeakBaMsg::Propose { phase: self.phase, value: self.value_b.clone() });
            }
        } else if r == base + 2 {
            for (value, votes, group) in [
                (self.value_a.clone(), &mut self.votes_a, self.group_a.clone()),
                (self.value_b.clone(), &mut self.votes_b, self.group_b.clone()),
            ] {
                let payload = VoteSig { session: cfg.session(), value: &value, level: self.phase };
                if let Some(qc) = top_up_and_combine(&cfg, &pki, &self.cohort, &payload, votes) {
                    let cert = WeakBaMsg::CommitCert {
                        phase: self.phase,
                        value: value.clone(),
                        proof: CommitProof { level: self.phase, qc },
                    };
                    for &p in &group {
                        ctx.send(p, cert.clone());
                    }
                }
            }
        } else if r == base + 4 {
            for (value, decides, group) in [
                (self.value_a.clone(), &mut self.decides_a, self.group_a.clone()),
                (self.value_b.clone(), &mut self.decides_b, self.group_b.clone()),
            ] {
                let payload =
                    DecideSig { session: cfg.session(), value: &value, phase: self.phase };
                if let Some(qc) = top_up_and_combine(&cfg, &pki, &self.cohort, &payload, decides) {
                    let cert = WeakBaMsg::FinalizeCert {
                        phase: self.phase,
                        value: value.clone(),
                        proof: DecideProof { phase: self.phase, qc },
                    };
                    for &p in &group {
                        ctx.send(p, cert.clone());
                    }
                }
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}

/// A Byzantine phase leader that secretly completes a finalize certificate
/// and answers exactly one help request with it after the phases.
pub struct LateHelperLeader<V, FM> {
    cfg: SystemConfig,
    me: ProcessId,
    pki: Pki,
    cohort: Vec<SecretKey>,
    phase: u32,
    value: V,
    target: ProcessId,
    votes: BTreeMap<ProcessId, Signature>,
    decides: BTreeMap<ProcessId, Signature>,
    proof: Option<DecideProof>,
    _fm: PhantomData<fn() -> FM>,
}

impl<V: Value, FM: Message + WireCodec> LateHelperLeader<V, FM> {
    /// Creates the attacker; the single `target` will receive the help
    /// answer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        pki: Pki,
        cohort: Vec<SecretKey>,
        phase: u32,
        value: V,
        target: ProcessId,
    ) -> Self {
        assert_eq!(cfg.leader_of_phase(phase), me, "attacker must lead the phase");
        LateHelperLeader {
            cfg,
            me,
            pki,
            cohort,
            phase,
            value,
            target,
            votes: BTreeMap::new(),
            decides: BTreeMap::new(),
            proof: None,
            _fm: PhantomData,
        }
    }

    /// Whether the secret finalize certificate was completed.
    pub fn armed(&self) -> bool {
        self.proof.is_some()
    }
}

impl<V: Value, FM: Message + WireCodec> Actor for LateHelperLeader<V, FM> {
    type Msg = WeakBaMsg<V, FM>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let base = (self.phase as u64 - 1) * PHASE_ROUNDS;
        let help_step = self.cfg.n() as u64 * PHASE_ROUNDS;
        let r = ctx.round().as_u64();
        let (cfg, pki) = (self.cfg, self.pki.clone());
        collect_votes(&cfg, &pki, ctx, self.phase, &self.value.clone(), &mut self.votes);
        collect_decides(&cfg, &pki, ctx, self.phase, &self.value.clone(), &mut self.decides);

        if r == base {
            ctx.broadcast(WeakBaMsg::Propose { phase: self.phase, value: self.value.clone() });
        } else if r == base + 2 {
            let payload = VoteSig { session: cfg.session(), value: &self.value, level: self.phase };
            if let Some(qc) =
                top_up_and_combine(&cfg, &pki, &self.cohort, &payload, &mut self.votes)
            {
                ctx.broadcast(WeakBaMsg::CommitCert {
                    phase: self.phase,
                    value: self.value.clone(),
                    proof: CommitProof { level: self.phase, qc },
                });
            }
        } else if r == base + 4 {
            // Complete the finalize certificate but tell no one.
            let payload =
                DecideSig { session: cfg.session(), value: &self.value, phase: self.phase };
            if let Some(qc) =
                top_up_and_combine(&cfg, &pki, &self.cohort, &payload, &mut self.decides)
            {
                self.proof = Some(DecideProof { phase: self.phase, qc });
            }
        } else if r == help_step + 1 {
            if let Some(proof) = &self.proof {
                ctx.send(
                    self.target,
                    WeakBaMsg::Help { value: self.value.clone(), proof: proof.clone() },
                );
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}
