//! Generic Byzantine wrappers: crash faults and outbox tampering.

use meba_crypto::ProcessId;
use meba_sim::{Actor, Dest, Message, Round, RoundCtx};

/// Runs a correct actor until `crash_at`, then goes silent forever — the
/// classic crash fault, with arbitrary timing.
///
/// # Examples
///
/// ```ignore
/// let byz = CrashActor::new(correct_actor, Round(7));
/// ```
pub struct CrashActor<A: Actor> {
    inner: A,
    crash_at: Round,
}

impl<A: Actor> CrashActor<A> {
    /// Wraps `inner`, crashing it at the start of `crash_at`.
    pub fn new(inner: A, crash_at: Round) -> Self {
        CrashActor { inner, crash_at }
    }
}

impl<A: Actor> Actor for CrashActor<A> {
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, A::Msg>) {
        if ctx.round() < self.crash_at {
            self.inner.on_round(ctx);
        }
    }

    fn done(&self) -> bool {
        true // Byzantine actors never block termination detection.
    }
}

/// Runs a correct actor but rewrites its outbox each round: drop, delay,
/// duplicate, or redirect messages arbitrarily. The transform cannot forge
/// signatures — it only rearranges what the correct logic would have sent,
/// which models a corrupted process that follows the protocol state
/// machine but misbehaves on the wire.
pub struct TransformActor<A: Actor, F> {
    inner: A,
    transform: F,
}

impl<A, F> TransformActor<A, F>
where
    A: Actor,
    F: FnMut(Round, Vec<(Dest, A::Msg)>) -> Vec<(Dest, A::Msg)> + Send,
{
    /// Wraps `inner` with an outbox `transform`.
    pub fn new(inner: A, transform: F) -> Self {
        TransformActor { inner, transform }
    }
}

impl<A, F> Actor for TransformActor<A, F>
where
    A: Actor,
    F: FnMut(Round, Vec<(Dest, A::Msg)>) -> Vec<(Dest, A::Msg)> + Send,
{
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, A::Msg>) {
        let inbox: Vec<_> = ctx.inbox().to_vec();
        let mut shadow = RoundCtx::new(ctx.round(), ctx.me(), ctx.n(), &inbox);
        self.inner.on_round(&mut shadow);
        let outbox = (self.transform)(ctx.round(), shadow.take_outbox());
        for (dest, msg) in outbox {
            match dest {
                Dest::To(p) => ctx.send(p, msg),
                Dest::All => ctx.broadcast(msg),
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}

/// The restart-replay attack: at `restart_at` the process discards ALL
/// volatile state and resumes from a factory-fresh state machine — no
/// journal, no memory of anything it signed — then fast-forwards its
/// schedule against empty inboxes to catch up to the current round.
///
/// This is exactly the fault `meba_core::recovery::Recoverable` exists
/// to prevent: the reborn state machine re-executes signing steps whose
/// slots its pre-crash incarnation already bound, and because its inputs
/// (inboxes, accumulated state) differ on the second run, it can bind a
/// *different* preimage to the same slot — an equivocation manufactured
/// by a crash, with no intentional lying anywhere. A crash-restarted
/// process run through this wrapper must therefore be counted toward
/// `f`; one recovered through the journal need not be.
pub struct AmnesiacActor<A: Actor> {
    inner: A,
    rebuild: Box<dyn FnMut() -> A + Send>,
    restart_at: Round,
    restarted: bool,
}

impl<A: Actor> AmnesiacActor<A> {
    /// Wraps `inner`; at the start of `restart_at` it is replaced by a
    /// fresh `rebuild()` with no memory of the first incarnation.
    pub fn new(inner: A, restart_at: Round, rebuild: impl FnMut() -> A + Send + 'static) -> Self {
        AmnesiacActor { inner, rebuild: Box::new(rebuild), restart_at, restarted: false }
    }
}

impl<A: Actor> Actor for AmnesiacActor<A> {
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, A::Msg>) {
        if !self.restarted && ctx.round() >= self.restart_at {
            self.restarted = true;
            self.inner = (self.rebuild)();
            // Fast-forward the reborn machine through the rounds it
            // missed. The stale outboxes are discarded — the damage is
            // the signing the re-execution performs, not the resends.
            let empty = Vec::new();
            for r in 0..ctx.round().0 {
                let mut shadow = RoundCtx::new(Round(r), ctx.me(), ctx.n(), &empty);
                self.inner.on_round(&mut shadow);
                drop(shadow.take_outbox());
            }
        }
        self.inner.on_round(ctx);
    }

    fn done(&self) -> bool {
        true // Byzantine actors never block termination detection.
    }
}

/// A message together with the delivery restriction applied by
/// [`send_only_to`]: broadcasts become targeted sends to the allow-list.
pub fn send_only_to<M: Message>(
    allowed: Vec<ProcessId>,
) -> impl FnMut(Round, Vec<(Dest, M)>) -> Vec<(Dest, M)> + Send {
    move |_round, outbox| {
        let mut rewritten = Vec::new();
        for (dest, msg) in outbox {
            match dest {
                Dest::To(p) if allowed.contains(&p) => rewritten.push((Dest::To(p), msg)),
                Dest::To(_) => {}
                Dest::All => {
                    for &p in &allowed {
                        rewritten.push((Dest::To(p), msg.clone()));
                    }
                }
            }
        }
        rewritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::Envelope;

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Talker {
        id: ProcessId,
        rounds: u64,
    }
    impl Actor for Talker {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            self.rounds += 1;
            ctx.broadcast(Ping);
        }
    }

    #[test]
    fn crash_actor_stops_at_round() {
        let mut a = CrashActor::new(Talker { id: ProcessId(0), rounds: 0 }, Round(2));
        for r in 0..5 {
            let inbox = vec![];
            let mut ctx = RoundCtx::new(Round(r), ProcessId(0), 3, &inbox);
            a.on_round(&mut ctx);
            let sent = !ctx.take_outbox().is_empty();
            assert_eq!(sent, r < 2, "round {r}");
        }
        assert_eq!(a.inner.rounds, 2);
        assert!(a.done());
    }

    #[test]
    fn transform_can_drop_everything() {
        let mut a = TransformActor::new(Talker { id: ProcessId(0), rounds: 0 }, |_, _| Vec::new());
        let inbox = vec![];
        let mut ctx = RoundCtx::new(Round(0), ProcessId(0), 3, &inbox);
        a.on_round(&mut ctx);
        assert!(ctx.take_outbox().is_empty());
        assert_eq!(a.inner.rounds, 1, "inner logic still ran");
    }

    #[test]
    fn send_only_to_rewrites_broadcasts() {
        let mut f = send_only_to::<Ping>(vec![ProcessId(1)]);
        let out = f(Round(0), vec![(Dest::All, Ping), (Dest::To(ProcessId(2)), Ping)]);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].0, Dest::To(ProcessId(1))));
    }

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl Message for Num {
        fn words(&self) -> u64 {
            1
        }
    }

    /// Signs `(slot = round, value = running sum of inbox values)`. The
    /// "signature log" stands in for the signing oracle: every binding is
    /// appended at sign time, whether or not the send survives.
    struct SumSigner {
        id: ProcessId,
        sum: u64,
        log: std::sync::Arc<std::sync::Mutex<Vec<(u64, u64)>>>,
    }
    impl Actor for SumSigner {
        type Msg = Num;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Num>) {
            self.sum += ctx.inbox().iter().map(|e| e.msg.0).sum::<u64>();
            self.log.lock().unwrap().push((ctx.round().0, self.sum));
            ctx.broadcast(Num(self.sum));
        }
    }

    #[test]
    fn amnesiac_restart_double_binds_a_slot() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let make = {
            let log = log.clone();
            move || SumSigner { id: ProcessId(0), sum: 0, log: log.clone() }
        };
        let mut a = AmnesiacActor::new(make(), Round(2), make);
        for r in 0..3u64 {
            // Pre-crash the process accumulates 7 per round; the reborn
            // incarnation fast-forwards over empty inboxes and sees 0.
            let inbox = vec![Envelope { from: ProcessId(1), msg: Num(7) }];
            let mut ctx = RoundCtx::new(Round(r), ProcessId(0), 3, &inbox);
            a.on_round(&mut ctx);
            drop(ctx.take_outbox());
        }
        // Fold the signature log the way a double-sign detector would.
        let mut bound: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut conflicts = 0;
        for (slot, value) in log.lock().unwrap().iter() {
            match bound.get(slot) {
                None => {
                    bound.insert(*slot, *value);
                }
                Some(v) if v == value => {}
                Some(_) => conflicts += 1,
            }
        }
        assert!(
            conflicts > 0,
            "the unjournaled restart must re-bind an already-signed slot: {:?}",
            log.lock().unwrap()
        );
    }
}
