//! Generic Byzantine wrappers: crash faults and outbox tampering.

use meba_crypto::ProcessId;
use meba_sim::{Actor, Dest, Message, Round, RoundCtx};

/// Runs a correct actor until `crash_at`, then goes silent forever — the
/// classic crash fault, with arbitrary timing.
///
/// # Examples
///
/// ```ignore
/// let byz = CrashActor::new(correct_actor, Round(7));
/// ```
pub struct CrashActor<A: Actor> {
    inner: A,
    crash_at: Round,
}

impl<A: Actor> CrashActor<A> {
    /// Wraps `inner`, crashing it at the start of `crash_at`.
    pub fn new(inner: A, crash_at: Round) -> Self {
        CrashActor { inner, crash_at }
    }
}

impl<A: Actor> Actor for CrashActor<A> {
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, A::Msg>) {
        if ctx.round() < self.crash_at {
            self.inner.on_round(ctx);
        }
    }

    fn done(&self) -> bool {
        true // Byzantine actors never block termination detection.
    }
}

/// Runs a correct actor but rewrites its outbox each round: drop, delay,
/// duplicate, or redirect messages arbitrarily. The transform cannot forge
/// signatures — it only rearranges what the correct logic would have sent,
/// which models a corrupted process that follows the protocol state
/// machine but misbehaves on the wire.
pub struct TransformActor<A: Actor, F> {
    inner: A,
    transform: F,
}

impl<A, F> TransformActor<A, F>
where
    A: Actor,
    F: FnMut(Round, Vec<(Dest, A::Msg)>) -> Vec<(Dest, A::Msg)> + Send,
{
    /// Wraps `inner` with an outbox `transform`.
    pub fn new(inner: A, transform: F) -> Self {
        TransformActor { inner, transform }
    }
}

impl<A, F> Actor for TransformActor<A, F>
where
    A: Actor,
    F: FnMut(Round, Vec<(Dest, A::Msg)>) -> Vec<(Dest, A::Msg)> + Send,
{
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, A::Msg>) {
        let inbox: Vec<_> = ctx.inbox().to_vec();
        let mut shadow = RoundCtx::new(ctx.round(), ctx.me(), ctx.n(), &inbox);
        self.inner.on_round(&mut shadow);
        let outbox = (self.transform)(ctx.round(), shadow.take_outbox());
        for (dest, msg) in outbox {
            match dest {
                Dest::To(p) => ctx.send(p, msg),
                Dest::All => ctx.broadcast(msg),
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}

/// A message together with the delivery restriction applied by
/// [`send_only_to`]: broadcasts become targeted sends to the allow-list.
pub fn send_only_to<M: Message>(
    allowed: Vec<ProcessId>,
) -> impl FnMut(Round, Vec<(Dest, M)>) -> Vec<(Dest, M)> + Send {
    move |_round, outbox| {
        let mut rewritten = Vec::new();
        for (dest, msg) in outbox {
            match dest {
                Dest::To(p) if allowed.contains(&p) => rewritten.push((Dest::To(p), msg)),
                Dest::To(_) => {}
                Dest::All => {
                    for &p in &allowed {
                        rewritten.push((Dest::To(p), msg.clone()));
                    }
                }
            }
        }
        rewritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Talker {
        id: ProcessId,
        rounds: u64,
    }
    impl Actor for Talker {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            self.rounds += 1;
            ctx.broadcast(Ping);
        }
    }

    #[test]
    fn crash_actor_stops_at_round() {
        let mut a = CrashActor::new(Talker { id: ProcessId(0), rounds: 0 }, Round(2));
        for r in 0..5 {
            let inbox = vec![];
            let mut ctx = RoundCtx::new(Round(r), ProcessId(0), 3, &inbox);
            a.on_round(&mut ctx);
            let sent = !ctx.take_outbox().is_empty();
            assert_eq!(sent, r < 2, "round {r}");
        }
        assert_eq!(a.inner.rounds, 2);
        assert!(a.done());
    }

    #[test]
    fn transform_can_drop_everything() {
        let mut a = TransformActor::new(Talker { id: ProcessId(0), rounds: 0 }, |_, _| Vec::new());
        let inbox = vec![];
        let mut ctx = RoundCtx::new(Round(0), ProcessId(0), 3, &inbox);
        a.on_round(&mut ctx);
        assert!(ctx.take_outbox().is_empty());
        assert_eq!(a.inner.rounds, 1, "inner logic still ran");
    }

    #[test]
    fn send_only_to_rewrites_broadcasts() {
        let mut f = send_only_to::<Ping>(vec![ProcessId(1)]);
        let out = f(Round(0), vec![(Dest::All, Ping), (Dest::To(ProcessId(2)), Ping)]);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].0, Dest::To(ProcessId(1))));
    }
}
