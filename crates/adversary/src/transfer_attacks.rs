//! Attacks on the certified state-transfer protocol.
//!
//! [`LyingDonor`] is the Byzantine donor the transfer verifier exists
//! for: a replica that participates *correctly* in agreement (its inner
//! actor runs the real log protocol, so the cluster stays live) but
//! answers every `FetchCommitted` with fabricated history — forged
//! certificates over values the cluster never agreed on, and bare
//! (uncertified) lying claims. A recovering replica must reject every
//! certified lie (the forged quorum signature cannot re-derive the
//! claim) and out-vote every bare lie (`t + 1` matching donors always
//! include a correct one), then converge through honest donors.

use meba_core::signing::DecideProof;
use meba_crypto::{trusted_setup, ProcessId, WireCodec};
use meba_service::{Batch, Op, ReplicaMsg, TransferEntry, TransferMsg};
use meba_sim::{Actor, AnyActor, Dest, Envelope, Message, RoundCtx};
use meba_smr::CommitEvidence;

/// How often (in rounds) the donor pushes unsolicited forged batches at
/// the whole cluster, on top of lying to direct fetches. Anti-entropy
/// replies are not authenticated as *responses*, so a Byzantine donor
/// does not have to wait to be asked — the verifier must hold against
/// spam, not just against poisoned answers.
const LIE_BROADCAST_INTERVAL: u64 = 2;

/// Byzantine state-transfer donor: correct in agreement, lying in
/// anti-entropy.
///
/// Wraps a real replica actor. All log traffic (and the inner actor's
/// own sends) passes through untouched; inbound `FetchCommitted`
/// requests are intercepted and answered with a fabricated batch
/// instead of the inner replica's honest applied prefix, and every
/// [`LIE_BROADCAST_INTERVAL`] rounds the same fabricated history is
/// pushed unsolicited at every peer. Odd slots get a forged
/// *certificate* (a structurally valid threshold signature from a trust
/// setup the cluster never ran); even slots get a bare lying claim,
/// exercising the `t + 1`-vouch filter instead of the certificate
/// check.
pub struct LyingDonor<M: Message + WireCodec> {
    inner: Box<dyn AnyActor<Msg = ReplicaMsg<M>>>,
    n: usize,
    total_slots: u64,
    fetches_answered: u64,
    lies_broadcast: u64,
}

impl<M: Message + WireCodec> LyingDonor<M> {
    /// Wraps `inner` (a real replica of an `n`-process, `total_slots`
    /// deployment) into a lying donor.
    pub fn new(inner: Box<dyn AnyActor<Msg = ReplicaMsg<M>>>, n: usize, total_slots: u64) -> Self {
        LyingDonor { inner, n, total_slots, fetches_answered: 0, lies_broadcast: 0 }
    }

    /// How many `FetchCommitted` requests were answered with lies.
    pub fn fetches_answered(&self) -> u64 {
        self.fetches_answered
    }

    /// How many unsolicited forged batches were broadcast.
    pub fn lies_broadcast(&self) -> u64 {
        self.lies_broadcast
    }

    /// The inner (honest-in-agreement) replica.
    pub fn inner(&self) -> &dyn AnyActor<Msg = ReplicaMsg<M>> {
        self.inner.as_ref()
    }

    /// A fabricated value for `slot`: a canonical batch carrying an op
    /// the cluster never admitted (so a victim that applied it would be
    /// immediately visible in its KV state and dedup table).
    fn lie_value(slot: u64) -> Vec<u8> {
        Batch(vec![Op { client: 0xbad, seq: slot, key: 0xbad, value: slot }]).to_wire_bytes()
    }

    /// A structurally valid certificate from a trust setup the cluster
    /// never ran: real threshold shares, real combination — wrong root
    /// of trust, so re-derivation under the cluster's PKI must fail.
    fn forged_cert(&self, value: &[u8]) -> CommitEvidence {
        let (pki, keys) = trusted_setup(self.n, 0xbad_5eed);
        let quorum = self.n - (self.n - 1) / 3;
        let shares: Vec<_> = keys.iter().take(quorum).map(|k| k.sign(value)).collect();
        let qc = pki.combine(quorum, value, &shares).expect("forged shares combine");
        CommitEvidence { ba_value: value.to_vec(), proof: DecideProof { phase: 1, qc } }
    }

    fn forged_batch(&self, from_slot: u64) -> TransferMsg {
        let entries = (from_slot..self.total_slots)
            .take(16)
            .map(|slot| {
                let value = Self::lie_value(slot);
                let cert = (slot % 2 == 1).then(|| self.forged_cert(&value));
                TransferEntry { slot, value, cert }
            })
            .collect();
        TransferMsg::CommittedBatch { from_slot, entries }
    }
}

impl<M: Message + WireCodec> Actor for LyingDonor<M> {
    type Msg = ReplicaMsg<M>;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        // Everything except fetch requests flows to the inner replica
        // unchanged — it keeps agreeing honestly (and even keeps
        // adopting honest transfers if it ever recovers itself).
        let mut forward: Vec<Envelope<ReplicaMsg<M>>> = Vec::new();
        let mut lies: Vec<(ProcessId, TransferMsg)> = Vec::new();
        for env in ctx.inbox() {
            match &env.msg {
                ReplicaMsg::Transfer(TransferMsg::FetchCommitted { from_slot, .. }) => {
                    self.fetches_answered += 1;
                    lies.push((env.from, self.forged_batch(*from_slot)));
                }
                other => forward.push(Envelope { from: env.from, msg: other.clone() }),
            }
        }
        let mut inner_ctx = RoundCtx::new(ctx.round(), ctx.me(), ctx.n(), &forward);
        self.inner.on_round(&mut inner_ctx);
        for (dest, msg) in inner_ctx.take_outbox() {
            match dest {
                Dest::To(p) => ctx.send(p, msg),
                Dest::All => ctx.broadcast(msg),
            }
        }
        for (to, msg) in lies {
            ctx.send(to, ReplicaMsg::Transfer(msg));
        }
        if ctx.round().as_u64().is_multiple_of(LIE_BROADCAST_INTERVAL) {
            self.lies_broadcast += 1;
            ctx.broadcast(ReplicaMsg::Transfer(self.forged_batch(0)));
        }
    }

    fn done(&self) -> bool {
        self.inner.done()
    }

    fn refused_equivocations(&self) -> u64 {
        self.inner.refused_equivocations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_core::SystemConfig;
    use meba_service::{claimed_decision, verify_certified};

    type M = meba_service::ServiceMsg<meba_fallback::RecursiveBaFactory>;

    fn idle_inner() -> Box<dyn AnyActor<Msg = ReplicaMsg<M>>> {
        struct Nothing;
        impl Actor for Nothing {
            type Msg = ReplicaMsg<M>;
            fn id(&self) -> ProcessId {
                ProcessId(0)
            }
            fn on_round(&mut self, _ctx: &mut RoundCtx<'_, Self::Msg>) {}
            fn done(&self) -> bool {
                true
            }
        }
        Box::new(Nothing)
    }

    #[test]
    fn forged_batches_never_verify_under_the_real_pki() {
        let n = 5;
        let cfg = SystemConfig::new(n, 0x51).unwrap();
        let (pki, _) = trusted_setup(n, 0x52);
        let donor = LyingDonor::new(idle_inner(), n, 8);
        let TransferMsg::CommittedBatch { entries, .. } = donor.forged_batch(0) else {
            panic!("forged batch shape");
        };
        assert_eq!(entries.len(), 8);
        for e in &entries {
            // Every lie parses (it is a canonical batch) …
            assert!(claimed_decision(e).is_some(), "slot {}", e.slot);
            // … but no certified lie survives verification.
            if e.cert.is_some() {
                assert!(verify_certified(&cfg, &pki, e).is_none(), "slot {}", e.slot);
            }
        }
        assert!(entries.iter().any(|e| e.cert.is_some()), "some lies are certified");
        assert!(entries.iter().any(|e| e.cert.is_none()), "some lies are bare");
    }
}
