//! Attacks on the failure-free-linear strong BA (Algorithm 5).

use meba_core::signing::{sign_payload, verify_payload, StrongInputSig};
use meba_core::strong_ba::StrongBaMsg;
use meba_core::SystemConfig;
use meba_crypto::{Pki, ProcessId, SecretKey, Signable, Signature, WireCodec};
use meba_sim::{Actor, Message, RoundCtx};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// A Byzantine strong-BA *leader* that certifies both binary values
/// (signing with its whole cohort) and proposes `true` to one group and
/// `false` to the other. The `(n, n)` decide certificate then cannot form,
/// every correct process falls back, and agreement must come from
/// `A_fallback` — which is exactly what the tests assert.
pub struct EquivocatingStrongLeader<FM> {
    cfg: SystemConfig,
    me: ProcessId,
    pki: Pki,
    cohort: Vec<SecretKey>,
    group_true: Vec<ProcessId>,
    group_false: Vec<ProcessId>,
    inputs: BTreeMap<bool, BTreeMap<ProcessId, Signature>>,
    _fm: PhantomData<fn() -> FM>,
}

impl<FM: Message + WireCodec> EquivocatingStrongLeader<FM> {
    /// Creates the attacker (it must be `p0`, the protocol leader).
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        pki: Pki,
        cohort: Vec<SecretKey>,
        group_true: Vec<ProcessId>,
        group_false: Vec<ProcessId>,
    ) -> Self {
        assert_eq!(me, ProcessId(0), "the strong BA leader is p0");
        EquivocatingStrongLeader {
            cfg,
            me,
            pki,
            cohort,
            group_true,
            group_false,
            inputs: BTreeMap::new(),
            _fm: PhantomData,
        }
    }
}

impl<FM: Message + WireCodec> Actor for EquivocatingStrongLeader<FM> {
    type Msg = StrongBaMsg<FM>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        for e in ctx.inbox() {
            if let StrongBaMsg::Input { value, sig } = &e.msg {
                let payload = StrongInputSig { session: self.cfg.session(), value: *value };
                if sig.signer() == e.from && verify_payload(&self.pki, &payload, sig) {
                    self.inputs.entry(*value).or_default().insert(e.from, sig.clone());
                }
            }
        }
        if ctx.round().as_u64() == 1 {
            for (value, group) in
                [(true, self.group_true.clone()), (false, self.group_false.clone())]
            {
                let payload = StrongInputSig { session: self.cfg.session(), value };
                let mut sigs = self.inputs.get(&value).cloned().unwrap_or_default();
                for key in &self.cohort {
                    sigs.entry(key.id()).or_insert_with(|| sign_payload(key, &payload));
                }
                if sigs.len() >= self.cfg.idk_threshold() {
                    let shares: Vec<Signature> = sigs.into_values().collect();
                    if let Ok(qc) = self.pki.combine(
                        self.cfg.idk_threshold(),
                        &payload.signing_bytes(),
                        &shares,
                    ) {
                        for &p in &group {
                            ctx.send(p, StrongBaMsg::Propose { value, qc: qc.clone() });
                        }
                    }
                }
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}
