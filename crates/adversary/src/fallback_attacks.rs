//! Attacks on the fallback substrate (graded agreement, Dolev–Strong,
//! recursive BA).

use meba_core::{SystemConfig, Value};
use meba_crypto::{Pki, ProcessId, SecretKey, Signable, Signature};
use meba_fallback::instance::{InstanceId, Scope};
use meba_fallback::messages::{DsBbMsg, DsValSig, GaInputSig, RecBaMsg};
use meba_sim::{Actor, Message, Round, RoundCtx};
use std::collections::BTreeMap;
use std::marker::PhantomData;

/// A Byzantine Dolev–Strong *sender* that signs two different values and
/// starts a chain of each toward different halves. Dolev–Strong's
/// guarantee is exactly that correct processes converge anyway: they
/// cross-forward both chains and extract `⊥`.
pub struct DsEquivocatingSender<V> {
    cfg: SystemConfig,
    key: SecretKey,
    pki: Pki,
    value_a: V,
    value_b: V,
    group_a: Vec<ProcessId>,
    group_b: Vec<ProcessId>,
}

impl<V: Value> DsEquivocatingSender<V> {
    /// Creates the attacker (it must be the DS designated sender).
    pub fn new(
        cfg: SystemConfig,
        key: SecretKey,
        pki: Pki,
        value_a: V,
        value_b: V,
        group_a: Vec<ProcessId>,
        group_b: Vec<ProcessId>,
    ) -> Self {
        DsEquivocatingSender { cfg, key, pki, value_a, value_b, group_a, group_b }
    }

    fn chain(&self, value: &V) -> DsBbMsg<V> {
        let inst = InstanceId::new(Scope::full(self.cfg.n()), 0);
        let payload =
            DsValSig { session: self.cfg.session(), inst, ds_sender: self.key.id(), value };
        let sig = self.key.sign(&payload.signing_bytes());
        let agg =
            self.pki.aggregate(&payload.signing_bytes(), &[sig]).expect("own signature aggregates");
        DsBbMsg { value: value.clone(), agg }
    }
}

impl<V: Value> Actor for DsEquivocatingSender<V> {
    type Msg = DsBbMsg<V>;

    fn id(&self) -> ProcessId {
        self.key.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        if ctx.round() != Round(0) {
            return;
        }
        let a = self.chain(&self.value_a);
        let b = self.chain(&self.value_b);
        for &p in &self.group_a {
            ctx.send(p, a.clone());
        }
        for &p in &self.group_b {
            ctx.send(p, b.clone());
        }
    }

    fn done(&self) -> bool {
        true
    }
}

/// A Byzantine graded-agreement participant that collects first-round
/// input signatures (it signs both candidate values with every cohort
/// key) and echoes `C1(value_a)` only to `group_a` and `C1(value_b)` only
/// to `group_b` — the split that tries to make two conflicting `C2`
/// certificates form. The GA's vote-carries-its-certificate rule defeats
/// it: any two honest voters for different values expose the conflict to
/// everyone one round before grading.
pub struct GaSplitEchoer<V, M> {
    cfg: SystemConfig,
    me: ProcessId,
    pki: Pki,
    cohort: Vec<SecretKey>,
    inst: InstanceId,
    value_a: V,
    value_b: V,
    group_a: Vec<ProcessId>,
    group_b: Vec<ProcessId>,
    input_sigs: BTreeMap<V, BTreeMap<ProcessId, Signature>>,
    _m: PhantomData<fn() -> M>,
}

impl<V: Value, M: Message> GaSplitEchoer<V, M> {
    /// Creates the attacker for the GA instance starting at round 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: SystemConfig,
        me: ProcessId,
        pki: Pki,
        cohort: Vec<SecretKey>,
        inst: InstanceId,
        value_a: V,
        value_b: V,
        group_a: Vec<ProcessId>,
        group_b: Vec<ProcessId>,
    ) -> Self {
        GaSplitEchoer {
            cfg,
            me,
            pki,
            cohort,
            inst,
            value_a,
            value_b,
            group_a,
            group_b,
            input_sigs: BTreeMap::new(),
            _m: PhantomData,
        }
    }
}

impl<V: Value> Actor for GaSplitEchoer<V, RecBaMsg<V>> {
    type Msg = RecBaMsg<V>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        // Collect honest input signatures as they appear.
        for e in ctx.inbox() {
            if let RecBaMsg::GaInput { inst, value, sig } = &e.msg {
                if *inst == self.inst {
                    let payload =
                        GaInputSig { session: self.cfg.session(), inst: self.inst, value };
                    if self.pki.verify(&payload.signing_bytes(), sig).is_ok() {
                        self.input_sigs
                            .entry(value.clone())
                            .or_default()
                            .insert(sig.signer(), sig.clone());
                    }
                }
            }
        }
        let r = ctx.round().as_u64();
        if r == 0 {
            // The cohort signs *both* values (Byzantine double-signing).
            for value in [self.value_a.clone(), self.value_b.clone()] {
                let payload =
                    GaInputSig { session: self.cfg.session(), inst: self.inst, value: &value };
                for key in &self.cohort {
                    let sig = key.sign(&payload.signing_bytes());
                    self.input_sigs.entry(value.clone()).or_default().insert(key.id(), sig);
                }
            }
        } else if r == 1 {
            // Selectively echo certificates.
            let thr = self.inst.scope.majority();
            for (value, group) in [
                (self.value_a.clone(), self.group_a.clone()),
                (self.value_b.clone(), self.group_b.clone()),
            ] {
                let payload =
                    GaInputSig { session: self.cfg.session(), inst: self.inst, value: &value };
                if let Some(sigs) = self.input_sigs.get(&value) {
                    if sigs.len() >= thr {
                        let shares: Vec<Signature> = sigs.values().cloned().collect();
                        if let Ok(c1) = self.pki.combine(thr, &payload.signing_bytes(), &shares) {
                            for &p in &group {
                                ctx.send(
                                    p,
                                    RecBaMsg::GaEcho {
                                        inst: self.inst,
                                        value: value.clone(),
                                        c1: c1.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}
