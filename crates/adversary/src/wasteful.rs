//! Cost-maximizing Byzantine leaders.
//!
//! Crashed leaders keep their phases *silent*, which costs nothing — so a
//! crash adversary never realizes the paper's `O(n(f+1))` upper bound.
//! These leaders do: each Byzantine phase leader initiates its phase
//! (a broadcast plus an all-to-leader reply wave, `Θ(n)` words of correct
//! traffic) and then withholds the certificate, so nobody decides and the
//! next leader must spend again. With leaders `p1..pf` corrupted this
//! yields the `(f + 1)·Θ(n)` staircase of Table 1 — the workload of the
//! E1/E2 benches.

use meba_core::bb::{BbBaValue, BbMsg, VET_ROUNDS};
use meba_core::weak_ba::{WeakBaMsg, PHASE_ROUNDS};
use meba_core::{SystemConfig, Value};
use meba_crypto::{ProcessId, WireCodec};
use meba_sim::{Actor, Message, RoundCtx};
use std::marker::PhantomData;

/// A weak BA leader that proposes a value in its phase and then goes
/// silent, wasting one `Θ(n)` reply wave without letting anyone decide.
pub struct WastefulWeakLeader<V, FM> {
    cfg: SystemConfig,
    me: ProcessId,
    phase: u32,
    value: V,
    _fm: PhantomData<fn() -> FM>,
}

impl<V: Value, FM: Message + WireCodec> WastefulWeakLeader<V, FM> {
    /// Creates the leader for the phase it owns.
    pub fn new(cfg: SystemConfig, me: ProcessId, phase: u32, value: V) -> Self {
        assert_eq!(cfg.leader_of_phase(phase), me, "must lead the phase");
        WastefulWeakLeader { cfg, me, phase, value, _fm: PhantomData }
    }
}

impl<V: Value, FM: Message + WireCodec> Actor for WastefulWeakLeader<V, FM> {
    type Msg = WeakBaMsg<V, FM>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let base = (self.phase as u64 - 1) * PHASE_ROUNDS;
        if ctx.round().as_u64() == base {
            ctx.broadcast(WeakBaMsg::Propose { phase: self.phase, value: self.value.clone() });
        }
        let _ = self.cfg;
    }

    fn done(&self) -> bool {
        true
    }
}

/// A BB participant that wastes its vetting phase (help request, then
/// drops the answers) *and* its embedded weak BA phase (a proposal built
/// from the sender's replayed signed value, then silence).
pub struct WastefulBbLeader<V, FM> {
    cfg: SystemConfig,
    me: ProcessId,
    phase: u32,
    captured: Option<BbBaValue<V>>,
    _fm: PhantomData<fn() -> FM>,
}

impl<V: Value, FM: Message + WireCodec> WastefulBbLeader<V, FM> {
    /// Creates the leader for the phase it owns (both the vetting phase
    /// and the weak BA phase rotate the same way).
    pub fn new(cfg: SystemConfig, me: ProcessId, phase: u32) -> Self {
        assert_eq!(cfg.leader_of_phase(phase), me, "must lead the phase");
        WastefulBbLeader { cfg, me, phase, captured: None, _fm: PhantomData }
    }
}

impl<V: Value, FM: Message + WireCodec> Actor for WastefulBbLeader<V, FM> {
    type Msg = BbMsg<V, FM>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        // Capture the sender's signed value for later replay.
        if self.captured.is_none() {
            for e in ctx.inbox() {
                if let BbMsg::SenderValue { value, sig } = &e.msg {
                    self.captured =
                        Some(BbBaValue::Signed { value: value.clone(), sig: sig.clone() });
                    break;
                }
            }
        }
        let r = ctx.round().as_u64();
        let vet_base = 1 + (self.phase as u64 - 1) * VET_ROUNDS;
        if r == vet_base {
            ctx.broadcast(BbMsg::VetHelpReq { phase: self.phase });
        }
        let ba_start = 1 + self.cfg.n() as u64 * VET_ROUNDS;
        let ba_base = ba_start + (self.phase as u64 - 1) * PHASE_ROUNDS;
        if r == ba_base {
            if let Some(v) = &self.captured {
                ctx.broadcast(BbMsg::Ba(WeakBaMsg::Propose {
                    phase: self.phase,
                    value: v.clone(),
                }));
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}
