//! Lossy-link process wrapper: a correct state machine behind faulty
//! outbound links.
//!
//! [`LossyLinkActor`] runs its inner actor honestly each round, then
//! filters the outbox through a [`LinkPolicy`] (the same trait the
//! threaded cluster injects at the transport layer, see
//! `meba_net::ClusterConfig::link_policy`): per-target messages may be
//! dropped or delayed by whole rounds. This models the adversary's power
//! over the *network* of one process — a process that computes correctly
//! but whose words may not arrive — inside the lockstep simulator, where
//! it composes with rushing and the other Byzantine wrappers.
//!
//! Unlike the cluster's transport-layer injection (which counts dropped
//! messages as sent words), a drop here suppresses the send itself: the
//! wrapper models a sender-side fault, so the words are never spent.

use meba_crypto::ProcessId;
use meba_sim::faults::{Link, LinkFate, LinkPolicy};
use meba_sim::{Actor, Dest, RoundCtx};
use std::collections::BTreeMap;

/// Wraps a correct actor with a [`LinkPolicy`] on its outbound links.
///
/// # Examples
///
/// ```ignore
/// let lossy = LossyLinkActor::new(correct_actor, Box::new(BernoulliDrop::new(7, 0.5)));
/// ```
pub struct LossyLinkActor<A: Actor> {
    inner: A,
    policy: Box<dyn LinkPolicy>,
    /// Delayed messages keyed by the round in which they are re-sent; a
    /// message delayed by `k` at round `r` is sent in round `r + k` and
    /// therefore delivered in round `r + k + 1`.
    pending: BTreeMap<u64, Vec<(ProcessId, A::Msg)>>,
    /// Messages dropped so far (for post-run assertions).
    dropped: u64,
    /// Messages delayed so far.
    delayed: u64,
}

impl<A: Actor> LossyLinkActor<A> {
    /// Wraps `inner`; `policy` governs every outbound link.
    pub fn new(inner: A, policy: Box<dyn LinkPolicy>) -> Self {
        LossyLinkActor { inner, policy, pending: BTreeMap::new(), dropped: 0, delayed: 0 }
    }

    /// The wrapped actor, for post-run inspection.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Messages the policy dropped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages the policy delayed.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }
}

impl<A: Actor> Actor for LossyLinkActor<A> {
    type Msg = A::Msg;

    fn id(&self) -> ProcessId {
        self.inner.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, A::Msg>) {
        let round = ctx.round().as_u64();
        let me = ctx.me();
        let n = ctx.n();

        // Re-send messages whose delay elapsed this round.
        if let Some(due) = self.pending.remove(&round) {
            for (target, msg) in due {
                ctx.send(target, msg);
            }
        }

        // Run the honest logic against a shadow context, then filter its
        // outbox per target link.
        let inbox: Vec<_> = ctx.inbox().to_vec();
        let mut shadow = RoundCtx::new(ctx.round(), me, n, &inbox);
        self.inner.on_round(&mut shadow);
        for (dest, msg) in shadow.take_outbox() {
            let targets: Vec<ProcessId> = match dest {
                Dest::To(p) => vec![p],
                Dest::All => ProcessId::all(n).collect(),
            };
            for target in targets {
                if target == me {
                    // Self-delivery is process memory; never faulted.
                    ctx.send(target, msg.clone());
                    continue;
                }
                match self.policy.fate(Link { from: me, to: target }, round) {
                    LinkFate::Deliver => ctx.send(target, msg.clone()),
                    LinkFate::Drop => self.dropped += 1,
                    LinkFate::DelayRounds(k) => {
                        self.delayed += 1;
                        self.pending.entry(round + k).or_default().push((target, msg.clone()));
                    }
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.inner.done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::faults::BernoulliDrop;
    use meba_sim::{AnyActor, Message, Round, SimBuilder};

    #[derive(Clone, Debug)]
    struct Ping;
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
    }

    struct Talker {
        id: ProcessId,
        heard: usize,
    }
    impl Actor for Talker {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            if ctx.round() == Round(0) {
                ctx.broadcast(Ping);
            }
            self.heard += ctx.inbox().len();
        }
        fn done(&self) -> bool {
            self.heard >= 2
        }
    }

    #[test]
    fn drop_everything_silences_outbound_but_keeps_inner_running() {
        let inner = Talker { id: ProcessId(0), heard: 0 };
        let mut lossy = LossyLinkActor::new(inner, Box::new(BernoulliDrop::new(0, 1.0)));
        let inbox = vec![];
        let mut ctx = RoundCtx::new(Round(0), ProcessId(0), 3, &inbox);
        lossy.on_round(&mut ctx);
        let out = ctx.take_outbox();
        // Only the self-delivery survives (broadcast expands to 3 sends).
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].0, Dest::To(ProcessId(0))));
        assert_eq!(lossy.dropped(), 2);
    }

    #[test]
    fn delays_resend_in_a_later_round() {
        let inner = Talker { id: ProcessId(0), heard: 0 };
        let policy = |l: Link, _r: u64| {
            if l.to == ProcessId(1) {
                LinkFate::DelayRounds(2)
            } else {
                LinkFate::Deliver
            }
        };
        let mut lossy = LossyLinkActor::new(inner, Box::new(policy));
        let inbox = vec![];
        let mut ctx = RoundCtx::new(Round(0), ProcessId(0), 3, &inbox);
        lossy.on_round(&mut ctx);
        let out = ctx.take_outbox();
        // p1's copy held back; self + p2 go out now.
        assert_eq!(out.len(), 2);
        assert_eq!(lossy.delayed(), 1);

        let mut ctx = RoundCtx::new(Round(1), ProcessId(0), 3, &inbox);
        lossy.on_round(&mut ctx);
        assert!(ctx.take_outbox().is_empty(), "not due yet");

        let mut ctx = RoundCtx::new(Round(2), ProcessId(0), 3, &inbox);
        lossy.on_round(&mut ctx);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 1, "delayed copy released");
        assert!(matches!(out[0].0, Dest::To(ProcessId(1))));
    }

    #[test]
    fn lossy_process_in_a_simulation() {
        // p0 behind fully lossy links: p1/p2 never hear it, p0 still
        // terminates (done() delegates to the inner actor).
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(LossyLinkActor::new(
                Talker { id: ProcessId(0), heard: 0 },
                Box::new(BernoulliDrop::new(0, 1.0)),
            )),
            Box::new(Talker { id: ProcessId(1), heard: 0 }),
            Box::new(Talker { id: ProcessId(2), heard: 0 }),
        ];
        let mut sim = SimBuilder::new(actors).build();
        sim.run_rounds(3);
        for i in [1u32, 2] {
            let t: &Talker = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert_eq!(t.heard, 2, "p{i} hears itself and the other talker only");
        }
        let lossy: &LossyLinkActor<Talker> =
            sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
        assert_eq!(lossy.dropped(), 2);
        assert_eq!(lossy.inner().heard, 3, "inbound links to p0 are intact");
    }
}
