//! A replay-fuzzing Byzantine actor.
//!
//! [`ChaosActor`] cannot forge signatures (the crypto API forbids it), but
//! it records every message it ever receives and replays random samples to
//! random destinations in later rounds — stale certificates, out-of-phase
//! votes, redirected help answers. Protocol handlers must survive
//! arbitrary such replays; the property tests drive this actor with random
//! seeds.

use meba_crypto::ProcessId;
use meba_sim::{Actor, Message, RoundCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum messages retained for replay.
const POOL_CAP: usize = 512;

/// A Byzantine actor that replays observed messages at random.
pub struct ChaosActor<M> {
    id: ProcessId,
    rng: StdRng,
    pool: Vec<M>,
    /// Expected replays per round.
    intensity: u32,
}

impl<M: Message> ChaosActor<M> {
    /// Creates a chaos actor with a deterministic seed; `intensity` is the
    /// number of replay attempts per round.
    pub fn new(id: ProcessId, seed: u64, intensity: u32) -> Self {
        ChaosActor {
            id,
            rng: StdRng::seed_from_u64(seed ^ u64::from(id.0)),
            pool: Vec::new(),
            intensity,
        }
    }
}

impl<M: Message> Actor for ChaosActor<M> {
    type Msg = M;

    fn id(&self) -> ProcessId {
        self.id
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, M>) {
        for e in ctx.inbox() {
            if self.pool.len() < POOL_CAP {
                self.pool.push(e.msg.clone());
            } else {
                let slot = self.rng.gen_range(0..POOL_CAP);
                self.pool[slot] = e.msg.clone();
            }
        }
        if self.pool.is_empty() {
            return;
        }
        let n = ctx.n();
        for _ in 0..self.intensity {
            let msg = self.pool[self.rng.gen_range(0..self.pool.len())].clone();
            if self.rng.gen_bool(0.2) {
                ctx.broadcast(msg);
            } else {
                let target = ProcessId(self.rng.gen_range(0..n as u32));
                ctx.send(target, msg);
            }
        }
    }

    fn done(&self) -> bool {
        true
    }
}

impl<M> std::fmt::Debug for ChaosActor<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosActor")
            .field("id", &self.id)
            .field("pool", &self.pool.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::Envelope;

    #[derive(Clone, Debug)]
    struct M(#[allow(dead_code)] u8);
    impl Message for M {
        fn words(&self) -> u64 {
            1
        }
    }

    #[test]
    fn replays_observed_messages() {
        let mut a: ChaosActor<M> = ChaosActor::new(ProcessId(1), 42, 3);
        let inbox = vec![Envelope { from: ProcessId(0), msg: M(7) }];
        let mut ctx = RoundCtx::new(meba_sim::Round(0), ProcessId(1), 4, &inbox);
        a.on_round(&mut ctx);
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn silent_until_it_hears_something() {
        let mut a: ChaosActor<M> = ChaosActor::new(ProcessId(1), 42, 3);
        let inbox = vec![];
        let mut ctx = RoundCtx::new(meba_sim::Round(0), ProcessId(1), 4, &inbox);
        a.on_round(&mut ctx);
        assert!(ctx.take_outbox().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut a: ChaosActor<M> = ChaosActor::new(ProcessId(1), seed, 5);
            let inbox = vec![Envelope { from: ProcessId(0), msg: M(1) }];
            let mut ctx = RoundCtx::new(meba_sim::Round(0), ProcessId(1), 4, &inbox);
            a.on_round(&mut ctx);
            ctx.take_outbox().into_iter().map(|(d, _)| format!("{d:?}")).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}
