//! Attacks on the Byzantine Broadcast reduction.

use meba_core::bb::BbMsg;
use meba_core::signing::{sign_payload, BbValueSig};
use meba_core::{SystemConfig, Value};
use meba_crypto::{ProcessId, SecretKey, WireCodec};
use meba_sim::{Actor, Message, Round, RoundCtx};
use std::marker::PhantomData;

/// A Byzantine BB *sender* that signs two different values and sends one
/// to each half of the system, then goes silent. Correct processes must
/// still agree (on either value or `⊥`) — validity does not apply to a
/// faulty sender.
pub struct EquivocatingSender<V, FM> {
    cfg: SystemConfig,
    key: SecretKey,
    value_a: V,
    value_b: V,
    group_a: Vec<ProcessId>,
    group_b: Vec<ProcessId>,
    _fm: PhantomData<fn() -> FM>,
}

impl<V: Value, FM: Message + WireCodec> EquivocatingSender<V, FM> {
    /// Creates the equivocating sender.
    pub fn new(
        cfg: SystemConfig,
        key: SecretKey,
        value_a: V,
        value_b: V,
        group_a: Vec<ProcessId>,
        group_b: Vec<ProcessId>,
    ) -> Self {
        EquivocatingSender { cfg, key, value_a, value_b, group_a, group_b, _fm: PhantomData }
    }
}

impl<V: Value, FM: Message + WireCodec> Actor for EquivocatingSender<V, FM> {
    type Msg = BbMsg<V, FM>;

    fn id(&self) -> ProcessId {
        self.key.id()
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        if ctx.round() != Round(0) {
            return;
        }
        let sig_a = sign_payload(
            &self.key,
            &BbValueSig { session: self.cfg.session(), value: &self.value_a },
        );
        let sig_b = sign_payload(
            &self.key,
            &BbValueSig { session: self.cfg.session(), value: &self.value_b },
        );
        for &p in &self.group_a {
            ctx.send(p, BbMsg::SenderValue { value: self.value_a.clone(), sig: sig_a.clone() });
        }
        for &p in &self.group_b {
            ctx.send(p, BbMsg::SenderValue { value: self.value_b.clone(), sig: sig_b.clone() });
        }
    }

    fn done(&self) -> bool {
        true
    }
}
