//! Round arithmetic for the synchronous model.
//!
//! The network guarantees a known bound `δ` on message delays; the
//! simulator normalizes `δ` to exactly one round: a message sent at the
//! beginning of round `r` is in its destination's inbox at round `r + 1`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A synchronous round number (starting at 0).
///
/// # Examples
///
/// ```
/// use meba_sim::Round;
///
/// let r = Round(3) + 2;
/// assert_eq!(r, Round(5));
/// assert_eq!(r - Round(3), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(pub u64);

serde::impl_serde_newtype!(Round);

impl Round {
    /// The following round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Underlying counter, usable as an index.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Round {
    type Output = Round;
    fn add(self, rhs: u64) -> Round {
        Round(self.0 + rhs)
    }
}

impl AddAssign<u64> for Round {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Round> for Round {
    type Output = u64;
    fn sub(self, rhs: Round) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut r = Round(0);
        r += 4;
        assert_eq!(r, Round(4));
        assert_eq!(r.next(), Round(5));
        assert_eq!(Round(9) - Round(4), 5);
        assert_eq!(Round(2).as_u64(), 2);
    }

    #[test]
    fn formatting() {
        assert_eq!(Round(7).to_string(), "r7");
        assert_eq!(format!("{:?}", Round(7)), "r7");
    }
}
