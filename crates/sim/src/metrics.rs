//! Communication-complexity accounting.
//!
//! The paper measures "the maximum number of words sent by all correct
//! processes, across all runs" (§2). The simulator therefore splits every
//! counter by whether the sender is correct; protocol complexity reads
//! [`Metrics::correct`], while Byzantine traffic is tracked separately for
//! diagnostics. Constituent-signature counts reproduce the Dolev–Reischuk
//! `Ω(nt)` signature bound (experiment E4).

use meba_crypto::ProcessId;
use std::collections::BTreeMap;

/// Number of power-of-two latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` µs (bucket 0 additionally holds sub-microsecond
/// samples), and the last bucket is open-ended — `2^21` µs ≈ 2 s, beyond
/// any sane round duration.
const LATENCY_BUCKETS: usize = 22;

/// A power-of-two histogram of per-round processing latencies, in
/// microseconds.
///
/// Recorded by the threaded cluster runtime: each process contributes one
/// sample per round — the time from the round's scheduled start until it
/// finished processing and sending. Comparing the histogram's tail against
/// `δ` shows how much synchrony headroom a run had.
///
/// # Examples
///
/// ```
/// use meba_sim::metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// h.record_us(3);
/// h.record_us(900);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.max_us(), 900);
/// assert!(h.quantile(1.0) >= 900);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

serde::impl_serde_struct!(LatencyHistogram { buckets, count, sum_us, max_us });

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: vec![0; LATENCY_BUCKETS], count: 0, sum_us: 0, max_us: 0 }
    }
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record_us(&mut self, us: u64) {
        let idx =
            if us == 0 { 0 } else { ((63 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1) };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample, in µs.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean sample, in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts; bucket `i` covers `[2^i, 2^(i+1))` µs.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile (`q ∈ [0, 1]`), in µs: the
    /// exclusive upper edge of the first bucket at which the cumulative
    /// count reaches `q · count`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// Delivery accounting for one directed link.
///
/// `sent` counts messages handed to the link; `delivered` counts messages
/// the recipient actually drained into an inbox. Under [`ReliableLinks`]
/// the two converge when the run ends cleanly; `dropped`/`delayed` count
/// fault-injection decisions ([`crate::faults::LinkFate`]).
///
/// [`ReliableLinks`]: crate::faults::ReliableLinks
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages the sender put on the link (before fault injection).
    pub sent: u64,
    /// Messages the recipient drained into a round inbox.
    pub delivered: u64,
    /// Messages dropped by a [`crate::faults::LinkPolicy`].
    pub dropped: u64,
    /// Messages delayed past `δ` by a [`crate::faults::LinkPolicy`].
    pub delayed: u64,
    /// Canonical-encoding bytes the sender put on the link (0 for message
    /// types without a wire codec; counted before fault injection, like
    /// `sent`).
    pub bytes: u64,
}

serde::impl_serde_struct!(LinkStats { sent, delivered, dropped, delayed, bytes });

/// A bundle of communication counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total words sent.
    pub words: u64,
    /// Total point-to-point messages sent (a broadcast counts `n - 1`).
    pub messages: u64,
    /// Total constituent signatures sent (threshold sig of threshold `k`
    /// counts `k`).
    pub constituent_sigs: u64,
    /// Total canonical-encoding bytes sent ([`crate::Message::wire_bytes`];
    /// 0 for message types without a wire codec). Dividing by `words`
    /// gives the run's realized bytes-per-word ratio, which the wire
    /// layer checks against its constant byte-per-word budget.
    pub bytes: u64,
}

serde::impl_serde_struct!(Counters { words, messages, constituent_sigs, bytes });

impl Counters {
    /// Adds one message's costs.
    pub fn record(&mut self, words: u64, sigs: u64, bytes: u64) {
        self.words += words;
        self.messages += 1;
        self.constituent_sigs += sigs;
        self.bytes += bytes;
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &Counters) {
        self.words += other.words;
        self.messages += other.messages;
        self.constituent_sigs += other.constituent_sigs;
        self.bytes += other.bytes;
    }
}

/// Correct-process accounting for one multiplexed protocol instance
/// (see [`crate::session::SessionEnvelope`]).
///
/// This is what makes the paper's adaptivity *measurable* per instance:
/// a clean replicated-log slot shows up here with `O(n)` words and a
/// short `first_round..=last_round` span, a faulty one with its
/// `O(n(f+1))`-word, full-schedule footprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Words/messages/signatures correct processes sent in this session.
    pub counters: Counters,
    /// First round any correct process sent a message in this session.
    pub first_round: u64,
    /// Last round any correct process sent a message in this session.
    pub last_round: u64,
}

serde::impl_serde_struct!(SessionStats { counters, first_round, last_round });

impl SessionStats {
    fn record(&mut self, round: u64, words: u64, sigs: u64, bytes: u64) {
        if self.counters.messages == 0 {
            self.first_round = round;
        }
        self.first_round = self.first_round.min(round);
        self.last_round = self.last_round.max(round);
        self.counters.record(words, sigs, bytes);
    }
}

/// Round-advancement accounting under the engine's quorum-or-timeout
/// timing model.
///
/// Every time a process advances into a round `r ≥ 1`, the engine records
/// *why*: either a quorum of distinct senders had already produced
/// round-`(r-1)` traffic when the process advanced ([`quorum`]), or the
/// local round timeout fired first ([`timeout`]). Under the lockstep
/// driver the advance moment is the global schedule, and the cause
/// records whether quorum was satisfied at that deadline — so a
/// failure-free chatty run is all-quorum, while the adaptive protocols'
/// silent rounds necessarily advance on timeout. All-zero for backends
/// that predate cause recording (the lockstep simulator).
///
/// [`quorum`]: AdvanceStats::quorum
/// [`timeout`]: AdvanceStats::timeout
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Advances for which a quorum of distinct prior-round senders had
    /// arrived by the moment of advancement.
    pub quorum: u64,
    /// Advances forced by the local round timeout without quorum.
    pub timeout: u64,
}

serde::impl_serde_struct!(AdvanceStats { quorum, timeout });

impl AdvanceStats {
    /// Total recorded advances.
    pub fn total(&self) -> u64 {
        self.quorum + self.timeout
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &AdvanceStats) {
        self.quorum += other.quorum;
        self.timeout += other.timeout;
    }
}

/// Crash-recovery accounting for one run.
///
/// Populated by runtimes that inject `CrashRestart` process fates
/// (`meba-net`'s `run_cluster_with_recovery`, `meba-wire`'s TCP twin):
/// how many processes crash-restarted, how much journal replay their
/// recoveries cost, and whether the never-re-sign-conflicting guard ever
/// had to refuse an equivocation attempt (it must stay 0 for correct
/// processes — a non-zero value under a replay-attack adversary is the
/// guard working as intended).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Processes that crashed and restarted during the run.
    pub crash_restarts: u64,
    /// Journal records replayed across all recoveries.
    pub replayed_records: u64,
    /// Journal syncs issued across all processes.
    pub journal_fsyncs: u64,
    /// Rounds from each rejoin until that process first reported done,
    /// summed over recoveries (recovery latency).
    pub recovery_rounds: u64,
    /// Steps whose externalization a recovery guard refused because they
    /// would contradict a journaled signature.
    pub refused_equivocations: u64,
}

serde::impl_serde_struct!(RecoveryStats {
    crash_restarts,
    replayed_records,
    journal_fsyncs,
    recovery_rounds,
    refused_equivocations,
});

impl RecoveryStats {
    /// Component-wise sum.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.crash_restarts += other.crash_restarts;
        self.replayed_records += other.replayed_records;
        self.journal_fsyncs += other.journal_fsyncs;
        self.recovery_rounds += other.recovery_rounds;
        self.refused_equivocations += other.refused_equivocations;
    }
}

/// Per-client accounting at the service front door (`meba-service`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Submit attempts this client made at this replica's port.
    pub submitted: u64,
    /// Submits admitted into the batcher.
    pub accepted: u64,
    /// Submits refused with a typed `Overloaded` rejection.
    pub rejected: u64,
    /// Ops of this client applied (committed exactly once) here.
    pub committed: u64,
}

serde::impl_serde_struct!(ClientStats { submitted, accepted, rejected, committed });

/// Client-facing service accounting for one replica.
///
/// Owned by a `meba-service` replica and published next to [`Metrics`]:
/// where the protocol counters measure *words per agreement*, these
/// measure what the amortization buys — *ops per slot* — plus the
/// admission-control decisions (accepted vs. typed rejections; a
/// rejection is load shed, never a silent drop) and the commit latency
/// every accepted op experienced.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submit attempts seen at this replica's port.
    pub ops_submitted: u64,
    /// Ops admitted into the batcher.
    pub ops_accepted: u64,
    /// Ops refused with a typed `Overloaded` rejection (backpressure).
    pub ops_rejected: u64,
    /// First-time `(client, seq)` commits applied to the state machine.
    pub ops_committed: u64,
    /// Duplicate `(client, seq)` occurrences suppressed at apply time.
    pub ops_deduped: u64,
    /// Batches this replica closed and proposed.
    pub batches_proposed: u64,
    /// Total ops across all closed batches (mean occupancy =
    /// `batched_ops / batches_proposed`).
    pub batched_ops: u64,
    /// Admit→apply latency of locally admitted ops, in *rounds* (the
    /// histogram's µs naming is cosmetic; buckets are powers of two).
    pub commit_latency_rounds: LatencyHistogram,
    /// Typed session-id collisions the dynamic spawn path surfaced
    /// (`meba_sim::SessionSpawnError`); 0 in any healthy run.
    pub session_collisions: u64,
    /// Slots this replica applied as `⊥` — genuine cluster-wide no-op
    /// slots (faulty proposer), plus, before state transfer existed,
    /// slots it missed while down.
    pub skipped_slots: u64,
    /// Slots adopted via certified state transfer instead of local
    /// agreement (DESIGN.md §16).
    pub slots_transferred: u64,
    /// Donor commit certificates that verified (value adopted).
    pub transfer_certs_verified: u64,
    /// Donor commit certificates that failed verification (forged,
    /// stale, or replayed for the wrong slot) — counted, never adopted.
    pub transfer_certs_rejected: u64,
    /// Uncertified slots adopted because `t + 1` distinct donors
    /// returned byte-identical values.
    pub transfer_vouches_accepted: u64,
    /// Wire bytes of `CommittedBatch` payloads this replica accepted
    /// while catching up.
    pub transfer_bytes: u64,
    /// Times the recovering replica rotated to a different donor after
    /// a donor stayed silent or served nothing usable.
    pub transfer_donor_retries: u64,
    /// Transferred certified values that contradicted a value this
    /// replica had already applied for the same slot. Any nonzero value
    /// is an agreement-safety violation; the churn tests assert 0.
    pub applied_conflicts: u64,
    /// Per-client breakdown, keyed by client id.
    pub per_client: BTreeMap<u64, ClientStats>,
}

serde::impl_serde_struct!(ServiceStats {
    ops_submitted,
    ops_accepted,
    ops_rejected,
    ops_committed,
    ops_deduped,
    batches_proposed,
    batched_ops,
    commit_latency_rounds,
    session_collisions,
    skipped_slots,
    slots_transferred,
    transfer_certs_verified,
    transfer_certs_rejected,
    transfer_vouches_accepted,
    transfer_bytes,
    transfer_donor_retries,
    applied_conflicts,
    per_client,
});

impl ServiceStats {
    /// Mean ops per closed batch (0 when no batch closed).
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches_proposed == 0 {
            0.0
        } else {
            self.batched_ops as f64 / self.batches_proposed as f64
        }
    }

    /// Per-client counters for `client`, created on first use.
    pub fn client_mut(&mut self, client: u64) -> &mut ClientStats {
        self.per_client.entry(client).or_default()
    }

    /// Component-wise sum (histograms merged bucket-wise).
    pub fn merge(&mut self, other: &ServiceStats) {
        self.ops_submitted += other.ops_submitted;
        self.ops_accepted += other.ops_accepted;
        self.ops_rejected += other.ops_rejected;
        self.ops_committed += other.ops_committed;
        self.ops_deduped += other.ops_deduped;
        self.batches_proposed += other.batches_proposed;
        self.batched_ops += other.batched_ops;
        self.commit_latency_rounds.merge(&other.commit_latency_rounds);
        self.session_collisions += other.session_collisions;
        self.skipped_slots += other.skipped_slots;
        self.slots_transferred += other.slots_transferred;
        self.transfer_certs_verified += other.transfer_certs_verified;
        self.transfer_certs_rejected += other.transfer_certs_rejected;
        self.transfer_vouches_accepted += other.transfer_vouches_accepted;
        self.transfer_bytes += other.transfer_bytes;
        self.transfer_donor_retries += other.transfer_donor_retries;
        self.applied_conflicts += other.applied_conflicts;
        for (client, stats) in &other.per_client {
            let mine = self.per_client.entry(*client).or_default();
            mine.submitted += stats.submitted;
            mine.accepted += stats.accepted;
            mine.rejected += stats.rejected;
            mine.committed += stats.committed;
        }
    }
}

/// Full accounting for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Words/messages/signatures sent by correct processes (the paper's
    /// communication complexity).
    pub correct: Counters,
    /// Traffic originated by Byzantine processes (not part of protocol
    /// complexity; useful for sanity checks).
    pub byzantine: Counters,
    /// Correct-process counters broken down by message component tag
    /// (experiment E5).
    pub by_component: BTreeMap<String, Counters>,
    /// Correct-process words per round, indexed by round number
    /// (experiment E7 latency profiles).
    pub words_per_round: Vec<u64>,
    /// Per-process counters (correct and Byzantine alike).
    pub per_process: BTreeMap<u32, Counters>,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Per-round processing latencies (µs) — populated by the threaded
    /// cluster runtime; empty for lockstep runs, where rounds have no
    /// wall-clock extent.
    pub round_latency: LatencyHistogram,
    /// Delivery accounting per directed link, keyed `"p0->p1"` (see
    /// [`Metrics::link_key`]). Self-links are never recorded.
    pub per_link: BTreeMap<String, LinkStats>,
    /// Correct-process counters broken down by protocol instance, for
    /// session-multiplexed runs (empty when no message carries a
    /// [`crate::Message::session`] tag).
    pub per_session: BTreeMap<u64, SessionStats>,
    /// Crash-recovery accounting (all-zero for runs without
    /// `CrashRestart` fault injection).
    pub recovery: RecoveryStats,
    /// Round-advance causes (quorum vs timeout), summed over processes
    /// and rounds. All-zero for the lockstep simulator, which has no
    /// notion of per-process advancement.
    pub advance: AdvanceStats,
}

serde::impl_serde_struct!(Metrics {
    correct,
    byzantine,
    by_component,
    words_per_round,
    per_process,
    rounds,
    round_latency,
    per_link,
    per_session,
    recovery,
    advance,
});

impl Metrics {
    /// Records one sent message. `session` is the message's instance tag
    /// ([`crate::Message::session`]); `None` for unmultiplexed traffic.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        sender: ProcessId,
        sender_correct: bool,
        component: &'static str,
        session: Option<u64>,
        round: u64,
        words: u64,
        sigs: u64,
        bytes: u64,
    ) {
        self.per_process.entry(sender.0).or_default().record(words, sigs, bytes);
        if sender_correct {
            self.correct.record(words, sigs, bytes);
            self.by_component.entry(component.to_string()).or_default().record(words, sigs, bytes);
            if let Some(s) = session {
                self.per_session.entry(s).or_default().record(round, words, sigs, bytes);
            }
            if self.words_per_round.len() <= round as usize {
                self.words_per_round.resize(round as usize + 1, 0);
            }
            self.words_per_round[round as usize] += words;
        } else {
            self.byzantine.record(words, sigs, bytes);
        }
    }

    /// Words sent by correct processes — the paper's headline metric.
    pub fn correct_words(&self) -> u64 {
        self.correct.words
    }

    /// Canonical [`Metrics::per_link`] key for the directed link
    /// `from → to`.
    pub fn link_key(from: ProcessId, to: ProcessId) -> String {
        format!("{from}->{to}")
    }

    /// Mutable delivery stats for `from → to`, created on first use.
    pub fn link_mut(&mut self, from: ProcessId, to: ProcessId) -> &mut LinkStats {
        self.per_link.entry(Self::link_key(from, to)).or_default()
    }

    /// Delivery stats for `from → to` (zeroed if the link never carried a
    /// message).
    pub fn link(&self, from: ProcessId, to: ProcessId) -> LinkStats {
        self.per_link.get(&Self::link_key(from, to)).copied().unwrap_or_default()
    }

    /// Sum of `dropped` over all links.
    pub fn total_dropped(&self) -> u64 {
        self.per_link.values().map(|s| s.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_and_byzantine_split() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb", None, 0, 3, 2, 96);
        m.record(ProcessId(1), false, "bb", None, 0, 100, 50, 4_000);
        assert_eq!(m.correct.words, 3);
        assert_eq!(m.correct.messages, 1);
        assert_eq!(m.correct.constituent_sigs, 2);
        assert_eq!(m.correct.bytes, 96);
        assert_eq!(m.byzantine.words, 100);
        assert_eq!(m.byzantine.bytes, 4_000);
        assert_eq!(m.correct_words(), 3);
    }

    #[test]
    fn component_breakdown() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb", None, 0, 1, 0, 10);
        m.record(ProcessId(0), true, "weak-ba", None, 1, 2, 1, 20);
        m.record(ProcessId(2), true, "weak-ba", None, 1, 2, 1, 20);
        assert_eq!(m.by_component["bb"].words, 1);
        assert_eq!(m.by_component["weak-ba"].words, 4);
        assert_eq!(m.by_component["weak-ba"].messages, 2);
    }

    #[test]
    fn per_session_breakdown_tracks_span_and_counters() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb", Some(0), 3, 2, 1, 64);
        m.record(ProcessId(1), true, "bb", Some(0), 7, 4, 0, 128);
        m.record(ProcessId(0), true, "bb", Some(1), 5, 10, 2, 0);
        // Byzantine traffic never pollutes the per-session view.
        m.record(ProcessId(2), false, "bb", Some(0), 4, 99, 9, 1);
        // Unmultiplexed traffic has no session bucket.
        m.record(ProcessId(0), true, "bb", None, 8, 1, 0, 0);
        let s0 = &m.per_session[&0];
        assert_eq!(s0.counters.words, 6);
        assert_eq!(s0.counters.messages, 2);
        assert_eq!(s0.counters.constituent_sigs, 1);
        assert_eq!(s0.counters.bytes, 192);
        assert_eq!((s0.first_round, s0.last_round), (3, 7));
        let s1 = &m.per_session[&1];
        assert_eq!(s1.counters.words, 10);
        assert_eq!((s1.first_round, s1.last_round), (5, 5));
        assert_eq!(m.per_session.len(), 2);
    }

    #[test]
    fn per_round_series_grows() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "x", None, 4, 7, 0, 0);
        assert_eq!(m.words_per_round, vec![0, 0, 0, 0, 7]);
    }

    #[test]
    fn advance_stats_total_and_merge() {
        let mut a = AdvanceStats { quorum: 3, timeout: 1 };
        a.merge(&AdvanceStats { quorum: 2, timeout: 5 });
        assert_eq!(a, AdvanceStats { quorum: 5, timeout: 6 });
        assert_eq!(a.total(), 11);
    }

    #[test]
    fn merge_counters() {
        let mut a = Counters { words: 1, messages: 2, constituent_sigs: 3, bytes: 4 };
        let b = Counters { words: 10, messages: 20, constituent_sigs: 30, bytes: 40 };
        a.merge(&b);
        assert_eq!(a, Counters { words: 11, messages: 22, constituent_sigs: 33, bytes: 44 });
    }

    #[test]
    fn latency_histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for us in [0, 1, 2, 3, 500, 1_000, 4_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us(), 4_000_000);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[1], 2); // 2 and 3
        assert_eq!(h.buckets()[8], 1); // 500 ∈ [256, 512)
        assert_eq!(h.buckets()[9], 1); // 1000 ∈ [512, 1024)
        assert_eq!(h.buckets()[21], 1); // open-ended tail
        assert!(h.quantile(0.5) <= 512);
        assert!(h.quantile(1.0) >= 2_097_152);
        assert_eq!(LatencyHistogram::default().quantile(0.9), 0);
    }

    #[test]
    fn latency_histogram_merge() {
        let mut a = LatencyHistogram::default();
        a.record_us(10);
        let mut b = LatencyHistogram::default();
        b.record_us(100);
        b.record_us(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 100);
        assert_eq!(a.mean_us(), 39);
    }

    #[test]
    fn service_stats_occupancy_merge_and_clients() {
        let mut a = ServiceStats {
            ops_submitted: 10,
            ops_accepted: 8,
            ops_rejected: 2,
            ops_committed: 8,
            batches_proposed: 2,
            batched_ops: 8,
            ..Default::default()
        };
        a.commit_latency_rounds.record_us(40);
        let c = a.client_mut(7);
        c.submitted = 10;
        c.accepted = 8;
        c.rejected = 2;
        c.committed = 8;
        assert_eq!(a.mean_occupancy(), 4.0);
        let mut b = ServiceStats {
            ops_rejected: 1,
            batches_proposed: 1,
            batched_ops: 6,
            ..Default::default()
        };
        b.client_mut(7).rejected = 1;
        b.client_mut(9).accepted = 6;
        a.merge(&b);
        assert_eq!(a.ops_rejected, 3);
        assert_eq!(a.batched_ops, 14);
        assert_eq!(a.per_client[&7].rejected, 3);
        assert_eq!(a.per_client[&9].accepted, 6);
        assert_eq!(ServiceStats::default().mean_occupancy(), 0.0);
    }

    #[test]
    fn per_link_accounting() {
        let mut m = Metrics::default();
        m.link_mut(ProcessId(0), ProcessId(1)).sent += 3;
        m.link_mut(ProcessId(0), ProcessId(1)).dropped += 1;
        m.link_mut(ProcessId(1), ProcessId(0)).delivered += 2;
        assert_eq!(m.link(ProcessId(0), ProcessId(1)).sent, 3);
        assert_eq!(m.link(ProcessId(0), ProcessId(1)).dropped, 1);
        assert_eq!(m.link(ProcessId(1), ProcessId(0)).delivered, 2);
        assert_eq!(m.link(ProcessId(2), ProcessId(0)), LinkStats::default());
        assert_eq!(m.total_dropped(), 1);
        assert_eq!(Metrics::link_key(ProcessId(0), ProcessId(1)), "p0->p1");
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn metrics_roundtrip_through_json() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb/vetting", Some(0), 0, 3, 2, 77);
        m.record(ProcessId(1), false, "fallback", Some(1), 2, 5, 1, 33);
        m.rounds = 3;
        m.round_latency.record_us(250);
        m.link_mut(ProcessId(0), ProcessId(1)).sent = 4;
        m.link_mut(ProcessId(0), ProcessId(1)).dropped = 1;
        m.recovery.crash_restarts = 2;
        m.recovery.replayed_records = 17;
        m.recovery.refused_equivocations = 1;
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.correct, m.correct);
        assert_eq!(back.recovery, m.recovery);
        assert_eq!(back.byzantine, m.byzantine);
        assert_eq!(back.words_per_round, m.words_per_round);
        assert_eq!(back.rounds, 3);
        assert_eq!(back.by_component.get("bb/vetting"), m.by_component.get("bb/vetting"));
        assert_eq!(back.round_latency, m.round_latency);
        assert_eq!(back.per_link, m.per_link);
    }
}
