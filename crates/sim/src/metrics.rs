//! Communication-complexity accounting.
//!
//! The paper measures "the maximum number of words sent by all correct
//! processes, across all runs" (§2). The simulator therefore splits every
//! counter by whether the sender is correct; protocol complexity reads
//! [`Metrics::correct`], while Byzantine traffic is tracked separately for
//! diagnostics. Constituent-signature counts reproduce the Dolev–Reischuk
//! `Ω(nt)` signature bound (experiment E4).

use meba_crypto::ProcessId;
use std::collections::BTreeMap;

/// A bundle of communication counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Counters {
    /// Total words sent.
    pub words: u64,
    /// Total point-to-point messages sent (a broadcast counts `n - 1`).
    pub messages: u64,
    /// Total constituent signatures sent (threshold sig of threshold `k`
    /// counts `k`).
    pub constituent_sigs: u64,
}

impl Counters {
    /// Adds one message's costs.
    pub fn record(&mut self, words: u64, sigs: u64) {
        self.words += words;
        self.messages += 1;
        self.constituent_sigs += sigs;
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &Counters) {
        self.words += other.words;
        self.messages += other.messages;
        self.constituent_sigs += other.constituent_sigs;
    }
}

/// Full accounting for one simulation run.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Words/messages/signatures sent by correct processes (the paper's
    /// communication complexity).
    pub correct: Counters,
    /// Traffic originated by Byzantine processes (not part of protocol
    /// complexity; useful for sanity checks).
    pub byzantine: Counters,
    /// Correct-process counters broken down by message component tag
    /// (experiment E5).
    pub by_component: BTreeMap<String, Counters>,
    /// Correct-process words per round, indexed by round number
    /// (experiment E7 latency profiles).
    pub words_per_round: Vec<u64>,
    /// Per-process counters (correct and Byzantine alike).
    pub per_process: BTreeMap<u32, Counters>,
    /// Number of rounds executed.
    pub rounds: u64,
}

impl Metrics {
    /// Records one sent message.
    pub fn record(
        &mut self,
        sender: ProcessId,
        sender_correct: bool,
        component: &'static str,
        round: u64,
        words: u64,
        sigs: u64,
    ) {
        self.per_process.entry(sender.0).or_default().record(words, sigs);
        if sender_correct {
            self.correct.record(words, sigs);
            self.by_component.entry(component.to_string()).or_default().record(words, sigs);
            if self.words_per_round.len() <= round as usize {
                self.words_per_round.resize(round as usize + 1, 0);
            }
            self.words_per_round[round as usize] += words;
        } else {
            self.byzantine.record(words, sigs);
        }
    }

    /// Words sent by correct processes — the paper's headline metric.
    pub fn correct_words(&self) -> u64 {
        self.correct.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_and_byzantine_split() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb", 0, 3, 2);
        m.record(ProcessId(1), false, "bb", 0, 100, 50);
        assert_eq!(m.correct.words, 3);
        assert_eq!(m.correct.messages, 1);
        assert_eq!(m.correct.constituent_sigs, 2);
        assert_eq!(m.byzantine.words, 100);
        assert_eq!(m.correct_words(), 3);
    }

    #[test]
    fn component_breakdown() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb", 0, 1, 0);
        m.record(ProcessId(0), true, "weak-ba", 1, 2, 1);
        m.record(ProcessId(2), true, "weak-ba", 1, 2, 1);
        assert_eq!(m.by_component["bb"].words, 1);
        assert_eq!(m.by_component["weak-ba"].words, 4);
        assert_eq!(m.by_component["weak-ba"].messages, 2);
    }

    #[test]
    fn per_round_series_grows() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "x", 4, 7, 0);
        assert_eq!(m.words_per_round, vec![0, 0, 0, 0, 7]);
    }

    #[test]
    fn merge_counters() {
        let mut a = Counters { words: 1, messages: 2, constituent_sigs: 3 };
        let b = Counters { words: 10, messages: 20, constituent_sigs: 30 };
        a.merge(&b);
        assert_eq!(a, Counters { words: 11, messages: 22, constituent_sigs: 33 });
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn metrics_roundtrip_through_json() {
        let mut m = Metrics::default();
        m.record(ProcessId(0), true, "bb/vetting", 0, 3, 2);
        m.record(ProcessId(1), false, "fallback", 2, 5, 1);
        m.rounds = 3;
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.correct, m.correct);
        assert_eq!(back.byzantine, m.byzantine);
        assert_eq!(back.words_per_round, m.words_per_round);
        assert_eq!(back.rounds, 3);
        assert_eq!(back.by_component.get("bb/vetting"), m.by_component.get("bb/vetting"));
    }
}
