//! Optional execution tracing: a bounded event log of message deliveries.
//!
//! Disabled by default (zero overhead beyond a branch); enable with
//! [`crate::SimBuilder::trace`] to record one [`TraceEvent`] per
//! point-to-point delivery, then query the [`Trace`] after the run —
//! useful when debugging protocol schedules ("who sent what to whom in
//! round 17?") and for fine-grained assertions in tests.

use meba_crypto::ProcessId;
use std::fmt;

/// One recorded message delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Round in which the message was sent.
    pub round: u64,
    /// Sender.
    pub from: ProcessId,
    /// Recipient.
    pub to: ProcessId,
    /// Component tag of the message.
    pub component: String,
    /// Word cost.
    pub words: u64,
    /// Whether the sender was correct.
    pub sender_correct: bool,
}

serde::impl_serde_struct!(TraceEvent { round, from, to, component, words, sender_correct });

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r{} {} -> {} [{}] {}w{}",
            self.round,
            self.from,
            self.to,
            self.component,
            self.words,
            if self.sender_correct { "" } else { " (byz)" }
        )
    }
}

/// A bounded event log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace retaining at most `capacity` events (older events
    /// are kept; the tail is dropped and counted).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Records an event.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in delivery order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events sent during `round`.
    pub fn in_round(&self, round: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.round == round)
    }

    /// Events sent by `p`.
    pub fn sent_by(&self, p: ProcessId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.from == p)
    }

    /// Events whose component tag starts with `prefix`.
    pub fn component(&self, prefix: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.component.starts_with(prefix)).collect()
    }

    /// The last round in which a correct process sent anything with the
    /// given component prefix.
    pub fn last_activity(&self, prefix: &str) -> Option<u64> {
        self.events
            .iter()
            .filter(|e| e.sender_correct && e.component.starts_with(prefix))
            .map(|e| e.round)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64, from: u32, to: u32, comp: &str) -> TraceEvent {
        TraceEvent {
            round,
            from: ProcessId(from),
            to: ProcessId(to),
            component: comp.to_string(),
            words: 1,
            sender_correct: true,
        }
    }

    #[test]
    fn records_and_queries() {
        let mut t = Trace::with_capacity(10);
        t.record(ev(0, 0, 1, "bb/vetting"));
        t.record(ev(0, 1, 0, "weak-ba/phases"));
        t.record(ev(3, 2, 0, "weak-ba/phases"));
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.in_round(0).count(), 2);
        assert_eq!(t.sent_by(ProcessId(2)).count(), 1);
        assert_eq!(t.component("weak-ba").len(), 2);
        assert_eq!(t.last_activity("weak-ba"), Some(3));
        assert_eq!(t.last_activity("fallback"), None);
    }

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(ev(i, 0, 1, "x"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn display_is_readable() {
        let e = ev(7, 1, 2, "bb/vetting");
        assert_eq!(e.to_string(), "r7 p1 -> p2 [bb/vetting] 1w");
    }
}
