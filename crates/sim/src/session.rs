//! The session multiplexing layer: many protocol instances, one transport.
//!
//! Production agreement systems never run a single consensus instance —
//! they run one per slot/height/view, all over the same links. This module
//! supplies the missing addressing layer: a [`SessionId`]-tagged envelope
//! ([`SessionEnvelope`]) routes every message to a protocol *instance*
//! rather than just a process, and the [`Mux`] actor hosts a dynamic set
//! of [`SubProtocol`] instances — opening them on a host-defined schedule
//! (or on first use, if the host opts in), stepping each one per round,
//! and retiring them as soon as they report [`SubProtocol::done`].
//!
//! The mux is runtime-agnostic: it is an ordinary [`Actor`], so the same
//! code runs unchanged on the lockstep simulator and on the threaded
//! `meba-net` cluster. Cryptographic non-interference between concurrent
//! instances is the *host protocol's* job (per-session signature domain
//! separation); the mux only provides addressing and lifecycle.

use crate::actor::{Actor, Dest, Message, RoundCtx};
use meba_crypto::{DecodeError, Decoder, Digest, Encoder, ProcessId, WireCodec};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// A protocol-critical event a [`SubProtocol`] wants made durable before
/// its effects are externalized (see `meba-journal`).
///
/// Protocols emit these from [`SubProtocol::on_step`] and a recovery
/// wrapper drains them via [`SubProtocol::drain_recovery_events`] — the
/// wrapper journals them, enforces the never-re-sign-conflicting guard
/// on [`RecoveryEvent::Signed`], and only then releases the step's
/// outbox. Protocols without recovery support emit nothing (the default)
/// and are still replayable from their per-step inboxes alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A signature was produced. `context` identifies the signing slot
    /// (domain + session + phase — everything but the value); `digest`
    /// commits to the exact preimage signed.
    Signed {
        /// Equivocation context of the signing slot.
        context: Vec<u8>,
        /// Digest of the full signing preimage.
        digest: Digest,
    },
    /// A quorum certificate was received and accepted.
    CertReceived {
        /// Protocol-defined kind discriminant (e.g. commit vs. finalize).
        kind: u32,
        /// Step at which the certificate was accepted.
        step: u64,
    },
    /// The protocol's `commit_level` advanced.
    CommitLevel(u64),
    /// The protocol decided; the payload is the decision's canonical
    /// encoding (or any stable digest of it).
    Decided(Vec<u8>),
}

/// A synchronous protocol state machine, advanced one *step* at a time.
///
/// Step semantics: at step `s`, the machine consumes messages sent by
/// peers at their step `s - 1`, and emits messages that peers consume at
/// their step `s + 1`. Steps map to host rounds 1:1 when embedded in
/// lockstep (via an [`Instance`] or a [`Mux`]), or 1:2 under the `2δ`
/// skew-tolerant adapter in `meba-core`.
pub trait SubProtocol: Send + 'static {
    /// Message type exchanged by this protocol. The [`WireCodec`] bound is
    /// what lets *any* sub-protocol run over the real TCP transport
    /// (`meba-wire`) as well as the in-process runtimes.
    type Msg: Message + WireCodec;
    /// Decision type.
    type Output: Clone + Debug + Send + 'static;

    /// Executes step `s`.
    fn on_step(
        &mut self,
        step: u64,
        inbox: &[(ProcessId, Self::Msg)],
        out: &mut Vec<(Dest, Self::Msg)>,
    );

    /// The decision, once reached.
    fn output(&self) -> Option<Self::Output>;

    /// Whether the machine has completed its entire schedule (it may keep
    /// answering messages until then even after deciding).
    fn done(&self) -> bool;

    /// Drains the protocol-critical events accumulated since the last
    /// drain (signatures produced, certificates accepted, commit-level
    /// transitions, decisions). A recovery wrapper calls this after every
    /// [`SubProtocol::on_step`] and journals the events *before*
    /// releasing the step's messages. The default — no events — is
    /// correct for protocols without crash-recovery support.
    fn drain_recovery_events(&mut self) -> Vec<RecoveryEvent> {
        Vec::new()
    }

    /// How many externalization refusals a recovery guard has issued for
    /// this protocol (always 0 without a recovery wrapper). Surfaced so
    /// runtimes can aggregate it into [`crate::Metrics`].
    fn refused_equivocations(&self) -> u64 {
        0
    }
}

/// Identifies one protocol instance among many multiplexed over the same
/// process-to-process links (e.g. the slot number of a replicated log).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

/// Why an explicit, collision-checked session spawn was rejected.
///
/// The mux's *schedule-driven* open path ([`MuxHost::due`]) is
/// deliberately idempotent: a host may re-announce a session every round
/// and the duplicate opens are silently ignored. A *dynamic* allocator —
/// e.g. the `meba-service` front door binding client batches to fresh
/// slot sessions — must instead learn that an id it computed is already
/// taken, or a collision silently aliases two protocol instances onto
/// one signature domain. [`Mux::try_open`] surfaces exactly that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionSpawnError {
    /// The id belongs to an instance that is currently running.
    Live(SessionId),
    /// The id was already retired (ran to completion, hit its step cap,
    /// or was refused earlier) and may never be reused.
    Retired(SessionId),
    /// The host's [`MuxHost::create`] refused to build the instance
    /// (e.g. out-of-range slot). The id is recorded as retired so stray
    /// traffic cannot retrigger creation.
    Refused(SessionId),
}

impl std::fmt::Display for SessionSpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionSpawnError::Live(sid) => write!(f, "session {sid} is already live"),
            SessionSpawnError::Retired(sid) => write!(f, "session {sid} was already retired"),
            SessionSpawnError::Refused(sid) => write!(f, "host refused to create session {sid}"),
        }
    }
}

impl std::error::Error for SessionSpawnError {}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A sub-protocol message tagged with the instance it belongs to.
///
/// The tag is pure addressing: it contributes no words to the paper's
/// complexity model (like the round number, it is part of the transport
/// framing, not the protocol payload) and carries no authentication —
/// instances must domain-separate their signatures by session themselves.
#[derive(Clone, Debug)]
pub struct SessionEnvelope<M> {
    /// Which instance this message belongs to.
    pub session: SessionId,
    /// The wrapped protocol message.
    pub msg: M,
}

impl<M: Message + WireCodec> Message for SessionEnvelope<M> {
    fn words(&self) -> u64 {
        self.msg.words()
    }
    fn constituent_sigs(&self) -> u64 {
        self.msg.constituent_sigs()
    }
    fn component(&self) -> &'static str {
        self.msg.component()
    }
    fn session(&self) -> Option<u64> {
        Some(self.session.0)
    }
    fn wire_bytes(&self) -> u64 {
        self.wire_len()
    }
}

impl<M: WireCodec> WireCodec for SessionEnvelope<M> {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.session.0);
        self.msg.encode_wire(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let session = SessionId(dec.get_u64()?);
        let msg = M::decode_wire(dec)?;
        Ok(SessionEnvelope { session, msg })
    }
}

/// One lockstep-driven instance of a [`SubProtocol`]: the protocol plus
/// its step counter and the inbox buffered for its next step.
///
/// This is the single-instance core that both the [`Mux`] and the
/// adapters in `meba-core` (`LockstepAdapter`, `SkewAdapter`) are thin
/// wrappers around: deliver messages with [`Instance::deliver`], then
/// fire [`Instance::step`] once per host round (or virtual step).
#[derive(Debug)]
pub struct Instance<P: SubProtocol> {
    proto: P,
    next_step: u64,
    inbox: Vec<(ProcessId, P::Msg)>,
}

impl<P: SubProtocol> Instance<P> {
    /// Wraps a protocol about to execute step 0.
    pub fn new(proto: P) -> Self {
        Instance { proto, next_step: 0, inbox: Vec::new() }
    }

    /// Buffers a message for consumption at the next step.
    pub fn deliver(&mut self, from: ProcessId, msg: P::Msg) {
        self.inbox.push((from, msg));
    }

    /// Executes the next step on everything delivered since the previous
    /// one; returns the step index that just ran.
    pub fn step(&mut self, out: &mut Vec<(Dest, P::Msg)>) -> u64 {
        let step = self.next_step;
        self.proto.on_step(step, &self.inbox, out);
        // Clear rather than take: the inbox allocation is reused by the
        // next step's deliveries.
        self.inbox.clear();
        self.next_step = step + 1;
        step
    }

    /// The step the next [`Instance::step`] call will execute.
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Whether the wrapped protocol has finished its schedule.
    pub fn done(&self) -> bool {
        self.proto.done()
    }

    /// The wrapped protocol.
    pub fn proto(&self) -> &P {
        &self.proto
    }

    /// The wrapped protocol, mutably.
    pub fn proto_mut(&mut self) -> &mut P {
        &mut self.proto
    }

    /// Unwraps the protocol (used when retiring an instance).
    pub fn into_proto(self) -> P {
        self.proto
    }
}

/// Instance lifecycle policy for a [`Mux`]: which sessions open when, how
/// to build them, how long they may run, and what to do with them when
/// they retire.
///
/// The host is the protocol-specific half of a multiplexed driver (e.g.
/// the replicated-log scheduler in `meba-smr`); the mux is the generic
/// routing/lifecycle half.
pub trait MuxHost: Send + 'static {
    /// The protocol type this host instantiates.
    type Proto: SubProtocol;

    /// Sessions scheduled to open at host round `round` (step 0 runs this
    /// round). Lockstep protocols need all correct processes to open a
    /// session at the same round, so opens are driven by the shared round
    /// clock, not by message arrival.
    fn due(&mut self, round: u64) -> Vec<SessionId>;

    /// Builds the instance for `sid`; `None` refuses the session (out of
    /// range / unknown), in which case its messages are dropped.
    fn create(&mut self, sid: SessionId) -> Option<Self::Proto>;

    /// Hard cap on the number of steps an instance may run. An instance
    /// still not [`SubProtocol::done`] after its cap is force-retired —
    /// this is what keeps a Byzantine-stalled instance from living
    /// forever.
    fn max_steps(&self, sid: SessionId) -> u64;

    /// Called exactly once when `sid` retires (done, or step cap hit),
    /// with the final protocol state.
    fn retired(&mut self, sid: SessionId, proto: Self::Proto);

    /// Whether the whole mux is finished (drives [`Actor::done`]).
    fn finished(&self) -> bool;

    /// Whether a message for an unknown session may spawn it on first
    /// use (step 0 at the arrival round). Off by default: lockstep
    /// protocols require round-scheduled opens, and unsolicited spawn
    /// hands Byzantine senders an allocation lever.
    fn accept_unsolicited(&self, _sid: SessionId) -> bool {
        false
    }
}

/// An actor hosting a dynamic set of [`SubProtocol`] instances multiplexed
/// over [`SessionEnvelope`]-tagged messages.
///
/// Per round: opens the sessions the host says are due, routes each inbox
/// envelope to its instance (dropping envelopes for retired or refused
/// sessions), advances every live instance one step, tags and sends their
/// output, and retires instances that are done or have exhausted their
/// step cap.
pub struct Mux<H: MuxHost> {
    me: ProcessId,
    host: H,
    live: BTreeMap<SessionId, Instance<H::Proto>>,
    retired: BTreeSet<SessionId>,
}

impl<H: MuxHost> Mux<H> {
    /// Creates a mux for process `me` with the given lifecycle host.
    pub fn new(me: ProcessId, host: H) -> Self {
        Mux { me, host, live: BTreeMap::new(), retired: BTreeSet::new() }
    }

    /// The lifecycle host (protocol-specific state, e.g. the committed
    /// log).
    pub fn host(&self) -> &H {
        &self.host
    }

    /// The lifecycle host, mutably.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Sessions currently live, in id order.
    pub fn live_sessions(&self) -> Vec<SessionId> {
        self.live.keys().copied().collect()
    }

    /// A live instance's protocol, if `sid` is still running.
    pub fn instance(&self, sid: SessionId) -> Option<&H::Proto> {
        self.live.get(&sid).map(|i| i.proto())
    }

    fn open(&mut self, sid: SessionId) {
        // Schedule-driven opens are idempotent: hosts may re-announce a
        // session every round, so collisions are silently ignored here.
        let _ = self.try_open(sid);
    }

    /// Explicitly spawns `sid` now, collision-checked against the live
    /// and retired instance sets.
    ///
    /// This is the entry point for *dynamically allocated* sessions
    /// (the `meba-service` batcher binding work to fresh slot ids):
    /// unlike the idempotent [`MuxHost::due`] path, an id that is
    /// already live or retired is a typed [`SessionSpawnError`], not a
    /// silent no-op — reusing it would alias two instances onto one
    /// per-session signature domain.
    pub fn try_open(&mut self, sid: SessionId) -> Result<(), SessionSpawnError> {
        if self.live.contains_key(&sid) {
            return Err(SessionSpawnError::Live(sid));
        }
        if self.retired.contains(&sid) {
            return Err(SessionSpawnError::Retired(sid));
        }
        if let Some(proto) = self.host.create(sid) {
            self.live.insert(sid, Instance::new(proto));
            Ok(())
        } else {
            // Refused: remember the refusal so stray traffic for this
            // session cannot retrigger `create` every round.
            self.retired.insert(sid);
            Err(SessionSpawnError::Refused(sid))
        }
    }
}

impl<H: MuxHost> Actor for Mux<H> {
    type Msg = SessionEnvelope<<H::Proto as SubProtocol>::Msg>;

    fn id(&self) -> ProcessId {
        self.me
    }

    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let round = ctx.round().as_u64();
        for sid in self.host.due(round) {
            self.open(sid);
        }
        for env in ctx.inbox().iter().cloned() {
            let sid = env.msg.session;
            if !self.live.contains_key(&sid)
                && !self.retired.contains(&sid)
                && self.host.accept_unsolicited(sid)
            {
                self.open(sid);
            }
            if let Some(inst) = self.live.get_mut(&sid) {
                inst.deliver(env.from, env.msg.msg);
            }
            // else: retired/refused/unknown session — drop.
        }
        let mut to_retire = Vec::new();
        for (&sid, inst) in self.live.iter_mut() {
            let mut out = Vec::new();
            inst.step(&mut out);
            for (dest, msg) in out {
                let tagged = SessionEnvelope { session: sid, msg };
                match dest {
                    Dest::To(p) => ctx.send(p, tagged),
                    Dest::All => ctx.broadcast(tagged),
                }
            }
            if inst.done() || inst.next_step() >= self.host.max_steps(sid) {
                to_retire.push(sid);
            }
        }
        for sid in to_retire {
            let inst = self.live.remove(&sid).expect("collected from live set");
            self.retired.insert(sid);
            self.host.retired(sid, inst.into_proto());
        }
    }

    fn done(&self) -> bool {
        self.host.finished()
    }
}

impl<H: MuxHost> Debug for Mux<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mux")
            .field("me", &self.me)
            .field("live", &self.live.keys().collect::<Vec<_>>())
            .field("retired", &self.retired.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Envelope;
    use crate::round::Round;

    #[derive(Clone, Debug)]
    struct Ping(#[allow(dead_code)] u64);
    impl Message for Ping {
        fn words(&self) -> u64 {
            1
        }
        fn wire_bytes(&self) -> u64 {
            self.wire_len()
        }
    }
    impl WireCodec for Ping {
        fn encode_wire(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
        fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            Ok(Ping(dec.get_u64()?))
        }
    }

    /// Broadcasts its session-local step; decides at step `lifetime` on
    /// how many messages it has seen in total.
    struct Echo {
        lifetime: u64,
        seen: u64,
        decided: Option<u64>,
    }

    impl SubProtocol for Echo {
        type Msg = Ping;
        type Output = u64;
        fn on_step(&mut self, step: u64, inbox: &[(ProcessId, Ping)], out: &mut Vec<(Dest, Ping)>) {
            self.seen += inbox.len() as u64;
            if step >= self.lifetime {
                self.decided = Some(self.seen);
            } else {
                out.push((Dest::All, Ping(step)));
            }
        }
        fn output(&self) -> Option<u64> {
            self.decided
        }
        fn done(&self) -> bool {
            self.decided.is_some()
        }
    }

    /// Opens session k at round 3k; each instance lives 3 steps.
    struct StaggeredHost {
        total: u64,
        finished: Vec<(SessionId, u64)>,
    }

    impl MuxHost for StaggeredHost {
        type Proto = Echo;
        fn due(&mut self, round: u64) -> Vec<SessionId> {
            if round.is_multiple_of(3) && round / 3 < self.total {
                vec![SessionId(round / 3)]
            } else {
                vec![]
            }
        }
        fn create(&mut self, sid: SessionId) -> Option<Echo> {
            (sid.0 < self.total).then_some(Echo { lifetime: 3, seen: 0, decided: None })
        }
        fn max_steps(&self, _sid: SessionId) -> u64 {
            10
        }
        fn retired(&mut self, sid: SessionId, proto: Echo) {
            self.finished.push((sid, proto.output().expect("echo decides")));
        }
        fn finished(&self) -> bool {
            self.finished.len() as u64 == self.total
        }
    }

    fn drive(
        mux: &mut Mux<StaggeredHost>,
        round: u64,
        inbox: &[Envelope<SessionEnvelope<Ping>>],
    ) -> Vec<(Dest, SessionEnvelope<Ping>)> {
        let mut ctx = RoundCtx::new(Round(round), mux.id(), 3, inbox);
        mux.on_round(&mut ctx);
        ctx.take_outbox()
    }

    #[test]
    fn mux_opens_routes_and_retires() {
        let host = StaggeredHost { total: 2, finished: vec![] };
        let mut mux = Mux::new(ProcessId(0), host);
        // Round 0: session 0 opens, runs step 0, broadcasts tagged.
        let out = drive(&mut mux, 0, &[]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.session, SessionId(0));
        assert_eq!(mux.live_sessions(), vec![SessionId(0)]);
        // Rounds 1-2: deliver a message addressed to session 0; a message
        // for the unknown session 7 is dropped (no unsolicited spawn).
        let inbox = vec![
            Envelope {
                from: ProcessId(1),
                msg: SessionEnvelope { session: SessionId(0), msg: Ping(99) },
            },
            Envelope {
                from: ProcessId(2),
                msg: SessionEnvelope { session: SessionId(7), msg: Ping(1) },
            },
        ];
        drive(&mut mux, 1, &inbox);
        drive(&mut mux, 2, &[]);
        // Round 3: session 0 hits step 3 → decides on its 1 routed message
        // and retires; session 1 opens the same round.
        drive(&mut mux, 3, &[]);
        assert_eq!(mux.host().finished, vec![(SessionId(0), 1)]);
        assert_eq!(mux.live_sessions(), vec![SessionId(1)]);
        // A straggler for the retired session 0 is dropped, not respawned.
        let late = vec![Envelope {
            from: ProcessId(1),
            msg: SessionEnvelope { session: SessionId(0), msg: Ping(5) },
        }];
        drive(&mut mux, 4, &late);
        drive(&mut mux, 5, &[]);
        drive(&mut mux, 6, &[]);
        assert!(mux.done());
        assert_eq!(mux.host().finished.len(), 2);
        assert_eq!(mux.host().finished[1], (SessionId(1), 0), "late ping never reached s1");
    }

    /// Regression for the service front door's dynamic slot allocation:
    /// an id already live or retired must surface as a typed error from
    /// [`Mux::try_open`], never a silent dedupe — while the schedule
    /// path (`due`) stays idempotent.
    #[test]
    fn dynamic_spawn_collisions_are_typed_errors() {
        let host = StaggeredHost { total: 3, finished: vec![] };
        let mut mux = Mux::new(ProcessId(0), host);
        // Round 0 opens session 0 through the schedule path.
        drive(&mut mux, 0, &[]);
        assert_eq!(mux.live_sessions(), vec![SessionId(0)]);
        // A dynamic allocator picking the same id gets a collision, and
        // the instance is untouched.
        assert_eq!(mux.try_open(SessionId(0)), Err(SessionSpawnError::Live(SessionId(0))));
        assert_eq!(mux.live_sessions(), vec![SessionId(0)]);
        // A fresh id spawns fine.
        assert_eq!(mux.try_open(SessionId(1)), Ok(()));
        assert_eq!(mux.live_sessions(), vec![SessionId(0), SessionId(1)]);
        // An out-of-range id is refused by the host, and the refusal is
        // sticky: the second attempt reports it as retired.
        assert_eq!(mux.try_open(SessionId(9)), Err(SessionSpawnError::Refused(SessionId(9))));
        assert_eq!(mux.try_open(SessionId(9)), Err(SessionSpawnError::Retired(SessionId(9))));
        // Run session 0 to retirement; its id may never be reused.
        for r in 1..4 {
            drive(&mut mux, r, &[]);
        }
        assert!(!mux.live_sessions().contains(&SessionId(0)));
        assert_eq!(mux.try_open(SessionId(0)), Err(SessionSpawnError::Retired(SessionId(0))));
        // The schedule path still silently tolerates re-announcing an id
        // it already opened (hosts re-announce every stride): session 1
        // was due again at round 3 during the loop above while live, and
        // it simply keeps running — one instance, one retirement.
        drive(&mut mux, 4, &[]); // s1 reaches its lifetime and retires
        assert_eq!(mux.host().finished.iter().filter(|(sid, _)| *sid == SessionId(1)).count(), 1);
        let err = SessionSpawnError::Live(SessionId(1));
        assert_eq!(format!("{err}"), "session s1 is already live");
    }

    #[test]
    fn session_envelope_is_transparent_for_accounting() {
        let env = SessionEnvelope { session: SessionId(4), msg: Ping(0) };
        assert_eq!(env.words(), 1);
        assert_eq!(env.constituent_sigs(), 0);
        assert_eq!(env.session(), Some(4));
        // Envelope bytes = 9-byte session framing + inner encoding.
        assert_eq!(env.wire_bytes(), 9 + env.msg.wire_len());
        let back = SessionEnvelope::<Ping>::from_wire_bytes(&env.to_wire_bytes()).unwrap();
        assert_eq!(back.session, SessionId(4));
        assert_eq!(format!("{}", env.session), "s4");
    }

    #[test]
    fn instance_buffers_between_steps() {
        let mut inst = Instance::new(Echo { lifetime: 3, seen: 0, decided: None });
        inst.deliver(ProcessId(1), Ping(0));
        inst.deliver(ProcessId(2), Ping(0));
        let mut out = Vec::new();
        assert_eq!(inst.step(&mut out), 0);
        assert_eq!(inst.proto().seen, 2, "step 0 consumed both buffered messages");
        assert_eq!(inst.next_step(), 1);
        assert_eq!(inst.step(&mut out), 1);
        assert_eq!(inst.proto().seen, 2, "nothing new delivered");
        assert!(!inst.done());
    }
}
