//! The actor model: protocol state machines driven by synchronous rounds.

use crate::round::Round;
use meba_crypto::ProcessId;
use std::fmt;

/// A protocol message deliverable by the simulator.
///
/// `words` / `constituent_sigs` implement the paper's complexity model
/// (§2); `component` tags the message for per-component breakdowns
/// (experiment E5: Figure 1 composition).
pub trait Message: Clone + fmt::Debug + Send + 'static {
    /// Words this message occupies (at least 1 by the model).
    fn words(&self) -> u64;

    /// Individual signatures represented inside the message (threshold
    /// signatures count their threshold).
    fn constituent_sigs(&self) -> u64 {
        0
    }

    /// Which protocol component produced the message (for breakdowns).
    fn component(&self) -> &'static str {
        "protocol"
    }

    /// Which protocol instance the message belongs to, when the message
    /// is session-tagged (see [`crate::session::SessionEnvelope`]).
    /// Runtimes use this for the per-session [`crate::Metrics`]
    /// breakdowns; `None` means the message is not multiplexed.
    fn session(&self) -> Option<u64> {
        None
    }

    /// Length of the message's canonical wire encoding in bytes, for the
    /// byte counters next to the word counters in [`crate::Metrics`].
    ///
    /// The default `0` means "no wire codec" and is fine for test
    /// messages; protocol messages override this with their
    /// `meba_crypto::WireCodec` encoding length so every runtime (lockstep,
    /// threaded, TCP) reports a realized bytes-per-word ratio.
    fn wire_bytes(&self) -> u64 {
        0
    }
}

/// A message together with its authenticated network-level sender.
///
/// Links are reliable and authenticated (paper §2): if a correct process
/// receives an envelope claiming `from = p` and `p` is correct, then `p`
/// really sent it. The simulator enforces this by stamping envelopes
/// itself.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Network-level sender (unforgeable).
    pub from: ProcessId,
    /// Payload.
    pub msg: M,
}

/// Destination of an outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// One process.
    To(ProcessId),
    /// Every process, including the sender.
    All,
}

/// Per-round execution context handed to an actor.
///
/// Provides this round's inbox and collects outgoing messages. Messages
/// sent during round `r` are delivered in round `r + 1` (`δ = 1`).
#[derive(Debug)]
pub struct RoundCtx<'a, M> {
    round: Round,
    me: ProcessId,
    n: usize,
    inbox: &'a [Envelope<M>],
    outbox: Vec<(Dest, M)>,
}

impl<'a, M: Message> RoundCtx<'a, M> {
    /// Builds a context for one round. Public so alternative runtimes
    /// (e.g. the threaded `meba-net` cluster) can drive actors; the
    /// lockstep simulator uses it internally.
    pub fn new(round: Round, me: ProcessId, n: usize, inbox: &'a [Envelope<M>]) -> Self {
        RoundCtx { round, me, n, inbox, outbox: Vec::new() }
    }

    /// Consumes the context, returning the collected outgoing messages.
    /// Counterpart of [`RoundCtx::new`] for alternative runtimes.
    pub fn take_outbox(self) -> Vec<(Dest, M)> {
        self.outbox
    }

    /// Current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Identity of the executing process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Messages delivered this round (sent during the previous round).
    pub fn inbox(&self) -> &[Envelope<M>] {
        self.inbox
    }

    /// Messages in the inbox from a specific sender.
    pub fn from(&self, p: ProcessId) -> impl Iterator<Item = &M> {
        self.inbox.iter().filter(move |e| e.from == p).map(|e| &e.msg)
    }

    /// Sends `msg` to `to` at the end of this round.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push((Dest::To(to), msg));
    }

    /// Broadcasts `msg` to all `n` processes (including self).
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push((Dest::All, msg));
    }
}

/// A process: a deterministic state machine advanced once per round.
///
/// Correct processes implement the protocol; Byzantine processes (see the
/// `meba-adversary` crate) implement arbitrary behaviour over the same
/// interface — the simulator gives them no extra powers beyond the keys
/// they hold and (optionally) rushing delivery.
pub trait Actor: Send {
    /// The message type this actor exchanges.
    type Msg: Message;

    /// This actor's identity.
    fn id(&self) -> ProcessId;

    /// Executes one synchronous round.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>);

    /// Whether the actor has terminated (used for early simulation stop).
    /// Termination in the protocols means "decided and finished its
    /// schedule", not merely "decided" — deciders may still need to answer
    /// help requests.
    fn done(&self) -> bool {
        false
    }

    /// Conflicting-signature attempts this actor refused (see
    /// [`crate::session::SubProtocol::refused_equivocations`]).
    /// Crash-recovery wrappers override this; runtimes harvest it into
    /// [`crate::metrics::RecoveryStats`].
    fn refused_equivocations(&self) -> u64 {
        0
    }

    /// Called once on an actor that was rebuilt from its journal, after
    /// the runtime has fast-forwarded it (empty-inbox rounds `0..round`)
    /// but before its first live round. `round` is therefore the first
    /// round this actor actually observes after the outage — recovery-
    /// aware actors use it to bound which part of the schedule the
    /// outage could have touched. The default ignores the signal.
    fn on_rejoin(&mut self, _round: Round) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct TestMsg(u64);
    impl Message for TestMsg {
        fn words(&self) -> u64 {
            1
        }
    }

    #[test]
    fn ctx_collects_outbox() {
        let inbox = vec![Envelope { from: ProcessId(1), msg: TestMsg(9) }];
        let mut ctx = RoundCtx::new(Round(0), ProcessId(0), 3, &inbox);
        assert_eq!(ctx.inbox().len(), 1);
        assert_eq!(ctx.from(ProcessId(1)).count(), 1);
        assert_eq!(ctx.from(ProcessId(2)).count(), 0);
        ctx.send(ProcessId(2), TestMsg(1));
        ctx.broadcast(TestMsg(2));
        let out = ctx.take_outbox();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, Dest::To(ProcessId(2)));
        assert_eq!(out[1].0, Dest::All);
    }
}

/// An actor that does nothing: models a process that has crashed from the
/// start (the simplest Byzantine behaviour) or an unused slot.
///
/// # Examples
///
/// ```
/// use meba_crypto::ProcessId;
/// use meba_sim::{Actor, IdleActor};
///
/// # #[derive(Clone, Debug)] struct M;
/// # impl meba_sim::Message for M { fn words(&self) -> u64 { 1 } }
/// let idle: IdleActor<M> = IdleActor::new(ProcessId(2));
/// assert_eq!(idle.id(), ProcessId(2));
/// assert!(idle.done());
/// ```
#[derive(Debug)]
pub struct IdleActor<M> {
    id: ProcessId,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<M> IdleActor<M> {
    /// Creates an idle actor with the given identity.
    pub fn new(id: ProcessId) -> Self {
        IdleActor { id, _msg: std::marker::PhantomData }
    }
}

impl<M: Message> Actor for IdleActor<M> {
    type Msg = M;
    fn id(&self) -> ProcessId {
        self.id
    }
    fn on_round(&mut self, _ctx: &mut RoundCtx<'_, M>) {}
    fn done(&self) -> bool {
        true
    }
}
