//! Link-fault injection policies.
//!
//! A [`LinkPolicy`] decides, per directed link and per round, whether a
//! message is delivered on time, dropped, or delayed by `k` rounds — the
//! network-level faults of the model (message loss, late delivery past
//! `δ`, reordering across round boundaries, and transient partitions).
//! The same trait drives both runtimes:
//!
//! * the **lockstep simulator** ([`crate::SimBuilder::link_policy`]) — a
//!   run is a pure function of the seed, so lossy-link tests reproduce
//!   exactly;
//! * the **threaded cluster** (`meba-net`) — each sender thread owns a
//!   policy instance for its outbound links, and the same seed yields the
//!   same fate for the same `(link, round, nth message)` triple.
//!
//! Determinism: stock policies never consult ambient randomness. Every
//! decision is a pure function of `(seed, from, to, round, seq)` where
//! `seq` is the per-link message sequence number, so two runs in which a
//! process sends the same messages over a link see the same fates.
//!
//! # Examples
//!
//! ```
//! use meba_crypto::ProcessId;
//! use meba_sim::faults::{BernoulliDrop, Link, LinkFate, LinkPolicy};
//!
//! let mut p = BernoulliDrop::new(7, 0.5);
//! let link = Link { from: ProcessId(0), to: ProcessId(1) };
//! let a = p.fate(link, 0);
//! // Same policy state rebuilt from the same seed: identical decision.
//! let mut q = BernoulliDrop::new(7, 0.5);
//! assert_eq!(a, q.fate(link, 0));
//! ```

use meba_crypto::ProcessId;
use std::collections::BTreeMap;
use std::fmt;

/// A directed link `from → to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Link {
    /// Sending endpoint.
    pub from: ProcessId,
    /// Receiving endpoint.
    pub to: ProcessId,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// The fate of one message on one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered within `δ` (the next round).
    Deliver,
    /// Lost.
    Drop,
    /// Delivered `k` rounds later than `δ` allows: a message sent in round
    /// `r` reaches its recipient's inbox in round `r + 1 + k`. Because
    /// later traffic overtakes it, a positive delay also *reorders*
    /// deliveries relative to send order.
    DelayRounds(u64),
}

/// A per-link fault schedule.
///
/// `fate` is consulted once per point-to-point message (a broadcast asks
/// once per recipient); self-links are never consulted — a process's own
/// memory cannot fail. Implementations may keep state (sequence counters,
/// partition timers), which is why the receiver is `&mut self`.
///
/// Closures implement the trait, so one-off policies need no struct:
///
/// ```
/// use meba_sim::faults::{Link, LinkFate, LinkPolicy};
/// use meba_crypto::ProcessId;
///
/// let mut mute_p2 = |l: Link, _round: u64| {
///     if l.from == ProcessId(2) { LinkFate::Drop } else { LinkFate::Deliver }
/// };
/// let l = Link { from: ProcessId(2), to: ProcessId(0) };
/// assert_eq!(mute_p2.fate(l, 9), LinkFate::Drop);
/// ```
pub trait LinkPolicy: Send {
    /// Decides the fate of the next message on `link` sent in `round`.
    fn fate(&mut self, link: Link, round: u64) -> LinkFate;
}

impl<F> LinkPolicy for F
where
    F: FnMut(Link, u64) -> LinkFate + Send,
{
    fn fate(&mut self, link: Link, round: u64) -> LinkFate {
        self(link, round)
    }
}

/// SplitMix64 finalizer: maps equal inputs to equal, well-mixed outputs.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic per-link randomness: a pure function of
/// `(seed, link, round, seq)` with one sequence counter per link.
#[derive(Clone, Debug, Default)]
struct LinkRng {
    seq: BTreeMap<(u32, u32), u64>,
}

impl LinkRng {
    /// Draws a uniform `u64` for the next message on `link` in `round`.
    fn draw(&mut self, seed: u64, link: Link, round: u64) -> u64 {
        let seq = self.seq.entry((link.from.0, link.to.0)).or_insert(0);
        let n = *seq;
        *seq += 1;
        splitmix(
            seed ^ splitmix(u64::from(link.from.0))
                ^ splitmix(u64::from(link.to.0)).rotate_left(17)
                ^ splitmix(round).rotate_left(34)
                ^ splitmix(n).rotate_left(51),
        )
    }

    /// Maps a draw to `[0, 1)` with 53 bits of precision.
    fn fraction(x: u64) -> f64 {
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The identity policy: every message delivered within `δ`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReliableLinks;

impl LinkPolicy for ReliableLinks {
    fn fate(&mut self, _link: Link, _round: u64) -> LinkFate {
        LinkFate::Deliver
    }
}

/// Drops each message independently with probability `p`, seeded.
///
/// # Examples
///
/// ```
/// use meba_sim::faults::{BernoulliDrop, Link, LinkFate, LinkPolicy};
/// use meba_crypto::ProcessId;
///
/// let mut p = BernoulliDrop::new(1, 1.0); // always drop
/// let l = Link { from: ProcessId(0), to: ProcessId(1) };
/// assert_eq!(p.fate(l, 0), LinkFate::Drop);
/// ```
#[derive(Clone, Debug)]
pub struct BernoulliDrop {
    seed: u64,
    prob: f64,
    rng: LinkRng,
}

impl BernoulliDrop {
    /// Creates a drop policy with per-message drop probability
    /// `prob ∈ [0, 1]`.
    pub fn new(seed: u64, prob: f64) -> Self {
        BernoulliDrop { seed, prob: prob.clamp(0.0, 1.0), rng: LinkRng::default() }
    }
}

impl LinkPolicy for BernoulliDrop {
    fn fate(&mut self, link: Link, round: u64) -> LinkFate {
        let x = self.rng.draw(self.seed, link, round);
        if LinkRng::fraction(x) < self.prob {
            LinkFate::Drop
        } else {
            LinkFate::Deliver
        }
    }
}

/// Delays each message independently with probability `prob`, by a
/// uniform `1..=max_delay` rounds — which also reorders deliveries, since
/// undelayed later messages overtake delayed earlier ones.
#[derive(Clone, Debug)]
pub struct RandomDelay {
    seed: u64,
    prob: f64,
    max_delay: u64,
    rng: LinkRng,
}

impl RandomDelay {
    /// Creates a delay policy; `max_delay ≥ 1` is the largest delay in
    /// rounds.
    pub fn new(seed: u64, prob: f64, max_delay: u64) -> Self {
        RandomDelay {
            seed,
            prob: prob.clamp(0.0, 1.0),
            max_delay: max_delay.max(1),
            rng: LinkRng::default(),
        }
    }
}

impl LinkPolicy for RandomDelay {
    fn fate(&mut self, link: Link, round: u64) -> LinkFate {
        let x = self.rng.draw(self.seed, link, round);
        if LinkRng::fraction(x) < self.prob {
            // Reuse high bits so the delay draw is independent of the
            // coin flip's low-order threshold comparison.
            LinkFate::DelayRounds(1 + splitmix(x) % self.max_delay)
        } else {
            LinkFate::Deliver
        }
    }
}

/// A transient partition: for rounds in `[from_round, from_round + duration)`
/// every message crossing between `left` and its complement is dropped;
/// links inside either side are untouched. The partition heals by itself —
/// a one-shot fault.
///
/// # Examples
///
/// ```
/// use meba_sim::faults::{Link, LinkFate, LinkPolicy, OneShotPartition};
/// use meba_crypto::ProcessId;
///
/// let mut p = OneShotPartition::new(5, 3, vec![ProcessId(0), ProcessId(1)]);
/// let cross = Link { from: ProcessId(0), to: ProcessId(2) };
/// let inside = Link { from: ProcessId(0), to: ProcessId(1) };
/// assert_eq!(p.fate(cross, 6), LinkFate::Drop);
/// assert_eq!(p.fate(inside, 6), LinkFate::Deliver);
/// assert_eq!(p.fate(cross, 8), LinkFate::Deliver); // healed
/// ```
#[derive(Clone, Debug)]
pub struct OneShotPartition {
    from_round: u64,
    duration: u64,
    left: Vec<ProcessId>,
}

impl OneShotPartition {
    /// Creates a partition separating `left` from everyone else for
    /// `duration` rounds starting at `from_round`.
    pub fn new(from_round: u64, duration: u64, left: Vec<ProcessId>) -> Self {
        OneShotPartition { from_round, duration, left }
    }

    fn is_left(&self, p: ProcessId) -> bool {
        self.left.contains(&p)
    }
}

impl LinkPolicy for OneShotPartition {
    fn fate(&mut self, link: Link, round: u64) -> LinkFate {
        let active = round >= self.from_round && round < self.from_round + self.duration;
        if active && self.is_left(link.from) != self.is_left(link.to) {
            LinkFate::Drop
        } else {
            LinkFate::Deliver
        }
    }
}

/// Composes policies: the message is dropped if **any** layer drops it,
/// and otherwise delayed by the **sum** of the layers' delays.
#[derive(Default)]
pub struct PolicyStack {
    layers: Vec<Box<dyn LinkPolicy>>,
}

impl fmt::Debug for PolicyStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyStack").field("layers", &self.layers.len()).finish()
    }
}

impl PolicyStack {
    /// An empty stack (equivalent to [`ReliableLinks`]).
    pub fn new() -> Self {
        PolicyStack::default()
    }

    /// Adds a layer; applied in insertion order.
    pub fn with(mut self, layer: Box<dyn LinkPolicy>) -> Self {
        self.layers.push(layer);
        self
    }
}

impl LinkPolicy for PolicyStack {
    fn fate(&mut self, link: Link, round: u64) -> LinkFate {
        let mut delay = 0u64;
        for layer in &mut self.layers {
            match layer.fate(link, round) {
                LinkFate::Deliver => {}
                LinkFate::Drop => return LinkFate::Drop,
                LinkFate::DelayRounds(k) => delay += k,
            }
        }
        if delay == 0 {
            LinkFate::Deliver
        } else {
            LinkFate::DelayRounds(delay)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32) -> Link {
        Link { from: ProcessId(a), to: ProcessId(b) }
    }

    #[test]
    fn reliable_always_delivers() {
        let mut p = ReliableLinks;
        for r in 0..10 {
            assert_eq!(p.fate(link(0, 1), r), LinkFate::Deliver);
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut never = BernoulliDrop::new(3, 0.0);
        let mut always = BernoulliDrop::new(3, 1.0);
        for r in 0..20 {
            assert_eq!(never.fate(link(0, 1), r), LinkFate::Deliver);
            assert_eq!(always.fate(link(0, 1), r), LinkFate::Drop);
        }
    }

    #[test]
    fn bernoulli_is_deterministic_per_seed() {
        let fates = |seed| {
            let mut p = BernoulliDrop::new(seed, 0.5);
            (0..100).map(|r| p.fate(link(r % 3, (r + 1) % 3), u64::from(r))).collect::<Vec<_>>()
        };
        assert_eq!(fates(42), fates(42));
        assert_ne!(fates(42), fates(43), "different seeds should disagree somewhere");
    }

    #[test]
    fn bernoulli_rate_is_roughly_right() {
        let mut p = BernoulliDrop::new(9, 0.3);
        let drops = (0..10_000).filter(|&r| p.fate(link(0, 1), r) == LinkFate::Drop).count();
        assert!((2_500..3_500).contains(&drops), "got {drops} drops at p=0.3");
    }

    #[test]
    fn per_link_sequences_are_independent() {
        // Two messages on the same (link, round) get distinct draws; the
        // same message index on different links is decided independently.
        let mut p = BernoulliDrop::new(7, 0.5);
        let mut q = BernoulliDrop::new(7, 0.5);
        let a1 = p.fate(link(0, 1), 0);
        let _ = p.fate(link(0, 2), 0); // interleaved other-link traffic
        let a2 = p.fate(link(0, 1), 0);
        let b1 = q.fate(link(0, 1), 0);
        let b2 = q.fate(link(0, 1), 0);
        assert_eq!((a1, a2), (b1, b2), "per-link seq makes interleaving irrelevant");
    }

    #[test]
    fn random_delay_bounds() {
        let mut p = RandomDelay::new(5, 1.0, 3);
        for r in 0..200 {
            match p.fate(link(0, 1), r) {
                LinkFate::DelayRounds(k) => assert!((1..=3).contains(&k)),
                other => panic!("prob=1.0 must always delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn partition_respects_membership_and_window() {
        let mut p = OneShotPartition::new(2, 4, vec![ProcessId(0)]);
        assert_eq!(p.fate(link(0, 1), 1), LinkFate::Deliver); // before
        assert_eq!(p.fate(link(0, 1), 2), LinkFate::Drop); // crossing
        assert_eq!(p.fate(link(1, 0), 5), LinkFate::Drop); // both directions
        assert_eq!(p.fate(link(1, 2), 3), LinkFate::Deliver); // same side
        assert_eq!(p.fate(link(0, 1), 6), LinkFate::Deliver); // healed
    }

    #[test]
    fn stack_drops_dominate_and_delays_add() {
        let mut p = PolicyStack::new()
            .with(Box::new(|_l: Link, _r: u64| LinkFate::DelayRounds(1)))
            .with(Box::new(|_l: Link, _r: u64| LinkFate::DelayRounds(2)));
        assert_eq!(p.fate(link(0, 1), 0), LinkFate::DelayRounds(3));

        let mut q = PolicyStack::new()
            .with(Box::new(|_l: Link, _r: u64| LinkFate::DelayRounds(1)))
            .with(Box::new(BernoulliDrop::new(0, 1.0)));
        assert_eq!(q.fate(link(0, 1), 0), LinkFate::Drop);

        let mut empty = PolicyStack::new();
        assert_eq!(empty.fate(link(0, 1), 0), LinkFate::Deliver);
    }

    #[test]
    fn closure_policies_work() {
        let mut p = |l: Link, r: u64| {
            if l.to == ProcessId(9) && r > 3 {
                LinkFate::Drop
            } else {
                LinkFate::Deliver
            }
        };
        assert_eq!(LinkPolicy::fate(&mut p, link(0, 9), 2), LinkFate::Deliver);
        assert_eq!(LinkPolicy::fate(&mut p, link(0, 9), 4), LinkFate::Drop);
    }

    #[test]
    fn link_display() {
        assert_eq!(link(3, 7).to_string(), "p3->p7");
    }
}
