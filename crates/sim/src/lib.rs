//! Deterministic lockstep synchronous network simulator.
//!
//! Models the paper's network (§2): a static set `Π` of `n` processes,
//! reliable authenticated point-to-point links, and a known delay bound
//! `δ`, normalized to one round. Protocols are [`Actor`] state machines;
//! Byzantine behaviour is just another `Actor` implementation (see
//! `meba-adversary`), optionally scheduled with *rushing* delivery.
//!
//! Communication complexity is accounted exactly as the paper defines it:
//! words sent by correct processes ([`Metrics::correct_words`]), with
//! per-component and per-round breakdowns and constituent-signature
//! counting for the Dolev–Reischuk experiments.
//!
//! # Examples
//!
//! ```
//! use meba_crypto::ProcessId;
//! use meba_sim::{Actor, AnyActor, Message, Round, RoundCtx, SimBuilder};
//!
//! #[derive(Clone, Debug)]
//! struct Hello;
//! impl Message for Hello {
//!     fn words(&self) -> u64 { 1 }
//! }
//!
//! struct Node { id: ProcessId, heard: usize }
//! impl Actor for Node {
//!     type Msg = Hello;
//!     fn id(&self) -> ProcessId { self.id }
//!     fn on_round(&mut self, ctx: &mut RoundCtx<'_, Hello>) {
//!         if ctx.round() == Round(0) { ctx.broadcast(Hello); }
//!         self.heard += ctx.inbox().len();
//!     }
//!     fn done(&self) -> bool { self.heard >= 3 }
//! }
//!
//! let actors: Vec<Box<dyn AnyActor<Msg = Hello>>> = (0..3)
//!     .map(|i| Box::new(Node { id: ProcessId(i), heard: 0 }) as _)
//!     .collect();
//! let mut sim = SimBuilder::new(actors).build();
//! sim.run_until_done(10)?;
//! assert_eq!(sim.metrics().correct_words(), 6); // 3 broadcasts × 2 remote copies
//! # Ok::<(), meba_sim::RunError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod faults;
pub mod metrics;
pub mod round;
pub mod runner;
pub mod session;
pub mod trace;

pub use actor::{Actor, Dest, Envelope, IdleActor, Message, RoundCtx};
pub use faults::{
    BernoulliDrop, Link, LinkFate, LinkPolicy, OneShotPartition, PolicyStack, RandomDelay,
    ReliableLinks,
};
pub use metrics::{
    ClientStats, Counters, LatencyHistogram, LinkStats, Metrics, RecoveryStats, ServiceStats,
    SessionStats,
};
pub use round::Round;
pub use runner::{AnyActor, RunError, SimBuilder, Simulation};
pub use session::{
    Instance, Mux, MuxHost, RecoveryEvent, SessionEnvelope, SessionId, SessionSpawnError,
    SubProtocol,
};
pub use trace::{Trace, TraceEvent};
