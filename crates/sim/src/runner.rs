//! The lockstep simulation loop.
//!
//! One [`Simulation`] drives `n` actors through synchronous rounds:
//! messages sent in round `r` are delivered to correct processes in round
//! `r + 1` (`δ = 1` round). With [`SimBuilder::rushing`] enabled (the
//! default), Byzantine actors are scheduled *after* correct actors within a
//! round and receive correct processes' round-`r` messages already in
//! round `r` — the standard rushing adversary.
//!
//! Determinism: actors are stepped in identity order within each wave, and
//! nothing in the loop consults ambient randomness, so a run is a pure
//! function of the actors' initial states.

use crate::actor::{Actor, Dest, Envelope, RoundCtx};
use crate::faults::{Link, LinkFate, LinkPolicy};
use crate::metrics::Metrics;
use crate::round::Round;
use meba_crypto::ProcessId;
use std::any::Any;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error returned when a run does not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The round budget was exhausted before every correct actor reported
    /// [`Actor::done`].
    ExceededMaxRounds {
        /// Budget that was exceeded.
        max_rounds: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::ExceededMaxRounds { max_rounds } => {
                write!(f, "correct actors not done within {max_rounds} rounds")
            }
        }
    }
}

impl Error for RunError {}

/// A boxed actor with runtime downcasting support.
pub trait AnyActor: Actor {
    /// Upcasts to [`Any`] for post-run inspection.
    fn as_any(&self) -> &dyn Any;
}

impl<T: Actor + Any> AnyActor for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Builder for a [`Simulation`].
pub struct SimBuilder<M: crate::actor::Message> {
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    corrupt: Vec<bool>,
    crash_at: Vec<Option<u64>>,
    rushing: bool,
    trace_capacity: Option<usize>,
    link_policy: Option<Box<dyn LinkPolicy>>,
}

impl<M: crate::actor::Message> fmt::Debug for SimBuilder<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBuilder")
            .field("n", &self.actors.len())
            .field("rushing", &self.rushing)
            .finish_non_exhaustive()
    }
}

impl<M: crate::actor::Message> SimBuilder<M> {
    /// Starts a builder for a system of the given actors.
    ///
    /// Actors must be supplied in identity order `p0, p1, …` (validated by
    /// [`SimBuilder::build`]).
    pub fn new(actors: Vec<Box<dyn AnyActor<Msg = M>>>) -> Self {
        let n = actors.len();
        SimBuilder {
            actors,
            corrupt: vec![false; n],
            crash_at: vec![None; n],
            rushing: true,
            trace_capacity: None,
            link_policy: None,
        }
    }

    /// Marks `id` as Byzantine: its traffic is excluded from protocol
    /// complexity and it is scheduled in the rushing wave.
    pub fn corrupt(mut self, id: ProcessId) -> Self {
        self.corrupt[id.index()] = true;
        self
    }

    /// Enables or disables rushing delivery for Byzantine actors
    /// (enabled by default).
    pub fn rushing(mut self, rushing: bool) -> Self {
        self.rushing = rushing;
        self
    }

    /// Records up to `capacity` message-delivery events for post-run
    /// inspection (see [`crate::trace::Trace`]). Off by default.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Injects link faults: every non-self point-to-point delivery asks
    /// `policy` for its [`LinkFate`] — dropped messages vanish, delayed
    /// messages arrive `k` rounds past the synchrony bound. While a
    /// policy is installed, per-link delivery counters are recorded into
    /// [`Metrics::per_link`]. Off by default (reliable links, zero
    /// overhead).
    ///
    /// Word accounting is unaffected: the paper counts words *sent* by
    /// correct processes, and a dropped message was still sent.
    pub fn link_policy(mut self, policy: Box<dyn LinkPolicy>) -> Self {
        self.link_policy = Some(policy);
        self
    }

    /// Crashes `id` at the start of `round`: the actor runs the honest
    /// protocol **with honest scheduling** until then, and is silenced by
    /// the network from `round` on. This models the adaptive adversary
    /// corrupting a process mid-run by crashing it — unlike wrapping a
    /// Byzantine actor, the pre-crash behaviour is exactly a correct
    /// process's (it is not rushed).
    ///
    /// Words the process sends before its crash round count toward
    /// correct-process complexity (it *was* correct when it sent them);
    /// the process is excluded from termination detection.
    pub fn crash_at(mut self, id: ProcessId, round: u64) -> Self {
        self.crash_at[id.index()] = Some(round);
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the actors' ids are not exactly `p0..p(n-1)` in order —
    /// that is a harness bug, not a runtime condition.
    pub fn build(self) -> Simulation<M> {
        let n = self.actors.len();
        assert!(n > 0, "simulation needs at least one actor");
        for (i, a) in self.actors.iter().enumerate() {
            assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
        }
        Simulation {
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            actors: self.actors,
            corrupt: self.corrupt,
            crash_at: self.crash_at,
            rushing: self.rushing,
            round: Round(0),
            metrics: Metrics::default(),
            trace: self.trace_capacity.map(crate::trace::Trace::with_capacity),
            link_policy: self.link_policy,
            delayed: BTreeMap::new(),
        }
    }
}

/// A deterministic lockstep simulation of `n` processes.
pub struct Simulation<M: crate::actor::Message> {
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    corrupt: Vec<bool>,
    inboxes: Vec<Vec<Envelope<M>>>,
    crash_at: Vec<Option<u64>>,
    rushing: bool,
    round: Round,
    metrics: Metrics,
    trace: Option<crate::trace::Trace>,
    link_policy: Option<Box<dyn LinkPolicy>>,
    /// Fault-delayed messages, keyed by the round in which they surface.
    delayed: BTreeMap<u64, Vec<(usize, Envelope<M>)>>,
}

impl<M: crate::actor::Message> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.actors.len())
            .field("round", &self.round)
            .finish_non_exhaustive()
    }
}

impl<M: crate::actor::Message> Simulation<M> {
    /// System size.
    pub fn n(&self) -> usize {
        self.actors.len()
    }

    /// The round about to be executed.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace, if enabled via [`SimBuilder::trace`].
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Whether `id` was marked Byzantine.
    pub fn is_corrupt(&self, id: ProcessId) -> bool {
        self.corrupt[id.index()]
    }

    /// Immutable view of an actor, for post-run inspection.
    ///
    /// # Examples
    ///
    /// Downcast to the concrete protocol type:
    ///
    /// ```ignore
    /// let bb: &BbProcess<u64> = sim.actor(ProcessId(0)).as_any().downcast_ref().unwrap();
    /// ```
    pub fn actor(&self, id: ProcessId) -> &dyn AnyActor<Msg = M> {
        self.actors[id.index()].as_ref()
    }

    /// Executes a single synchronous round.
    pub fn step(&mut self) {
        let n = self.actors.len();
        let round = self.round;
        // Fault-delayed messages surface at the start of their due round.
        if let Some(due) = self.delayed.remove(&round.as_u64()) {
            for (to, env) in due {
                self.metrics.link_mut(env.from, ProcessId(to as u32)).delivered += 1;
                self.inboxes[to].push(env);
            }
        }
        let inboxes = std::mem::replace(&mut self.inboxes, (0..n).map(|_| Vec::new()).collect());
        let mut rushed: Vec<Vec<Envelope<M>>> = (0..n).map(|_| Vec::new()).collect();

        // Wave 1: correct actors (plus everyone when rushing is off).
        let wave1: Vec<usize> = (0..n).filter(|&i| !self.rushing || !self.corrupt[i]).collect();
        let wave2: Vec<usize> = (0..n).filter(|&i| self.rushing && self.corrupt[i]).collect();

        for &i in &wave1 {
            if self.crash_at[i].is_some_and(|r| round.as_u64() >= r) {
                continue; // network-level crash: silent from its crash round
            }
            let mut ctx = RoundCtx::new(round, ProcessId(i as u32), n, &inboxes[i]);
            self.actors[i].on_round(&mut ctx);
            let out = ctx.take_outbox();
            self.dispatch(i, out, &mut rushed);
        }
        // Wave 2: rushing Byzantine actors see this round's correct
        // traffic addressed to them immediately.
        for &i in &wave2 {
            // `self.inboxes[i]` currently holds next-round deliveries made
            // by wave 1; swap them out, build the rushed view, and restore.
            let next_round_so_far = std::mem::take(&mut self.inboxes[i]);
            let mut view: Vec<Envelope<M>> = inboxes[i].clone();
            view.append(&mut rushed[i]);
            let mut ctx = RoundCtx::new(round, ProcessId(i as u32), n, &view);
            self.actors[i].on_round(&mut ctx);
            let out = ctx.take_outbox();
            self.inboxes[i] = next_round_so_far;
            self.dispatch(i, out, &mut rushed);
        }
        // Anything rushed to a Byzantine actor was consumed in-round and
        // must not be redelivered; rushed messages addressed to correct
        // actors do not exist (dispatch only rushes to corrupt targets).
        self.round = round.next();
        self.metrics.rounds = self.round.as_u64();
    }

    fn dispatch(&mut self, from: usize, out: Vec<(Dest, M)>, rushed: &mut [Vec<Envelope<M>>]) {
        let n = self.actors.len();
        let sender = ProcessId(from as u32);
        let sender_correct = !self.corrupt[from];
        for (dest, msg) in out {
            let words = msg.words().max(1);
            let sigs = msg.constituent_sigs();
            let bytes = msg.wire_bytes();
            let component = msg.component();
            let session = msg.session();
            match dest {
                Dest::To(p) => {
                    if p.index() >= n {
                        continue; // ill-formed destination from a Byzantine actor
                    }
                    if p != sender {
                        self.metrics.record(
                            sender,
                            sender_correct,
                            component,
                            session,
                            self.round.as_u64(),
                            words,
                            sigs,
                            bytes,
                        );
                        self.record_trace(sender, sender_correct, p, component, words);
                    }
                    self.deliver(sender, sender_correct, p, msg, rushed);
                }
                Dest::All => {
                    for q in 0..n {
                        let p = ProcessId(q as u32);
                        if p != sender {
                            self.metrics.record(
                                sender,
                                sender_correct,
                                component,
                                session,
                                self.round.as_u64(),
                                words,
                                sigs,
                                bytes,
                            );
                            self.record_trace(sender, sender_correct, p, component, words);
                        }
                        self.deliver(sender, sender_correct, p, msg.clone(), rushed);
                    }
                }
            }
        }
    }

    fn record_trace(
        &mut self,
        from: ProcessId,
        sender_correct: bool,
        to: ProcessId,
        component: &'static str,
        words: u64,
    ) {
        let round = self.round.as_u64();
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEvent {
                round,
                from,
                to,
                component: component.to_string(),
                words,
                sender_correct,
            });
        }
    }

    fn deliver(
        &mut self,
        from: ProcessId,
        from_correct: bool,
        to: ProcessId,
        msg: M,
        rushed: &mut [Vec<Envelope<M>>],
    ) {
        let env = Envelope { from, msg };
        // Self-delivery is process memory, not a link: never faulted, never
        // counted in per-link stats.
        if from != to {
            if let Some(policy) = &mut self.link_policy {
                let fate = policy.fate(Link { from, to }, self.round.as_u64());
                let bytes = env.msg.wire_bytes();
                let stats = self.metrics.link_mut(from, to);
                stats.sent += 1;
                stats.bytes += bytes;
                match fate {
                    LinkFate::Deliver => stats.delivered += 1,
                    LinkFate::Drop => {
                        stats.dropped += 1;
                        return;
                    }
                    LinkFate::DelayRounds(k) => {
                        stats.delayed += 1;
                        let due = self.round.as_u64() + 1 + k;
                        self.delayed.entry(due).or_default().push((to.index(), env));
                        return;
                    }
                }
            }
        }
        if self.rushing && self.corrupt[to.index()] && from_correct {
            // Rushing: corrupt recipients of correct traffic see it this
            // round (wave 2) instead of the next.
            rushed[to.index()].push(env);
        } else {
            self.inboxes[to.index()].push(env);
        }
    }

    /// Runs until every **correct** actor reports done, or the budget runs
    /// out.
    ///
    /// # Errors
    ///
    /// [`RunError::ExceededMaxRounds`] if correct actors are not all done
    /// within `max_rounds` — in a correct protocol under a valid adversary
    /// this indicates a termination bug.
    pub fn run_until_done(&mut self, max_rounds: u64) -> Result<(), RunError> {
        for _ in 0..max_rounds {
            if self.correct_done() {
                return Ok(());
            }
            self.step();
        }
        if self.correct_done() {
            Ok(())
        } else {
            Err(RunError::ExceededMaxRounds { max_rounds })
        }
    }

    /// Runs exactly `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Whether all correct actors report done (crash-scheduled actors are
    /// excluded: they count as faulty).
    pub fn correct_done(&self) -> bool {
        self.actors
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.corrupt[*i] && self.crash_at[*i].is_none())
            .all(|(_, a)| a.done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Message;

    #[derive(Clone, Debug)]
    enum Ping {
        Hello(u64),
    }
    impl Message for Ping {
        fn words(&self) -> u64 {
            2
        }
        fn constituent_sigs(&self) -> u64 {
            1
        }
        fn component(&self) -> &'static str {
            "ping"
        }
    }

    /// Broadcasts once in round 0, then records everything it hears.
    struct Chatter {
        id: ProcessId,
        heard: Vec<(ProcessId, u64)>,
        rounds_seen: u64,
    }

    impl Actor for Chatter {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            self.rounds_seen += 1;
            if ctx.round() == Round(0) {
                ctx.broadcast(Ping::Hello(self.id.0 as u64));
            }
            for e in ctx.inbox() {
                let Ping::Hello(v) = e.msg;
                self.heard.push((e.from, v));
            }
        }
        fn done(&self) -> bool {
            self.heard.len() >= 3
        }
    }

    fn chatters(n: usize) -> Vec<Box<dyn AnyActor<Msg = Ping>>> {
        (0..n)
            .map(|i| {
                Box::new(Chatter { id: ProcessId(i as u32), heard: vec![], rounds_seen: 0 })
                    as Box<dyn AnyActor<Msg = Ping>>
            })
            .collect()
    }

    #[test]
    fn broadcast_delivers_next_round_to_everyone() {
        let mut sim = SimBuilder::new(chatters(3)).build();
        sim.step();
        sim.step();
        for i in 0..3u32 {
            let c: &Chatter = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            assert_eq!(c.heard.len(), 3, "p{i} should hear all 3 broadcasts (incl. self)");
        }
    }

    #[test]
    fn words_exclude_self_delivery() {
        let mut sim = SimBuilder::new(chatters(3)).build();
        sim.step();
        // 3 broadcasts × 2 remote recipients × 2 words.
        assert_eq!(sim.metrics().correct.words, 12);
        assert_eq!(sim.metrics().correct.messages, 6);
        assert_eq!(sim.metrics().correct.constituent_sigs, 6);
        assert_eq!(sim.metrics().by_component["ping"].words, 12);
    }

    #[test]
    fn corrupt_words_counted_separately() {
        let mut sim = SimBuilder::new(chatters(3)).corrupt(ProcessId(1)).build();
        sim.step();
        assert_eq!(sim.metrics().correct.words, 8); // 2 correct broadcasters × 2 × 2
        assert_eq!(sim.metrics().byzantine.words, 4);
    }

    #[test]
    fn run_until_done_stops_early() {
        let mut sim = SimBuilder::new(chatters(3)).build();
        sim.run_until_done(100).unwrap();
        assert_eq!(sim.round(), Round(2));
    }

    #[test]
    fn run_until_done_errors_on_stall() {
        // One actor can never hear 3 messages in a 1-process system.
        let mut sim = SimBuilder::new(chatters(1)).build();
        let err = sim.run_until_done(5).unwrap_err();
        assert_eq!(err, RunError::ExceededMaxRounds { max_rounds: 5 });
    }

    /// A Byzantine echoer that, under rushing, can echo a correct
    /// process's round-r message already in round r.
    struct RushEcho {
        id: ProcessId,
        echoed_at: Option<u64>,
    }
    impl Actor for RushEcho {
        type Msg = Ping;
        fn id(&self) -> ProcessId {
            self.id
        }
        fn on_round(&mut self, ctx: &mut RoundCtx<'_, Ping>) {
            if self.echoed_at.is_none() && !ctx.inbox().is_empty() {
                self.echoed_at = Some(ctx.round().as_u64());
            }
        }
    }

    #[test]
    fn rushing_delivers_in_round() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Chatter { id: ProcessId(0), heard: vec![], rounds_seen: 0 }),
            Box::new(RushEcho { id: ProcessId(1), echoed_at: None }),
        ];
        let mut sim = SimBuilder::new(actors).corrupt(ProcessId(1)).build();
        sim.step();
        let e: &RushEcho = sim.actor(ProcessId(1)).as_any().downcast_ref().unwrap();
        assert_eq!(e.echoed_at, Some(0), "rushing adversary sees round-0 traffic in round 0");
    }

    #[test]
    fn without_rushing_delivery_is_next_round() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Chatter { id: ProcessId(0), heard: vec![], rounds_seen: 0 }),
            Box::new(RushEcho { id: ProcessId(1), echoed_at: None }),
        ];
        let mut sim = SimBuilder::new(actors).corrupt(ProcessId(1)).rushing(false).build();
        sim.step();
        sim.step();
        let e: &RushEcho = sim.actor(ProcessId(1)).as_any().downcast_ref().unwrap();
        assert_eq!(e.echoed_at, Some(1));
    }

    #[test]
    fn rushed_messages_not_redelivered() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> = vec![
            Box::new(Chatter { id: ProcessId(0), heard: vec![], rounds_seen: 0 }),
            Box::new(Chatter { id: ProcessId(1), heard: vec![], rounds_seen: 0 }),
        ];
        let mut sim = SimBuilder::new(actors).corrupt(ProcessId(1)).build();
        sim.step();
        sim.step();
        sim.step();
        let byz: &Chatter = sim.actor(ProcessId(1)).as_any().downcast_ref().unwrap();
        // p1 hears p0's broadcast once (rushed, round 0) and its own once
        // (self-delivery, round 1) — no duplicates.
        assert_eq!(byz.heard.len(), 2);
    }

    #[test]
    #[should_panic(expected = "actor 0 has id")]
    fn build_validates_ids() {
        let actors: Vec<Box<dyn AnyActor<Msg = Ping>>> =
            vec![Box::new(RushEcho { id: ProcessId(5), echoed_at: None })];
        let _ = SimBuilder::new(actors).build();
    }

    #[test]
    fn link_policy_drops_are_counted_and_not_delivered() {
        use crate::faults::{Link, LinkFate};
        // Mute p1's outbound links; everything else is reliable.
        let policy = |l: Link, _r: u64| {
            if l.from == ProcessId(1) {
                LinkFate::Drop
            } else {
                LinkFate::Deliver
            }
        };
        let mut sim = SimBuilder::new(chatters(3)).link_policy(Box::new(policy)).build();
        sim.step();
        sim.step();
        for i in [0u32, 2] {
            let c: &Chatter = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            // Hears itself and the other unmuted chatter, not p1.
            assert_eq!(c.heard.len(), 2, "p{i} must not hear muted p1");
        }
        let p1: &Chatter = sim.actor(ProcessId(1)).as_any().downcast_ref().unwrap();
        assert_eq!(p1.heard.len(), 3, "inbound links to p1 are intact");
        let m = sim.metrics();
        assert_eq!(m.link(ProcessId(1), ProcessId(0)).dropped, 1);
        assert_eq!(m.link(ProcessId(1), ProcessId(0)).delivered, 0);
        assert_eq!(m.link(ProcessId(0), ProcessId(1)).delivered, 1);
        // Words still count the sends: drops do not reduce the paper's
        // sent-word complexity.
        assert_eq!(m.correct.words, 12);
    }

    #[test]
    fn link_policy_delay_arrives_late() {
        use crate::faults::{Link, LinkFate};
        let policy = |l: Link, _r: u64| {
            if l.from == ProcessId(0) && l.to == ProcessId(1) {
                LinkFate::DelayRounds(2)
            } else {
                LinkFate::Deliver
            }
        };
        let mut sim = SimBuilder::new(chatters(2)).link_policy(Box::new(policy)).build();
        sim.run_rounds(2);
        let p1: &Chatter = sim.actor(ProcessId(1)).as_any().downcast_ref().unwrap();
        assert_eq!(p1.heard.len(), 1, "only self-delivery after 2 rounds");
        sim.run_rounds(2); // delayed message sent in r0 surfaces in r3
        let p1: &Chatter = sim.actor(ProcessId(1)).as_any().downcast_ref().unwrap();
        assert_eq!(p1.heard.len(), 2);
        assert_eq!(sim.metrics().link(ProcessId(0), ProcessId(1)).delayed, 1);
        assert_eq!(sim.metrics().link(ProcessId(0), ProcessId(1)).delivered, 1);
    }

    #[test]
    fn seeded_policy_runs_reproduce_exactly() {
        let run = || {
            let mut sim = SimBuilder::new(chatters(3))
                .link_policy(Box::new(crate::faults::BernoulliDrop::new(99, 0.5)))
                .build();
            sim.run_rounds(3);
            (sim.metrics().per_link.clone(), sim.metrics().correct.words)
        };
        assert_eq!(run(), run());
    }
}
