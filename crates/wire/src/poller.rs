//! Minimal readiness layer: `poll(2)` plus a self-wake pipe.
//!
//! The reactor ([`crate::reactor`]) drives every socket of a mesh from
//! one thread, which needs two primitives the standard library does not
//! expose: *"sleep until any of these descriptors is readable/writable
//! or a timeout elapses"* and *"wake that sleep from another thread"*.
//! Both are built here from the POSIX `poll(2)` entry point — already
//! linked into every Rust binary through libstd's platform layer, so no
//! new crate dependency is needed — and a nonblocking
//! [`std::os::unix::net::UnixStream`] pair.
//!
//! `poll(2)` rather than `epoll`: the set is rebuilt per iteration from
//! the link table anyway (link states change events between iterations),
//! mesh fan-in is at most `2(n-1) + 2` descriptors, and `poll` is the
//! one readiness call with identical semantics on every Unix.
//!
//! This module is the only place in the crate allowed to use `unsafe`
//! (the three `extern "C"` calls); the crate root is
//! `#![deny(unsafe_code)]` with the allowance scoped to exactly here.

use std::io;
#[cfg(unix)]
use std::io::{Read, Write};
#[cfg(unix)]
use std::os::unix::io::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

/// "Readable" readiness event bit (POSIX `POLLIN`).
pub const POLLIN: i16 = 0x001;
/// "Writable" readiness event bit (POSIX `POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition result bit (POSIX `POLLERR`, result-only).
pub const POLLERR: i16 = 0x008;
/// Hangup result bit (POSIX `POLLHUP`, result-only).
pub const POLLHUP: i16 = 0x010;
/// Invalid-descriptor result bit (POSIX `POLLNVAL`, result-only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a poll set, layout-compatible with `struct pollfd`.
///
/// A negative `fd` is skipped by the kernel (its `revents` stays 0) —
/// the portable way to keep slot indices stable while a link has no
/// live socket.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events` (an OR of [`POLLIN`] /
    /// [`POLLOUT`]).
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// An entry the kernel ignores (negative descriptor).
    pub fn unused() -> Self {
        PollFd { fd: -1, events: 0, revents: 0 }
    }

    /// Readable, or in an error/hangup state a read will surface.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Writable, or in an error/hangup state a write will surface.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Any readiness or error condition at all.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::PollFd;
    use core::ffi::{c_int, c_ulong};

    /// `rlimit` as declared by every 64-bit Unix libc this workspace
    /// targets (`rlim_t` = unsigned 64-bit).
    #[repr(C)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub const RLIMIT_NOFILE: c_int = 8;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    pub fn sys_poll(fds: &mut [PollFd], timeout_ms: c_int) -> c_int {
        // SAFETY: `PollFd` is `#[repr(C)]` and layout-compatible with
        // `struct pollfd`; the pointer/length pair describes exactly the
        // caller's slice, which outlives the call.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) }
    }

    pub fn sys_getrlimit(lim: &mut RLimit) -> c_int {
        // SAFETY: `lim` is a valid, writable `#[repr(C)]` rlimit.
        unsafe { getrlimit(RLIMIT_NOFILE, lim) }
    }

    pub fn sys_setrlimit(lim: &RLimit) -> c_int {
        // SAFETY: `lim` is a valid `#[repr(C)]` rlimit for the call's
        // duration.
        unsafe { setrlimit(RLIMIT_NOFILE, lim) }
    }
}

/// Blocks until at least one entry is ready or `timeout` elapses.
/// Returns the number of ready entries (0 on timeout); `EINTR` is
/// reported as a plain timeout so callers just re-loop.
#[cfg(unix)]
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    // Round sub-millisecond timeouts *up*: rounding down would turn a
    // short timer sleep into a busy spin.
    let mut ms = timeout.as_millis();
    if Duration::from_millis(ms as u64) < timeout {
        ms += 1;
    }
    let ms = ms.min(60_000) as i32;
    let rc = sys::sys_poll(fds, ms);
    if rc < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(rc as usize)
}

/// Portability fallback: without a readiness syscall, claim every entry
/// ready after a short pacing sleep and let the nonblocking I/O calls
/// report `WouldBlock` themselves. Functionally correct, just a ~1 ms
/// duty cycle instead of a real sleep.
#[cfg(not(unix))]
pub fn poll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    std::thread::sleep(timeout.min(Duration::from_millis(1)));
    for f in fds.iter_mut() {
        f.revents = f.events;
    }
    Ok(fds.len())
}

/// Best-effort raise of this process's open-file-descriptor limit to at
/// least `want`, returning the resulting soft limit. A full mesh of `n`
/// in-process peers holds `2n(n-1)` sockets, which outgrows default
/// limits near n ≈ 100; large-n tests call this first and size
/// themselves to what they actually got. Raising the *hard* limit is
/// attempted too (succeeds only with privilege) before settling for
/// `min(want, hard)`.
#[cfg(unix)]
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = sys::RLimit { cur: 0, max: 0 };
    if sys::sys_getrlimit(&mut lim) != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    if lim.max < want {
        let privileged = sys::RLimit { cur: want, max: want };
        if sys::sys_setrlimit(&privileged) == 0 {
            return want;
        }
    }
    let capped = sys::RLimit { cur: want.min(lim.max), max: lim.max };
    if sys::sys_setrlimit(&capped) == 0 {
        capped.cur
    } else {
        lim.cur
    }
}

/// Portability fallback: no per-process descriptor limit to manage.
#[cfg(not(unix))]
pub fn raise_nofile_limit(_want: u64) -> u64 {
    u64::MAX
}

/// The sending half of a wake pipe: any thread holding a clone can
/// interrupt the reactor's [`poll`] sleep.
#[derive(Clone)]
pub struct WakeHandle {
    #[cfg(unix)]
    tx: Arc<UnixStream>,
    #[cfg(not(unix))]
    _private: Arc<()>,
}

impl WakeHandle {
    /// Interrupts the paired [`WakeFd`]'s poll. Never blocks: a full
    /// pipe buffer means a wake is already pending, which is all a wake
    /// means.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            let _ = (&*self.tx).write(&[1]);
        }
    }
}

/// The receiving half of a wake pipe, owned by the reactor and entered
/// into every poll set.
pub struct WakeFd {
    #[cfg(unix)]
    rx: UnixStream,
}

impl WakeFd {
    /// Raw descriptor for the poll set (`-1` on platforms without one —
    /// [`PollFd`] entries with a negative fd are skipped).
    pub fn fd(&self) -> i32 {
        #[cfg(unix)]
        {
            self.rx.as_raw_fd()
        }
        #[cfg(not(unix))]
        {
            -1
        }
    }

    /// Discards every pending wake byte.
    pub fn drain(&mut self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            while matches!(self.rx.read(&mut buf), Ok(k) if k > 0) {}
        }
    }
}

/// Creates a connected (sender, receiver) wake pair, both nonblocking.
pub fn wake_pair() -> io::Result<(WakeHandle, WakeFd)> {
    #[cfg(unix)]
    {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((WakeHandle { tx: Arc::new(tx) }, WakeFd { rx }))
    }
    #[cfg(not(unix))]
    {
        Ok((WakeHandle { _private: Arc::new(()) }, WakeFd {}))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn wake_interrupts_poll_and_drains() {
        let (tx, mut rx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        // No wake pending: times out with nothing ready.
        assert_eq!(poll(&mut fds, Duration::from_millis(5)).unwrap(), 0);
        assert!(!fds[0].ready());
        tx.wake();
        tx.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Duration::from_secs(5)).unwrap(), 1);
        assert!(fds[0].readable());
        rx.drain();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll(&mut fds, Duration::from_millis(5)).unwrap(), 0);
    }

    #[test]
    fn unused_entries_are_skipped() {
        let mut fds = [PollFd::unused()];
        assert_eq!(poll(&mut fds, Duration::from_millis(1)).unwrap(), 0);
        assert!(!fds[0].ready());
    }

    #[test]
    fn nofile_limit_reports_something_sane() {
        let got = raise_nofile_limit(64);
        assert!(got >= 64, "any Unix grants at least 64 descriptors, got {got}");
    }
}
