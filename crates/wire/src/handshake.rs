//! Versioned link handshake.
//!
//! Before any protocol traffic, each side of a TCP link sends one
//! [`Hello`] frame and validates the peer's. The hello pins down four
//! things a link must agree on before a single protocol word flows:
//!
//! | field | rejects |
//! |-------|---------|
//! | `version` | peers built against an incompatible wire format |
//! | `id` | impersonation of a different slot, out-of-range identities |
//! | `config_digest` | peers configured with different `(n, t, quorum, session)` |
//! | `domain` | traffic from a stale cluster run still bound to the same ports |
//!
//! The dialer (client) sends first; the acceptor (server) validates and
//! only then answers with its own hello, so a rejected client learns
//! nothing but a closed connection while the server logs the structured
//! [`WireError`]. **Version policy:** [`PROTOCOL_VERSION`] bumps on any
//! change to the frame layout, the hello fields, or any message codec —
//! there is no cross-version negotiation; mismatched peers refuse to
//! link.

use crate::error::WireError;
use crate::frame::{read_frame, write_frame};
use meba_core::SystemConfig;
use meba_crypto::{DecodeError, Decoder, Digest, Encoder, ProcessId, WireCodec};
use std::io::{Read, Write};

/// Wire-format version. Bumped on any codec or framing change.
pub const PROTOCOL_VERSION: u32 = 1;

/// The first (and only) handshake frame each side sends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Sender's wire-format version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Sender's process identity.
    pub id: ProcessId,
    /// Digest of the sender's system configuration ([`config_digest`]).
    pub config_digest: Digest,
    /// Cluster-run domain tag: both sides of a link must come from the
    /// same run. [`crate::run_tcp_cluster`] derives it per invocation.
    pub domain: u64,
}

impl WireCodec for Hello {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u32(self.version);
        enc.put_id(self.id);
        enc.put_digest(&self.config_digest);
        enc.put_u64(self.domain);
    }

    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Hello {
            version: dec.get_u32()?,
            id: dec.get_id()?,
            config_digest: dec.get_digest()?,
            domain: dec.get_u64()?,
        })
    }
}

/// Canonical digest of the configuration facts a link must agree on:
/// `n`, `t`, the quorum threshold, and the session id.
pub fn config_digest(cfg: &SystemConfig) -> Digest {
    let mut enc = Encoder::new();
    enc.put_u64(cfg.n() as u64);
    enc.put_u64(cfg.t() as u64);
    enc.put_u64(cfg.quorum() as u64);
    enc.put_u64(cfg.session());
    Digest::of(&enc.into_bytes())
}

/// Validates a received hello against ours. `expect_peer` pins the
/// identity when the caller dialed a specific slot; acceptors pass
/// `None` and only range-check. Shared with the reactor's buffered
/// (nonblocking) handshake, which cannot use the blocking
/// [`client_handshake`]/[`server_handshake`] entry points.
pub(crate) fn validate(
    ours: &Hello,
    theirs: &Hello,
    expect_peer: Option<ProcessId>,
    n: usize,
) -> Result<(), WireError> {
    if theirs.version != ours.version {
        return Err(WireError::VersionMismatch { ours: ours.version, theirs: theirs.version });
    }
    if theirs.config_digest != ours.config_digest {
        return Err(WireError::ConfigMismatch {
            ours: ours.config_digest,
            theirs: theirs.config_digest,
        });
    }
    if theirs.domain != ours.domain {
        return Err(WireError::DomainMismatch { ours: ours.domain, theirs: theirs.domain });
    }
    if theirs.id.index() >= n || theirs.id == ours.id {
        return Err(WireError::IdentityInvalid { got: theirs.id, n });
    }
    if let Some(expected) = expect_peer {
        if theirs.id != expected {
            return Err(WireError::PeerMismatch { expected, got: theirs.id });
        }
    }
    Ok(())
}

/// Dialer side: send our hello, then validate the acceptor's reply.
/// Returns the peer's hello on success.
pub fn client_handshake<S: Read + Write>(
    stream: &mut S,
    ours: &Hello,
    expect_peer: ProcessId,
    n: usize,
) -> Result<Hello, WireError> {
    write_frame(stream, &ours.to_wire_bytes())?;
    let mut reply = Vec::new();
    read_frame(stream, &mut reply)?;
    let theirs = Hello::from_wire_bytes(&reply)?;
    validate(ours, &theirs, Some(expect_peer), n)?;
    Ok(theirs)
}

/// Acceptor side: read the dialer's hello, validate it, and only then
/// answer with ours. A rejected dialer sees a closed connection; the
/// structured error stays with the acceptor.
pub fn server_handshake<S: Read + Write>(
    stream: &mut S,
    ours: &Hello,
    n: usize,
) -> Result<Hello, WireError> {
    let mut first = Vec::new();
    read_frame(stream, &mut first)?;
    let theirs = Hello::from_wire_bytes(&first)?;
    validate(ours, &theirs, None, n)?;
    write_frame(stream, &ours.to_wire_bytes())?;
    Ok(theirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello(id: u32, session: u64, domain: u64) -> (Hello, SystemConfig) {
        let cfg = SystemConfig::new(5, session).unwrap();
        let h = Hello {
            version: PROTOCOL_VERSION,
            id: ProcessId(id),
            config_digest: config_digest(&cfg),
            domain,
        };
        (h, cfg)
    }

    #[test]
    fn hello_round_trips() {
        let (h, _) = hello(3, 9, 0xd0);
        assert_eq!(Hello::from_wire_bytes(&h.to_wire_bytes()).unwrap(), h);
    }

    #[test]
    fn config_digest_separates_configurations() {
        let a = config_digest(&SystemConfig::new(5, 1).unwrap());
        let b = config_digest(&SystemConfig::new(7, 1).unwrap());
        let c = config_digest(&SystemConfig::new(5, 2).unwrap());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, config_digest(&SystemConfig::new(5, 1).unwrap()));
    }

    #[test]
    fn validate_rejects_each_field() {
        let (ours, _) = hello(0, 1, 7);
        let (peer, _) = hello(1, 1, 7);
        assert!(validate(&ours, &peer, Some(ProcessId(1)), 5).is_ok());

        let mut bad = peer.clone();
        bad.version = 2;
        assert!(matches!(
            validate(&ours, &bad, None, 5),
            Err(WireError::VersionMismatch { ours: 1, theirs: 2 })
        ));

        let (bad_cfg, _) = hello(1, 99, 7);
        assert!(matches!(
            validate(&ours, &bad_cfg, None, 5),
            Err(WireError::ConfigMismatch { .. })
        ));

        let (bad_domain, _) = hello(1, 1, 8);
        assert!(matches!(
            validate(&ours, &bad_domain, None, 5),
            Err(WireError::DomainMismatch { ours: 7, theirs: 8 })
        ));

        let (out_of_range, _) = hello(5, 1, 7);
        assert!(matches!(
            validate(&ours, &out_of_range, None, 5),
            Err(WireError::IdentityInvalid { .. })
        ));

        let (self_id, _) = hello(0, 1, 7);
        assert!(matches!(
            validate(&ours, &self_id, None, 5),
            Err(WireError::IdentityInvalid { .. })
        ));

        assert!(matches!(
            validate(&ours, &peer, Some(ProcessId(2)), 5),
            Err(WireError::PeerMismatch { expected: ProcessId(2), got: ProcessId(1) })
        ));
    }
}
