//! Length-prefixed framing over a byte stream.
//!
//! Every message on a wire link travels as one frame: a 4-byte
//! big-endian payload length followed by the payload itself. The length
//! is validated against [`MAX_FRAME_BYTES`] *before* any allocation, so a
//! malicious or corrupted peer cannot make a reader balloon memory by
//! announcing a huge frame.

use crate::error::WireError;
use std::io::{Read, Write};

/// Hard cap on a frame payload (1 MiB).
///
/// Protocol messages are tiny — the word model bounds them by a few
/// hundred bytes (see [`crate::budget`]) — so the cap is purely a
/// robustness guard against garbage length prefixes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one frame (`4-byte BE length ‖ payload`) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { len: payload.len(), max: MAX_FRAME_BYTES });
    }
    let len = u32::try_from(payload.len()).expect("cap fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, enforcing the size cap before allocating.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { len, max: MAX_FRAME_BYTES });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(WireError::PeerClosed)));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = &buf[..];
        match read_frame(&mut r) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_peer_closed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"onl");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::PeerClosed)));
    }

    #[test]
    fn oversized_write_rejected() {
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &big), Err(WireError::FrameTooLarge { .. })));
        assert!(sink.is_empty(), "nothing written for a rejected frame");
    }
}
