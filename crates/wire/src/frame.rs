//! Length-prefixed framing over a byte stream.
//!
//! Every message on a wire link travels as one frame: a 4-byte
//! big-endian payload length followed by the payload itself. The length
//! is validated against [`MAX_FRAME_BYTES`] *before* any allocation, so a
//! malicious or corrupted peer cannot make a reader balloon memory by
//! announcing a huge frame.

use crate::error::WireError;
use std::io::{Read, Write};

/// Hard cap on a frame payload (1 MiB).
///
/// Protocol messages are tiny — the word model bounds them by a few
/// hundred bytes (see [`crate::budget`]) — so the cap is purely a
/// robustness guard against garbage length prefixes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one frame (`4-byte BE length ‖ payload`) and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { len: payload.len(), max: MAX_FRAME_BYTES });
    }
    let len = u32::try_from(payload.len()).expect("cap fits in u32");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame into `payload`, enforcing the size cap before any
/// buffer growth.
///
/// `payload` is cleared and then filled with exactly the frame's bytes;
/// its capacity is reused across calls, so a steady-state read loop
/// performs no allocation once the scratch buffer has grown to the
/// largest frame seen (regression-tested below).
pub fn read_frame<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> Result<(), WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge { len, max: MAX_FRAME_BYTES });
    }
    payload.clear();
    payload.resize(len, 0);
    r.read_exact(payload)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        let mut payload = Vec::new();
        read_frame(&mut r, &mut payload).unwrap();
        assert_eq!(payload, b"hello");
        read_frame(&mut r, &mut payload).unwrap();
        assert_eq!(payload, b"");
        assert!(matches!(read_frame(&mut r, &mut payload), Err(WireError::PeerClosed)));
    }

    #[test]
    fn steady_state_reads_reuse_scratch_capacity() {
        // Regression for the per-frame `vec![0u8; len]`: once the scratch
        // has grown to the largest frame seen, subsequent reads must not
        // reallocate (same backing pointer, same capacity).
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0xabu8; 512]).unwrap();
        for k in 0..32u8 {
            write_frame(&mut wire, &[k; 64]).unwrap();
        }
        let mut r = &wire[..];
        let mut payload = Vec::new();
        read_frame(&mut r, &mut payload).unwrap();
        assert_eq!(payload.len(), 512);
        let (ptr, cap) = (payload.as_ptr(), payload.capacity());
        for k in 0..32u8 {
            read_frame(&mut r, &mut payload).unwrap();
            assert_eq!(payload, [k; 64]);
            assert_eq!(payload.as_ptr(), ptr, "scratch was reallocated");
            assert_eq!(payload.capacity(), cap);
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = &buf[..];
        let mut payload = Vec::new();
        match read_frame(&mut r, &mut payload) {
            Err(WireError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
                assert_eq!(payload.capacity(), 0, "rejected frame must not grow the scratch");
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_peer_closed() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"onl");
        let mut r = &buf[..];
        let mut payload = Vec::new();
        assert!(matches!(read_frame(&mut r, &mut payload), Err(WireError::PeerClosed)));
    }

    #[test]
    fn oversized_write_rejected() {
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut sink = Vec::new();
        assert!(matches!(write_frame(&mut sink, &big), Err(WireError::FrameTooLarge { .. })));
        assert!(sink.is_empty(), "nothing written for a rejected frame");
    }
}
