//! A wall-clock cluster runtime over real loopback TCP.
//!
//! [`run_tcp_cluster`] is the socket twin of [`meba_net::run_cluster`]:
//! the same actor state machines, the same round coordination (thread 0
//! approves rounds, δ-pacing with overrun escalation), the same
//! [`ClusterConfig`] / [`ClusterReport`] surface — but every inter-process
//! message is canonically encoded, framed, and carried over a handshaked
//! [`TcpMesh`] link instead of a crossbeam channel. Word/byte accounting
//! is identical to the other two runtimes (message-level
//! [`Message::wire_bytes`]), and the socket-level reality (frames, frame
//! bytes, reconnects, decode errors) is reported on top in
//! [`TcpClusterReport`].
//!
//! Fault injection happens at the socket edge: a [`SocketPolicy`]
//! (or any [`meba_sim::faults::LinkPolicy`] via
//! [`ClusterConfig::link_policy`]) judges every outbound frame, and the
//! TCP-specific [`SocketFate::Sever`] additionally tears the connection
//! down so the reconnect path is exercised under test.

use crate::handshake::{config_digest, Hello, PROTOCOL_VERSION};
use crate::mesh::{Inbound, MeshConfig, MeshStats, TcpMesh};
use crate::proxy::{LinkPolicyAdapter, SocketFate, SocketPolicy, SocketPolicyFactory};
use crate::WireError;
use meba_core::SystemConfig;
use meba_crypto::{ProcessId, WireCodec};
use meba_net::{
    AbortReason, ActorRebuilder, ClusterConfig, ClusterDiagnostic, ClusterReport, Escalation,
    OverrunAction, ProcessFate,
};
use meba_sim::faults::Link;
use meba_sim::{AnyActor, Dest, Envelope, Message, Metrics, Round, RoundCtx};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// TCP-specific knobs on top of the shared [`ClusterConfig`].
#[derive(Clone)]
pub struct TcpClusterConfig {
    /// The runtime-agnostic configuration (δ, round cap, corrupt set,
    /// link policy, channel capacity, overrun policy) — the same struct
    /// [`meba_net::run_cluster`] takes, so scenarios port unchanged.
    pub cluster: ClusterConfig,
    /// Socket-edge fault injection. Takes precedence over
    /// `cluster.link_policy` when both are set; use this for the
    /// TCP-only [`SocketFate::Sever`].
    pub socket_policy: Option<SocketPolicyFactory>,
    /// Session domain stamped into every handshake. Two clusters with
    /// different domains refuse to link even on the same ports.
    pub domain: u64,
    /// Budget for establishing all `n(n-1)` directed links.
    pub dial_timeout: Duration,
}

impl Default for TcpClusterConfig {
    fn default() -> Self {
        TcpClusterConfig {
            cluster: ClusterConfig::default(),
            socket_policy: None,
            domain: 1,
            dial_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of a TCP cluster run: the runtime-agnostic report plus the
/// socket-level counters summed over all meshes.
pub struct TcpClusterReport<M: Message> {
    /// The same report [`meba_net::run_cluster`] produces — metrics
    /// (words, sigs, bytes, per-link, per-session), rounds, actors,
    /// completion and abort diagnostics.
    pub report: ClusterReport<M>,
    /// Data frames that hit a socket (excludes self-delivery).
    pub frames_sent: u64,
    /// Socket bytes for those frames, including the 4-byte length
    /// prefixes — the realized wire cost next to the model-level
    /// [`meba_sim::Metrics`] byte counters.
    pub socket_bytes: u64,
    /// Successful link re-establishments (severed or failed connections).
    pub reconnects: u64,
    /// Inbound frames rejected by the canonical decoder.
    pub decode_errors: u64,
    /// Inbound connections rejected by the handshake.
    pub handshake_rejects: u64,
}

impl<M: Message> std::fmt::Debug for TcpClusterReport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClusterReport")
            .field("rounds", &self.report.rounds)
            .field("completed", &self.report.completed)
            .field("correct_words", &self.report.metrics.correct.words)
            .field("correct_bytes", &self.report.metrics.correct.bytes)
            .field("frames_sent", &self.frames_sent)
            .field("socket_bytes", &self.socket_bytes)
            .field("reconnects", &self.reconnects)
            .field("decode_errors", &self.decode_errors)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Round coordination, ported from meba-net's channel runtime. The
// machinery is deliberately identical — thread 0 approves rounds, a
// shared pacer owns the deadline schedule, escalation stretches δ — so a
// scenario's timing behaviour does not change when it moves to sockets.
// ---------------------------------------------------------------------

/// One pacing regime: rounds from `from_round` on start at
/// `offset_ns + (r - from_round) · delta_ns` past the cluster epoch.
#[derive(Clone, Copy)]
struct Segment {
    from_round: u64,
    offset_ns: u128,
    delta_ns: u128,
}

/// Deadline schedule shared by all threads; escalations append segments.
struct Pacer {
    epoch: Instant,
    segments: RwLock<Vec<Segment>>,
}

impl Pacer {
    fn new(epoch: Instant, delta: Duration) -> Self {
        let seg = Segment { from_round: 0, offset_ns: 0, delta_ns: delta.as_nanos().max(1) };
        Pacer { epoch, segments: RwLock::new(vec![seg]) }
    }

    fn segment_for(&self, round: u64) -> Segment {
        let segments = self.segments.read();
        *segments.iter().rev().find(|s| s.from_round <= round).unwrap_or(&segments[0])
    }

    fn round_start(&self, round: u64) -> Instant {
        let s = self.segment_for(round);
        let ns = s.offset_ns + u128::from(round - s.from_round) * s.delta_ns;
        self.epoch + Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    fn delta_at(&self, round: u64) -> Duration {
        let ns = self.segment_for(round).delta_ns;
        Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    fn escalate(&self, from_round: u64, new_delta: Duration) {
        let mut segments = self.segments.write();
        let last = *segments.last().expect("pacer always has a segment");
        debug_assert!(from_round >= last.from_round);
        let offset_ns = last.offset_ns + u128::from(from_round - last.from_round) * last.delta_ns;
        segments.push(Segment { from_round, offset_ns, delta_ns: new_delta.as_nanos().max(1) });
    }
}

/// Coordinator's stop verdict, written exactly once.
struct Outcome {
    completed: bool,
    rounds: u64,
    aborted: Option<ClusterDiagnostic>,
}

/// State shared by all cluster threads.
struct Control {
    pacer: Pacer,
    approved: AtomicU64,
    stop_at: AtomicU64,
    outcome: Mutex<Option<Outcome>>,
    overruns: AtomicU64,
    done_flags: Vec<AtomicBool>,
    escalations: Mutex<Vec<Escalation>>,
    metrics: Mutex<Metrics>,
}

impl Control {
    fn record_outcome(&self, outcome: Outcome, stop_at: u64) {
        let mut slot = self.outcome.lock();
        if slot.is_none() {
            *slot = Some(outcome);
        }
        drop(slot);
        self.stop_at.store(stop_at, Ordering::SeqCst);
    }
}

enum Approval {
    Go,
    Stop,
}

struct WorkerConfig {
    max_rounds: u64,
    overrun_window: u32,
    overrun_action: OverrunAction,
    fate: ProcessFate,
}

fn coordinate(
    ctrl: &Control,
    corrupt: &[bool],
    cfg: &WorkerConfig,
    round: u64,
    overruns_seen: &mut u64,
    consecutive_overruns: &mut u32,
) {
    let n = corrupt.len();
    let all_done =
        (0..n).filter(|&j| !corrupt[j]).all(|j| ctrl.done_flags[j].load(Ordering::SeqCst));
    if all_done {
        ctrl.record_outcome(
            Outcome { completed: true, rounds: round + 1, aborted: None },
            round + 1,
        );
        return;
    }
    if round + 1 >= cfg.max_rounds {
        ctrl.record_outcome(
            Outcome { completed: false, rounds: round + 1, aborted: None },
            round + 1,
        );
        return;
    }

    let overruns_now = ctrl.overruns.load(Ordering::Relaxed);
    if overruns_now > *overruns_seen {
        *consecutive_overruns += 1;
    } else {
        *consecutive_overruns = 0;
    }
    *overruns_seen = overruns_now;

    if *consecutive_overruns >= cfg.overrun_window {
        match &cfg.overrun_action {
            OverrunAction::Count => {}
            OverrunAction::Escalate { multiplier, max_delta } => {
                let old_delta = ctrl.pacer.delta_at(round + 1);
                let new_delta = old_delta.saturating_mul((*multiplier).max(2)).min(*max_delta);
                if new_delta > old_delta {
                    ctrl.pacer.escalate(round + 2, new_delta);
                    ctrl.escalations.lock().push(Escalation {
                        at_round: round + 2,
                        old_delta,
                        new_delta,
                    });
                }
                *consecutive_overruns = 0;
            }
            OverrunAction::Abort => {
                ctrl.record_outcome(
                    Outcome {
                        completed: false,
                        rounds: round + 1,
                        aborted: Some(ClusterDiagnostic {
                            reason: AbortReason::SustainedOverruns {
                                consecutive: *consecutive_overruns,
                                window: cfg.overrun_window,
                            },
                            round,
                            overruns: overruns_now,
                            delta: ctrl.pacer.delta_at(round),
                        }),
                    },
                    round + 1,
                );
                return;
            }
        }
    }
    ctrl.approved.store(round + 2, Ordering::SeqCst);
}

fn wait_for_approval(ctrl: &Control, round: u64) -> Approval {
    let stall_after = ctrl.pacer.delta_at(round).saturating_mul(64).max(Duration::from_secs(60));
    let wait_start = Instant::now();
    loop {
        if ctrl.stop_at.load(Ordering::SeqCst) <= round {
            return Approval::Stop;
        }
        if ctrl.approved.load(Ordering::SeqCst) > round {
            return Approval::Go;
        }
        if wait_start.elapsed() > stall_after {
            ctrl.record_outcome(
                Outcome {
                    completed: false,
                    rounds: round,
                    aborted: Some(ClusterDiagnostic {
                        reason: AbortReason::CoordinatorStalled,
                        round,
                        overruns: ctrl.overruns.load(Ordering::Relaxed),
                        delta: ctrl.pacer.delta_at(round),
                    }),
                },
                round,
            );
            return Approval::Stop;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
}

// ---------------------------------------------------------------------
// The TCP cluster proper.
// ---------------------------------------------------------------------

/// Runs `actors` as a wall-clock cluster over loopback TCP until every
/// correct actor is done, the round budget is exhausted, or the overrun
/// policy stops the run. Mirrors [`meba_net::run_cluster`] exactly at
/// the API level; `system` supplies the configuration digest every link
/// handshake must agree on.
///
/// # Errors
///
/// Fails with a [`WireError`] if the mesh cannot be established within
/// [`TcpClusterConfig::dial_timeout`].
///
/// # Panics
///
/// Panics if `actors` is empty, ids are not `p0..p(n-1)` in order, or
/// `actors.len() != system.n()`.
pub fn run_tcp_cluster<M: Message + WireCodec>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    system: &SystemConfig,
    config: TcpClusterConfig,
) -> Result<TcpClusterReport<M>, WireError> {
    run_tcp_cluster_with_recovery(actors, None, system, config)
}

/// [`run_tcp_cluster`] plus crash-recovery: when
/// [`ClusterConfig::process_fate`] marks a process
/// [`ProcessFate::CrashRestart`], that process severs every peer link at
/// the crash round (real TCP teardown — peers observe resets and enter
/// their reconnect loops), discards all in-memory state, and — if a
/// `rebuilder` is supplied — later rejoins with an actor rebuilt from its
/// durable journal, re-handshaking each link on the way back in.
/// Recovery counters land in [`meba_sim::Metrics::recovery`].
///
/// # Errors
///
/// Same as [`run_tcp_cluster`].
///
/// # Panics
///
/// Same as [`run_tcp_cluster`].
pub fn run_tcp_cluster_with_recovery<M: Message + WireCodec>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    system: &SystemConfig,
    config: TcpClusterConfig,
) -> Result<TcpClusterReport<M>, WireError> {
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    assert_eq!(n, system.n(), "actor count must match the system configuration");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }

    // Bind every listener before any mesh dials, so establishment cannot
    // deadlock on ordering.
    let digest = config_digest(system);
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").map_err(WireError::Io)?;
        addrs.push(l.local_addr().map_err(WireError::Io)?);
        listeners.push(l);
    }

    let mut establishers = Vec::with_capacity(n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let hello = Hello {
            version: PROTOCOL_VERSION,
            id: me,
            config_digest: digest,
            domain: config.domain,
        };
        let mut mesh_cfg = MeshConfig::new(me, hello);
        mesh_cfg.inbox_capacity = config.cluster.channel_capacity.max(1);
        mesh_cfg.outbox_capacity = config.cluster.channel_capacity.max(1);
        mesh_cfg.dial_timeout = config.dial_timeout;
        mesh_cfg.reconnect_backoff_cap = config.cluster.reconnect_backoff_cap;
        mesh_cfg.reconnect_jitter = config.cluster.reconnect_jitter;
        let addrs = addrs.clone();
        establishers
            .push(std::thread::spawn(move || TcpMesh::<M>::establish(mesh_cfg, listener, &addrs)));
    }
    let mut meshes = Vec::with_capacity(n);
    let mut first_err = None;
    for h in establishers {
        match h.join().expect("mesh establishment thread panicked") {
            Ok(m) => meshes.push(m),
            Err(e) => first_err = Some(first_err.unwrap_or(e)),
        }
    }
    if let Some(e) = first_err {
        for m in meshes {
            m.shutdown();
        }
        return Err(e);
    }
    meshes.sort_by_key(|m| m.me().index());

    let ctrl = Arc::new(Control {
        pacer: Pacer::new(Instant::now() + Duration::from_millis(5), config.cluster.delta),
        approved: AtomicU64::new(1),
        stop_at: AtomicU64::new(u64::MAX),
        outcome: Mutex::new(None),
        overruns: AtomicU64::new(0),
        done_flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
        escalations: Mutex::new(Vec::new()),
        metrics: Mutex::new(Metrics::default()),
    });
    let corrupt: Arc<Vec<bool>> =
        Arc::new((0..n).map(|i| config.cluster.corrupt.iter().any(|c| c.index() == i)).collect());

    let mut handles = Vec::with_capacity(n);
    for (actor, mesh) in actors.into_iter().zip(meshes) {
        let me = mesh.me();
        let ctrl = ctrl.clone();
        let corrupt = corrupt.clone();
        let policy: Option<Box<dyn SocketPolicy>> =
            match (&config.socket_policy, &config.cluster.link_policy) {
                (Some(f), _) => Some(f(me)),
                (None, Some(f)) => Some(Box::new(LinkPolicyAdapter(f(me)))),
                (None, None) => None,
            };
        let cfg = WorkerConfig {
            max_rounds: config.cluster.max_rounds,
            overrun_window: config.cluster.overrun_window,
            overrun_action: config.cluster.overrun_action.clone(),
            fate: config.cluster.process_fate.as_ref().map_or(ProcessFate::Run, |f| f(me)),
        };
        let rebuilder = rebuilder.clone();
        handles.push(std::thread::spawn(move || {
            run_tcp_process(actor, mesh, policy, rebuilder, ctrl, corrupt, cfg)
        }));
    }

    let mut actors_back: Vec<Box<dyn AnyActor<Msg = M>>> = Vec::with_capacity(n);
    let mut max_round = 0;
    let mut frames_sent = 0;
    let mut socket_bytes = 0;
    let mut reconnects = 0;
    let mut decode_errors = 0;
    let mut handshake_rejects = 0;
    let mut backpressure = 0;
    for h in handles {
        let (actor, rounds, stats) = h.join().expect("cluster thread panicked");
        max_round = max_round.max(rounds);
        let (f, b, r, d, hs, bp) = stats.snapshot();
        frames_sent += f;
        socket_bytes += b;
        reconnects += r;
        decode_errors += d;
        handshake_rejects += hs;
        backpressure += bp;
        actors_back.push(actor);
    }
    actors_back.sort_by_key(|a| a.id().index());

    let ctrl = Arc::try_unwrap(ctrl).unwrap_or_else(|_| panic!("cluster threads still alive"));
    let outcome = ctrl.outcome.into_inner();
    let (completed, rounds, aborted) = match outcome {
        Some(o) => (o.completed, o.rounds, o.aborted),
        None => (false, max_round, None),
    };
    let mut metrics = ctrl.metrics.into_inner();
    metrics.rounds = rounds.max(max_round);
    Ok(TcpClusterReport {
        report: ClusterReport {
            metrics,
            rounds: rounds.max(max_round),
            actors: actors_back,
            completed,
            overruns: ctrl.overruns.into_inner(),
            backpressure,
            escalations: ctrl.escalations.into_inner(),
            aborted,
        },
        frames_sent,
        socket_bytes,
        reconnects,
        decode_errors,
        handshake_rejects,
    })
}

fn run_tcp_process<M: Message + WireCodec>(
    mut actor: Box<dyn AnyActor<Msg = M>>,
    mesh: TcpMesh<M>,
    mut policy: Option<Box<dyn SocketPolicy>>,
    rebuilder: Option<ActorRebuilder<M>>,
    ctrl: Arc<Control>,
    corrupt: Arc<Vec<bool>>,
    cfg: WorkerConfig,
) -> (Box<dyn AnyActor<Msg = M>>, u64, Arc<MeshStats>) {
    let me = mesh.me();
    let n = mesh.n();
    let i = me.index();
    let is_coordinator = i == 0;
    let sender_correct = !corrupt[i];
    // Messages received early (sent_round >= current round) wait here.
    let mut buffer: Vec<Inbound<M>> = Vec::new();
    let mut drained: Vec<Inbound<M>> = Vec::new();
    // Fault-delayed outbound messages, keyed by their transmit round.
    let mut pending: BTreeMap<u64, Vec<(ProcessId, u64, M)>> = BTreeMap::new();
    let mut overruns_seen = 0u64;
    let mut consecutive_overruns = 0u32;
    let mut round = 0u64;
    // Crash-recovery state: `dead` means the process lost its memory and
    // its sockets; the thread keeps pacing (it still coordinates if it is
    // thread 0) but runs no protocol code until rejoin.
    let mut dead = false;
    let mut rejoin_round: Option<u64> = None;

    'rounds: while round < cfg.max_rounds {
        if ctrl.stop_at.load(Ordering::SeqCst) <= round {
            break;
        }
        if !is_coordinator {
            match wait_for_approval(&ctrl, round) {
                Approval::Go => {}
                Approval::Stop => break 'rounds,
            }
        }
        let round_start = ctrl.pacer.round_start(round);
        let now = Instant::now();
        if round_start > now {
            std::thread::sleep(round_start - now);
        }

        if let ProcessFate::CrashRestart { at_round, rejoin_after } = cfg.fate {
            if !dead && rejoin_round.is_none() && round == at_round {
                // Crash: real teardown. Every peer link is severed, so
                // peers observe connection resets and enter their
                // reconnect loops; all volatile state is lost.
                dead = true;
                for p in 0..n {
                    if p != i {
                        mesh.sever(ProcessId(p as u32));
                    }
                }
                buffer.clear();
                pending.clear();
                ctrl.done_flags[i].store(false, Ordering::SeqCst);
                ctrl.metrics.lock().recovery.crash_restarts += 1;
            }
            if let Some(rebuild) =
                rebuilder.as_ref().filter(|_| dead && round >= at_round + rejoin_after)
            {
                // Rejoin: rebuild the actor from its durable journal and
                // fast-forward the lockstep schedule with empty inboxes
                // (the journal already replayed real steps; missed rounds
                // are omissions the help machinery repairs). The severed
                // links re-handshake lazily on the first send/receive.
                let rb = rebuild(me);
                actor = rb.actor;
                {
                    let mut m = ctrl.metrics.lock();
                    m.recovery.replayed_records += rb.replayed_records;
                    m.recovery.journal_fsyncs += rb.journal_fsyncs;
                }
                let empty: Vec<Envelope<M>> = Vec::new();
                for r in 0..round {
                    let mut ctx = RoundCtx::new(Round(r), me, n, &empty);
                    actor.on_round(&mut ctx);
                    drop(ctx.take_outbox());
                }
                dead = false;
                rejoin_round = Some(round);
            }
        }
        if dead {
            // A crashed process has no sockets: drop whatever the mesh
            // threads still surface and run no protocol code.
            mesh.drain_into(&mut drained);
            drained.clear();
            if is_coordinator {
                coordinate(
                    &ctrl,
                    &corrupt,
                    &cfg,
                    round,
                    &mut overruns_seen,
                    &mut consecutive_overruns,
                );
            }
            round += 1;
            continue 'rounds;
        }
        let proc_start = Instant::now();

        // Transmit fault-delayed messages whose release round arrived;
        // they keep their original sent_round, so the recipient sees them
        // `delay` rounds past the synchrony bound.
        if let Some(due) = pending.remove(&round) {
            for (to, sent_round, msg) in due {
                mesh.send(to, sent_round, &msg);
            }
        }

        // Drain the sockets into this round's inbox; record deliveries
        // per link.
        mesh.drain_into(&mut drained);
        buffer.append(&mut drained);
        let mut inbox: Vec<Envelope<M>> = Vec::new();
        let mut keep: Vec<Inbound<M>> = Vec::new();
        {
            let mut metrics = ctrl.metrics.lock();
            for w in buffer.drain(..) {
                if w.sent_round < round {
                    if w.from != me {
                        metrics.link_mut(w.from, me).delivered += 1;
                    }
                    inbox.push(Envelope { from: w.from, msg: w.msg });
                } else {
                    keep.push(w);
                }
            }
        }
        buffer = keep;

        let mut ctx = RoundCtx::new(Round(round), me, n, &inbox);
        actor.on_round(&mut ctx);
        let outbox = ctx.take_outbox();
        for (dest, msg) in outbox {
            let words = msg.words().max(1);
            let sigs = msg.constituent_sigs();
            let bytes = msg.wire_bytes();
            let component = msg.component();
            let session = msg.session();
            let targets: Vec<usize> = match dest {
                Dest::To(p) if p.index() < n => vec![p.index()],
                Dest::To(_) => vec![],
                Dest::All => (0..n).collect(),
            };
            for target in targets {
                if target == i {
                    // Self-delivery: process memory, not a link — no
                    // policy, no per-link stats, no word accounting.
                    mesh.send(me, round, &msg);
                    continue;
                }
                let to = ProcessId(target as u32);
                let fate = match &mut policy {
                    Some(p) => p.fate(Link { from: me, to }, round),
                    None => SocketFate::Forward,
                };
                {
                    let mut metrics = ctrl.metrics.lock();
                    metrics.record(
                        me,
                        sender_correct,
                        component,
                        session,
                        round,
                        words,
                        sigs,
                        bytes,
                    );
                    let stats = metrics.link_mut(me, to);
                    stats.sent += 1;
                    stats.bytes += bytes;
                    match fate {
                        SocketFate::Forward => {}
                        SocketFate::Drop | SocketFate::Sever => stats.dropped += 1,
                        SocketFate::DelayRounds(_) => stats.delayed += 1,
                    }
                }
                match fate {
                    SocketFate::Forward => mesh.send(to, round, &msg),
                    SocketFate::Drop => {}
                    SocketFate::DelayRounds(k) => {
                        pending.entry(round + k).or_default().push((to, round, msg.clone()));
                    }
                    SocketFate::Sever => mesh.sever(to),
                }
            }
        }

        let proc_end = Instant::now();
        let latency_us =
            u64::try_from(proc_end.duration_since(proc_start).as_micros()).unwrap_or(u64::MAX);
        ctrl.metrics.lock().round_latency.record_us(latency_us);
        let deadline = ctrl.pacer.round_start(round + 1);
        if proc_end > deadline {
            ctrl.overruns.fetch_add(1, Ordering::Relaxed);
        }
        ctrl.done_flags[i].store(actor.done(), Ordering::SeqCst);
        if actor.done() {
            if let Some(rj) = rejoin_round.take() {
                ctrl.metrics.lock().recovery.recovery_rounds += round - rj;
            }
        }

        if is_coordinator {
            coordinate(&ctrl, &corrupt, &cfg, round, &mut overruns_seen, &mut consecutive_overruns);
        }
        round += 1;
    }
    let refused = actor.refused_equivocations();
    if refused > 0 {
        ctrl.metrics.lock().recovery.refused_equivocations += refused;
    }
    let stats = mesh.stats().clone();
    mesh.shutdown();
    (actor, round, stats)
}

// ---------------------------------------------------------------------
// Standalone mesh driving (one OS process per peer, no shared control).
// ---------------------------------------------------------------------

/// Pacing for [`drive_mesh`] — the multi-process path, where no shared
/// coordinator exists and each process paces itself from its own epoch.
#[derive(Clone, Copy, Debug)]
pub struct MeshDriveConfig {
    /// Round duration δ. Must dominate cross-process start skew plus
    /// loopback latency for the synchronous abstraction to hold.
    pub delta: Duration,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Extra rounds to keep running after the local actor reports done,
    /// so it can still answer peers' help requests.
    pub linger_rounds: u64,
}

impl Default for MeshDriveConfig {
    fn default() -> Self {
        MeshDriveConfig { delta: Duration::from_millis(20), max_rounds: 10_000, linger_rounds: 8 }
    }
}

/// Drives one actor over an established mesh without a global
/// coordinator: rounds are paced from a local epoch and the run stops
/// [`MeshDriveConfig::linger_rounds`] after the actor reports done (or at
/// `max_rounds`). This is the building block for running a cluster as N
/// separate OS processes — see the `tcp_cluster` example; in-process
/// tests should prefer [`run_tcp_cluster`], whose coordinator gives exact
/// lockstep.
///
/// Returns the rounds executed and the local word/byte metrics.
pub fn drive_mesh<M: Message + WireCodec>(
    mesh: &TcpMesh<M>,
    actor: &mut dyn AnyActor<Msg = M>,
    cfg: &MeshDriveConfig,
) -> (u64, Metrics) {
    let me = mesh.me();
    let n = mesh.n();
    let mut metrics = Metrics::default();
    let mut buffer: Vec<Inbound<M>> = Vec::new();
    let mut drained: Vec<Inbound<M>> = Vec::new();
    let epoch = Instant::now();
    let mut linger = cfg.linger_rounds;
    let mut round = 0u64;
    while round < cfg.max_rounds {
        let start = epoch + cfg.delta.saturating_mul(u32::try_from(round).unwrap_or(u32::MAX));
        let now = Instant::now();
        if start > now {
            std::thread::sleep(start - now);
        }
        mesh.drain_into(&mut drained);
        buffer.append(&mut drained);
        let mut inbox: Vec<Envelope<M>> = Vec::new();
        let mut keep: Vec<Inbound<M>> = Vec::new();
        for w in buffer.drain(..) {
            if w.sent_round < round {
                if w.from != me {
                    metrics.link_mut(w.from, me).delivered += 1;
                }
                inbox.push(Envelope { from: w.from, msg: w.msg });
            } else {
                keep.push(w);
            }
        }
        buffer = keep;

        let mut ctx = RoundCtx::new(Round(round), me, n, &inbox);
        actor.on_round(&mut ctx);
        for (dest, msg) in ctx.take_outbox() {
            let words = msg.words().max(1);
            let sigs = msg.constituent_sigs();
            let bytes = msg.wire_bytes();
            let component = msg.component();
            let session = msg.session();
            let targets: Vec<usize> = match dest {
                Dest::To(p) if p.index() < n => vec![p.index()],
                Dest::To(_) => vec![],
                Dest::All => (0..n).collect(),
            };
            for target in targets {
                let to = ProcessId(target as u32);
                if to != me {
                    metrics.record(me, true, component, session, round, words, sigs, bytes);
                    let stats = metrics.link_mut(me, to);
                    stats.sent += 1;
                    stats.bytes += bytes;
                }
                mesh.send(to, round, &msg);
            }
        }
        round += 1;
        if actor.done() {
            if linger == 0 {
                break;
            }
            linger -= 1;
        } else {
            linger = cfg.linger_rounds;
        }
    }
    metrics.rounds = round;
    (round, metrics)
}
