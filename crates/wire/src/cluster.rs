//! A wall-clock cluster runtime over real loopback TCP.
//!
//! [`run_tcp_cluster`] is the socket twin of [`meba_net::run_cluster`]:
//! the same actor state machines, the same round coordination (thread 0
//! approves rounds, δ-pacing with overrun escalation), the same
//! [`ClusterConfig`] / [`ClusterReport`] surface — but every inter-process
//! message is canonically encoded, framed, and carried over a handshaked
//! [`TcpMesh`] link instead of a crossbeam channel. Word/byte accounting
//! is identical to the other runtimes (message-level
//! [`Message::wire_bytes`]), and the socket-level reality (frames, frame
//! bytes, reconnects, decode errors) is reported on top in
//! [`TcpClusterReport`].
//!
//! Since the engine refactor both runtimes literally share the loop:
//! this module establishes the mesh, wraps it in a [`MeshTransport`],
//! and hands the cluster to [`meba_engine::run_threaded_cluster`] — the
//! identical coordinator, pacer, overrun-escalation, and crash-restart
//! machinery that drives the channel runtime, so a scenario's timing and
//! fate behaviour do not change when it moves to sockets.
//!
//! Fault injection happens at the socket edge: a [`SocketPolicy`]
//! (or any [`meba_sim::faults::LinkPolicy`] via
//! [`ClusterConfig::link_policy`]) judges every outbound frame, and the
//! TCP-specific [`SocketFate::Sever`] additionally tears the connection
//! down so the reconnect path is exercised under test.

use crate::handshake::{config_digest, Hello, PROTOCOL_VERSION};
use crate::mesh::{Inbound, MeshConfig, MeshStats, TcpMesh};
#[allow(unused_imports)] // doc links
use crate::proxy::{SocketFate, SocketPolicy};
use crate::proxy::{SocketPolicyFactory, SocketSendAdapter};
use crate::WireError;
use meba_core::SystemConfig;
use meba_crypto::{ProcessId, WireCodec};
use meba_engine::{
    run_live_round, update_backoff_shift, DeadlinePacer, Delivery, LinkPolicySendAdapter, Pacer,
    RoundDriverConfig, RoundState, SendPolicy, Transport, MAX_BACKOFF_SHIFT,
};
use meba_net::{ActorRebuilder, ClusterConfig, ClusterReport};
use meba_sim::{AnyActor, Message, Metrics};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// TCP-specific knobs on top of the shared [`ClusterConfig`].
#[derive(Clone)]
pub struct TcpClusterConfig {
    /// The runtime-agnostic configuration (δ, round cap, corrupt set,
    /// link policy, channel capacity, overrun policy) — the same struct
    /// [`meba_net::run_cluster`] takes, so scenarios port unchanged.
    pub cluster: ClusterConfig,
    /// Socket-edge fault injection. Takes precedence over
    /// `cluster.link_policy` when both are set; use this for the
    /// TCP-only [`SocketFate::Sever`].
    pub socket_policy: Option<SocketPolicyFactory>,
    /// Session domain stamped into every handshake. Two clusters with
    /// different domains refuse to link even on the same ports.
    pub domain: u64,
    /// Budget for establishing all `n(n-1)` directed links.
    pub dial_timeout: Duration,
}

impl Default for TcpClusterConfig {
    fn default() -> Self {
        TcpClusterConfig {
            cluster: ClusterConfig::default(),
            socket_policy: None,
            domain: 1,
            dial_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of a TCP cluster run: the runtime-agnostic report plus the
/// socket-level counters summed over all meshes.
pub struct TcpClusterReport<M: Message> {
    /// The same report [`meba_net::run_cluster`] produces — metrics
    /// (words, sigs, bytes, per-link, per-session), rounds, actors,
    /// completion and abort diagnostics.
    pub report: ClusterReport<M>,
    /// Data frames that hit a socket (excludes self-delivery).
    pub frames_sent: u64,
    /// Socket bytes for those frames, including the 4-byte length
    /// prefixes — the realized wire cost next to the model-level
    /// [`meba_sim::Metrics`] byte counters.
    pub socket_bytes: u64,
    /// Successful link re-establishments (severed or failed connections).
    pub reconnects: u64,
    /// Inbound frames rejected by the canonical decoder.
    pub decode_errors: u64,
    /// Inbound connections rejected by the handshake.
    pub handshake_rejects: u64,
    /// Protocol frames a mesh gave up on (permanent handshake rejection
    /// or the shutdown flush deadline). Zero in every healthy run; each
    /// drop was also diagnosed on stderr when it happened.
    pub frames_dropped: u64,
}

impl<M: Message> std::fmt::Debug for TcpClusterReport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClusterReport")
            .field("rounds", &self.report.rounds)
            .field("completed", &self.report.completed)
            .field("correct_words", &self.report.metrics.correct.words)
            .field("correct_bytes", &self.report.metrics.correct.bytes)
            .field("frames_sent", &self.frames_sent)
            .field("socket_bytes", &self.socket_bytes)
            .field("reconnects", &self.reconnects)
            .field("decode_errors", &self.decode_errors)
            .field("frames_dropped", &self.frames_dropped)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// The engine transport over a TCP mesh.
// ---------------------------------------------------------------------

/// A [`TcpMesh`] as a [`meba_engine::Transport`]: send encodes and frames
/// onto the link's writer, drain surfaces decoded inbound frames, sever
/// tears a connection down (the reconnect path re-dials lazily), and
/// crash severs every peer link at once — real TCP teardown, so peers
/// observe connection resets and enter their reconnect loops.
pub struct MeshTransport<M: Message + WireCodec> {
    mesh: TcpMesh<M>,
    scratch: Vec<Inbound<M>>,
}

impl<M: Message + WireCodec> MeshTransport<M> {
    /// Wraps an established mesh.
    pub fn new(mesh: TcpMesh<M>) -> Self {
        MeshTransport { mesh, scratch: Vec::new() }
    }
}

impl<M: Message + WireCodec> Transport<M> for MeshTransport<M> {
    fn send(&mut self, to: ProcessId, sent_round: u64, msg: &M) {
        self.mesh.send(to, sent_round, msg);
    }

    fn drain(&mut self, out: &mut Vec<Delivery<M>>) {
        self.mesh.drain_into(&mut self.scratch);
        out.extend(self.scratch.drain(..).map(|w| Delivery {
            from: w.from,
            sent_round: w.sent_round,
            msg: w.msg,
        }));
    }

    fn sever(&mut self, to: ProcessId) {
        self.mesh.sever(to);
    }

    fn crash(&mut self) {
        let me = self.mesh.me();
        for p in 0..self.mesh.n() {
            if p != me.index() {
                self.mesh.sever(ProcessId(p as u32));
            }
        }
    }

    fn backpressure(&self) -> u64 {
        self.mesh.stats().backpressure.load(Ordering::Relaxed)
    }

    fn finish(self) {
        self.mesh.shutdown();
    }
}

// ---------------------------------------------------------------------
// The TCP cluster proper.
// ---------------------------------------------------------------------

/// Runs `actors` as a wall-clock cluster over loopback TCP until every
/// correct actor is done, the round budget is exhausted, or the overrun
/// policy stops the run. Mirrors [`meba_net::run_cluster`] exactly at
/// the API level; `system` supplies the configuration digest every link
/// handshake must agree on.
///
/// # Errors
///
/// Fails with a [`WireError`] if the mesh cannot be established within
/// [`TcpClusterConfig::dial_timeout`].
///
/// # Panics
///
/// Panics if `actors` is empty, ids are not `p0..p(n-1)` in order, or
/// `actors.len() != system.n()`.
pub fn run_tcp_cluster<M: Message + WireCodec>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    system: &SystemConfig,
    config: TcpClusterConfig,
) -> Result<TcpClusterReport<M>, WireError> {
    run_tcp_cluster_with_recovery(actors, None, system, config)
}

/// [`run_tcp_cluster`] plus crash-recovery: when
/// [`ClusterConfig::process_fate`] marks a process
/// [`meba_net::ProcessFate::CrashRestart`], that process severs every
/// peer link at the crash round (real TCP teardown — peers observe resets
/// and enter their reconnect loops), discards all in-memory state, and —
/// if a `rebuilder` is supplied — later rejoins with an actor rebuilt
/// from its durable journal, re-handshaking each link on the way back in.
/// Recovery counters land in [`meba_sim::Metrics::recovery`].
///
/// # Errors
///
/// Same as [`run_tcp_cluster`].
///
/// # Panics
///
/// Same as [`run_tcp_cluster`].
pub fn run_tcp_cluster_with_recovery<M: Message + WireCodec>(
    actors: Vec<Box<dyn AnyActor<Msg = M>>>,
    rebuilder: Option<ActorRebuilder<M>>,
    system: &SystemConfig,
    config: TcpClusterConfig,
) -> Result<TcpClusterReport<M>, WireError> {
    let n = actors.len();
    assert!(n > 0, "cluster needs at least one actor");
    assert_eq!(n, system.n(), "actor count must match the system configuration");
    for (i, a) in actors.iter().enumerate() {
        assert_eq!(a.id().index(), i, "actor {i} has id {}", a.id());
    }

    // Bind every listener before any mesh dials, so establishment cannot
    // deadlock on ordering.
    let digest = config_digest(system);
    let mut listeners = Vec::with_capacity(n);
    let mut addrs: Vec<SocketAddr> = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0").map_err(WireError::Io)?;
        addrs.push(l.local_addr().map_err(WireError::Io)?);
        listeners.push(l);
    }

    let mut establishers = Vec::with_capacity(n);
    for (i, listener) in listeners.into_iter().enumerate() {
        let me = ProcessId(i as u32);
        let hello = Hello {
            version: PROTOCOL_VERSION,
            id: me,
            config_digest: digest,
            domain: config.domain,
        };
        let mut mesh_cfg = MeshConfig::new(me, hello);
        mesh_cfg.inbox_capacity = config.cluster.channel_capacity.max(1);
        mesh_cfg.outbox_capacity = config.cluster.channel_capacity.max(1);
        mesh_cfg.dial_timeout = config.dial_timeout;
        mesh_cfg.reconnect_backoff_cap = config.cluster.reconnect_backoff_cap;
        mesh_cfg.reconnect_jitter = config.cluster.reconnect_jitter;
        let addrs = addrs.clone();
        establishers
            .push(std::thread::spawn(move || TcpMesh::<M>::establish(mesh_cfg, listener, &addrs)));
    }
    let mut meshes = Vec::with_capacity(n);
    let mut first_err = None;
    for h in establishers {
        match h.join().expect("mesh establishment thread panicked") {
            Ok(m) => meshes.push(m),
            Err(e) => first_err = Some(first_err.unwrap_or(e)),
        }
    }
    if let Some(e) = first_err {
        for m in meshes {
            m.shutdown();
        }
        return Err(e);
    }
    meshes.sort_by_key(|m| m.me().index());

    // Keep a handle on every mesh's socket counters: the transports are
    // consumed (and shut down) by the engine, but the Arcs survive.
    let mesh_stats: Vec<Arc<MeshStats>> = meshes.iter().map(|m| m.stats().clone()).collect();
    let policies: Vec<Option<Box<dyn SendPolicy>>> = (0..n)
        .map(|i| {
            let me = ProcessId(i as u32);
            match (&config.socket_policy, &config.cluster.link_policy) {
                (Some(f), _) => Some(Box::new(SocketSendAdapter(f(me))) as Box<dyn SendPolicy>),
                (None, Some(f)) => {
                    Some(Box::new(LinkPolicySendAdapter(f(me))) as Box<dyn SendPolicy>)
                }
                (None, None) => None,
            }
        })
        .collect();
    let transports: Vec<MeshTransport<M>> = meshes.into_iter().map(MeshTransport::new).collect();

    let report =
        meba_engine::run_threaded_cluster(actors, transports, policies, rebuilder, &config.cluster);

    let mut frames_sent = 0;
    let mut socket_bytes = 0;
    let mut reconnects = 0;
    let mut decode_errors = 0;
    let mut handshake_rejects = 0;
    let mut frames_dropped = 0;
    for stats in &mesh_stats {
        let snap = stats.snapshot();
        frames_sent += snap.frames_sent;
        socket_bytes += snap.bytes_sent;
        reconnects += snap.reconnects;
        decode_errors += snap.decode_errors;
        handshake_rejects += snap.handshake_rejects;
        frames_dropped += snap.frames_dropped;
        // Backpressure already flows through the engine's transport
        // accounting into `report.backpressure`.
    }
    Ok(TcpClusterReport {
        report,
        frames_sent,
        socket_bytes,
        reconnects,
        decode_errors,
        handshake_rejects,
        frames_dropped,
    })
}

// ---------------------------------------------------------------------
// Standalone mesh driving (one OS process per peer, no shared control).
// ---------------------------------------------------------------------

/// Pacing for [`drive_mesh`] — the multi-process path, where no shared
/// coordinator exists and each process paces itself from its own epoch.
#[derive(Clone, Copy, Debug)]
pub struct MeshDriveConfig {
    /// Round duration δ. Must dominate cross-process start skew plus
    /// loopback latency for the synchronous abstraction to hold.
    pub delta: Duration,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Extra rounds to keep running after the local actor reports done,
    /// so it can still answer peers' help requests.
    pub linger_rounds: u64,
    /// How the local process advances rounds: the fixed δ schedule from
    /// its own epoch ([`RoundDriverConfig::Lockstep`], default) or
    /// quorum-or-local-timeout ([`RoundDriverConfig::QuorumOrTimeout`]),
    /// which tolerates cross-process epoch skew by re-synchronizing on
    /// observed traffic.
    pub driver: RoundDriverConfig,
}

impl Default for MeshDriveConfig {
    fn default() -> Self {
        MeshDriveConfig {
            delta: Duration::from_millis(20),
            max_rounds: 10_000,
            linger_rounds: 8,
            driver: RoundDriverConfig::Lockstep,
        }
    }
}

/// A [`Transport`] over a *borrowed* mesh, for [`drive_mesh`]: the caller
/// keeps ownership (and shutdown responsibility) of the [`TcpMesh`].
struct BorrowedMesh<'a, M: Message + WireCodec> {
    mesh: &'a TcpMesh<M>,
    scratch: Vec<Inbound<M>>,
}

impl<M: Message + WireCodec> Transport<M> for BorrowedMesh<'_, M> {
    fn send(&mut self, to: ProcessId, sent_round: u64, msg: &M) {
        self.mesh.send(to, sent_round, msg);
    }

    fn drain(&mut self, out: &mut Vec<Delivery<M>>) {
        self.mesh.drain_into(&mut self.scratch);
        out.extend(self.scratch.drain(..).map(|w| Delivery {
            from: w.from,
            sent_round: w.sent_round,
            msg: w.msg,
        }));
    }

    fn sever(&mut self, to: ProcessId) {
        self.mesh.sever(to);
    }
}

/// Drives one actor over an established mesh without a global
/// coordinator: rounds are paced from a local epoch and the run stops
/// [`MeshDriveConfig::linger_rounds`] after the actor reports done (or at
/// `max_rounds`). This is the building block for running a cluster as N
/// separate OS processes — see the `tcp_cluster` example; in-process
/// tests should prefer [`run_tcp_cluster`], whose coordinator gives exact
/// lockstep.
///
/// Returns the rounds executed and the local word/byte metrics.
pub fn drive_mesh<M: Message + WireCodec>(
    mesh: &TcpMesh<M>,
    actor: &mut dyn AnyActor<Msg = M>,
    cfg: &MeshDriveConfig,
) -> (u64, Metrics) {
    let n = mesh.n();
    let metrics = Mutex::new(Metrics::default());
    let mut transport = BorrowedMesh { mesh, scratch: Vec::new() };
    let mut state = RoundState::new();
    let mut policy: Option<Box<dyn SendPolicy>> = None;
    let pacer = DeadlinePacer::new(Instant::now(), cfg.delta);
    let quorum = cfg.driver.effective_quorum(n);
    let mut sched_deadline = Instant::now();
    let mut backoff_shift = 0u32;
    let mut linger = cfg.linger_rounds;
    let mut round = 0u64;
    while round < cfg.max_rounds {
        let quorum_ready = match cfg.driver {
            RoundDriverConfig::Lockstep => {
                pacer.wait_for_round(round);
                round >= 1 && state.ready_senders(actor.id(), round, &mut transport) >= quorum
            }
            RoundDriverConfig::QuorumOrTimeout { .. } => {
                let timeout = cfg
                    .driver
                    .timeout_duration(cfg.delta)
                    .saturating_mul(1u32 << backoff_shift.min(MAX_BACKOFF_SHIFT));
                let now = Instant::now();
                let deadline = sched_deadline.max(now).min(now + timeout) + timeout;
                sched_deadline = deadline;
                let mut ready = false;
                loop {
                    if round >= 1
                        && state.ready_senders(actor.id(), round, &mut transport) >= quorum
                    {
                        ready = true;
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    std::thread::sleep((deadline - now).min(Duration::from_micros(200)));
                }
                ready
            }
        };
        if round >= 1 {
            let mut m = metrics.lock();
            match quorum_ready {
                true => m.advance.quorum += 1,
                false => m.advance.timeout += 1,
            }
        }
        let outcome = run_live_round(
            actor,
            &mut transport,
            &mut state,
            &mut policy,
            round,
            n,
            true,
            &metrics,
        );
        if !cfg.driver.is_lockstep() {
            // Late traffic: the local δ-estimate outpaced the network —
            // double the round timer. Clean rounds halve it back, so a
            // rejoining process's catch-up burst (every send stamped
            // with a stale round) slows peers only while it lasts
            // instead of ratcheting their timers to the cap for good.
            update_backoff_shift(&mut backoff_shift, outcome.late_admitted);
        }
        let done = outcome.done;
        round += 1;
        if done {
            if linger == 0 {
                break;
            }
            linger -= 1;
        } else {
            linger = cfg.linger_rounds;
        }
    }
    let mut metrics = metrics.into_inner();
    metrics.rounds = round;
    (round, metrics)
}
