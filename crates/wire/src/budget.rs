//! The byte budget behind the word model.
//!
//! The paper counts communication in *words*: a value, a signature, a
//! threshold signature each cost one word (§2). On a real wire a word is
//! bytes, and the complexity claims only survive the translation if the
//! byte cost of every message is bounded by a constant multiple of its
//! word cost — otherwise "O(n(f+1)) words" could hide unbounded bytes.
//! [`BYTES_PER_WORD`] is that constant for this codebase's canonical
//! codec, and the `budget` tests assert it against one constructed
//! instance of **every** protocol message variant — the same fixture set
//! as `meba-core`'s word-cost audit (`message_costs.rs`), so the two
//! accountings can never drift apart silently.

use meba_crypto::WireCodec;
use meba_sim::Message;

/// Upper bound on the canonical encoding of any protocol message, in
/// bytes per model word (including the message's variant tag and framing
/// fields, excluding the 4-byte frame length prefix).
///
/// The dominant contributions: a threshold signature encodes in 83 bytes
/// (1 word), an individual signature in 46 bytes (1 word), a `u64` value
/// in 9 bytes (1 word); enum tags and small scalar fields add single-digit
/// bytes amortized over the message's word count.
pub const BYTES_PER_WORD: u64 = 128;

/// The outcome of checking one message against the budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetCheck {
    /// Model-level cost ([`Message::words`]), floored at 1 as the
    /// runtimes do.
    pub words: u64,
    /// Canonical encoding length ([`WireCodec::wire_len`]).
    pub bytes: u64,
}

impl BudgetCheck {
    /// Whether the encoding fits `words × BYTES_PER_WORD`.
    pub fn within_budget(&self) -> bool {
        self.bytes <= self.words * BYTES_PER_WORD
    }

    /// Realized bytes-per-word ratio, rounded up.
    pub fn bytes_per_word(&self) -> u64 {
        self.bytes.div_ceil(self.words)
    }
}

/// Measures `msg` against the byte budget.
pub fn check<M: Message + WireCodec>(msg: &M) -> BudgetCheck {
    BudgetCheck { words: msg.words().max(1), bytes: msg.wire_len() }
}

/// Panics (with the message's debug form) unless `msg` encodes within
/// its word budget and reports that same length via
/// [`Message::wire_bytes`].
pub fn assert_within_budget<M: Message + WireCodec>(msg: &M) {
    let c = check(msg);
    assert_eq!(msg.wire_bytes(), c.bytes, "wire_bytes disagrees with the codec for {msg:?}");
    assert!(
        c.within_budget(),
        "{msg:?}: {} bytes exceeds {} words × {BYTES_PER_WORD} B/word",
        c.bytes,
        c.words
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_core::bb::{BbBaValue, BbMsg};
    use meba_core::fallback::EchoMsg;
    use meba_core::signing::*;
    use meba_core::strong_ba::StrongBaMsg;
    use meba_core::subprotocol::SkewEnvelope;
    use meba_core::weak_ba::WeakBaMsg;
    use meba_core::SystemConfig;
    use meba_crypto::{trusted_setup, Signable};
    use meba_sim::SessionEnvelope;

    type WbaM = WeakBaMsg<u64, EchoMsg<u64>>;
    type BbM = BbMsg<u64, EchoMsg<BbBaValue<u64>>>;
    type SbaM = StrongBaMsg<EchoMsg<bool>>;

    /// Same fixture parameters as `meba-core`'s word-cost audit.
    fn fixtures() -> (SystemConfig, meba_crypto::Pki, Vec<meba_crypto::SecretKey>) {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let (pki, keys) = trusted_setup(7, 1);
        (cfg, pki, keys)
    }

    #[test]
    fn every_weak_ba_variant_fits_the_budget() {
        let (cfg, pki, keys) = fixtures();
        let v = 5u64;
        let vote_sig = sign_payload(&keys[0], &VoteSig { session: 1, value: &v, level: 1 });
        let decide_sig = sign_payload(&keys[0], &DecideSig { session: 1, value: &v, phase: 1 });
        let vote_payload = VoteSig { session: 1, value: &v, level: 1 };
        let shares: Vec<_> =
            keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &vote_payload)).collect();
        let qc = pki.combine(cfg.quorum(), &vote_payload.signing_bytes(), &shares).unwrap();
        let commit = CommitProof { level: 1, qc: qc.clone() };
        let decide = DecideProof { phase: 1, qc: qc.clone() };

        let cases: Vec<WbaM> = vec![
            WeakBaMsg::Propose { phase: 1, value: v },
            WeakBaMsg::Vote { phase: 1, value: v, sig: vote_sig.clone() },
            WeakBaMsg::CommitReply { phase: 1, value: v, proof: commit.clone() },
            WeakBaMsg::CommitCert { phase: 1, value: v, proof: commit },
            WeakBaMsg::Decide { phase: 1, value: v, sig: decide_sig },
            WeakBaMsg::FinalizeCert { phase: 1, value: v, proof: decide.clone() },
            WeakBaMsg::HelpReq { sig: vote_sig },
            WeakBaMsg::Help { value: v, proof: decide.clone() },
            WeakBaMsg::FallbackCert { qc: qc.clone(), decision: None },
            WeakBaMsg::FallbackCert { qc, decision: Some((v, decide)) },
            WeakBaMsg::Fallback(SkewEnvelope { vstep: 0, msg: EchoMsg(9u64) }),
        ];
        for msg in cases {
            assert_within_budget(&msg);
        }
    }

    #[test]
    fn every_bb_variant_fits_the_budget() {
        let (cfg, pki, keys) = fixtures();
        let sender_sig = sign_payload(&keys[0], &BbValueSig { session: 1, value: &9u64 });
        let idk_payload = BbIdkSig { session: 1, phase: 2 };
        let shares: Vec<_> =
            keys.iter().take(cfg.idk_threshold()).map(|k| sign_payload(k, &idk_payload)).collect();
        let idk_qc =
            pki.combine(cfg.idk_threshold(), &idk_payload.signing_bytes(), &shares).unwrap();
        let signed = BbBaValue::Signed { value: 9u64, sig: sender_sig.clone() };
        let quorum_v = BbBaValue::<u64>::IdkQuorum { phase: 2, qc: idk_qc };

        let cases: Vec<BbM> = vec![
            BbMsg::SenderValue { value: 9, sig: sender_sig },
            BbMsg::VetHelpReq { phase: 2 },
            BbMsg::VetValue { phase: 2, value: signed.clone() },
            BbMsg::VetValue { phase: 2, value: quorum_v.clone() },
            BbMsg::Vetted { phase: 2, value: signed.clone() },
            BbMsg::Vetted { phase: 2, value: quorum_v },
            BbMsg::VetIdk {
                phase: 2,
                sig: sign_payload(&keys[1], &BbIdkSig { session: 1, phase: 2 }),
            },
            BbMsg::Ba(WeakBaMsg::Propose { phase: 1, value: signed }),
        ];
        for msg in cases {
            assert_within_budget(&msg);
        }
    }

    #[test]
    fn every_strong_ba_variant_fits_the_budget() {
        let (cfg, pki, keys) = fixtures();
        let input_payload = StrongInputSig { session: 1, value: true };
        let sig = sign_payload(&keys[0], &input_payload);
        let shares: Vec<_> = keys
            .iter()
            .take(cfg.idk_threshold())
            .map(|k| sign_payload(k, &input_payload))
            .collect();
        let propose_qc =
            pki.combine(cfg.idk_threshold(), &input_payload.signing_bytes(), &shares).unwrap();
        let decide_payload = StrongDecideSig { session: 1, value: true };
        let all: Vec<_> = keys.iter().map(|k| sign_payload(k, &decide_payload)).collect();
        let decide_qc = pki.combine(cfg.n(), &decide_payload.signing_bytes(), &all).unwrap();

        let cases: Vec<SbaM> = vec![
            StrongBaMsg::Input { value: true, sig: sig.clone() },
            StrongBaMsg::Propose { value: true, qc: propose_qc },
            StrongBaMsg::DecideShare { value: true, sig },
            StrongBaMsg::DecideCert { value: true, qc: decide_qc.clone() },
            StrongBaMsg::Fallback { decision: None },
            StrongBaMsg::Fallback { decision: Some((true, decide_qc)) },
        ];
        for msg in cases {
            assert_within_budget(&msg);
        }
    }

    #[test]
    fn session_envelope_overhead_fits_the_budget() {
        let env = SessionEnvelope {
            session: meba_sim::SessionId(3),
            msg: WeakBaMsg::<u64, EchoMsg<u64>>::Propose { phase: 1, value: 7 },
        };
        assert_within_budget(&env);
    }
}
