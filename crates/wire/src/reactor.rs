//! The readiness-driven I/O core behind [`crate::mesh::TcpMesh`].
//!
//! One reactor thread per mesh owns *every* socket the mesh touches —
//! the listener, all outbound (dialed) links, all inbound (accepted)
//! links, and a wake pipe — and drives them from a single
//! [`crate::poller::poll`] loop over nonblocking descriptors. That
//! replaces the previous thread-per-link design (one writer + one
//! reader OS thread per directed link, plus a busy-waiting acceptor):
//! a cluster of `n` in-process peers now costs `O(n)` threads instead
//! of `O(n²)`.
//!
//! Each link is a small state machine:
//!
//! * outbound: `Idle → (dial) → Handshaking → Established`, falling
//!   back through `Backoff` on transient failure with the same capped
//!   exponential delay + deterministic jitter schedule the writer
//!   threads used ([`reconnect_delay`]); a *semantic* handshake
//!   rejection is `Failed` — permanent, with every queued frame counted
//!   into [`crate::mesh::MeshStats::frames_dropped`] and reported.
//! * inbound: `accepted → Handshaking → Established`, with a per-link
//!   handshake deadline enforced by the poll timeout — a peer stalling
//!   mid-handshake is reaped at the deadline and can never pin the I/O
//!   thread (the old design parked a whole acceptor thread in a
//!   blocking read for up to the socket read timeout).
//!
//! Outbound frames are queued per link and survive reconnects: a frame
//! is only ever dropped on permanent link failure or when the shutdown
//! flush deadline expires, and every drop is counted and diagnosed —
//! never silent.

use crate::error::WireError;
use crate::frame::MAX_FRAME_BYTES;
use crate::handshake::{validate, Hello};
use crate::mesh::{Inbound, MeshStats};
use crate::poller::{self, PollFd, WakeFd, POLLIN, POLLOUT};
use crossbeam::channel::{Receiver, Sender, TryRecvError, TrySendError};
use meba_crypto::{Decoder, ProcessId, WireCodec};
use meba_sim::Message;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the mesh handle sends down a link's command channel.
pub(crate) enum Cmd {
    /// One fully framed data frame (`4-byte BE length ‖ sent_round ‖
    /// message`), built in a buffer from the mesh's [`crate::pool::BufPool`]
    /// and returned there once written to the socket.
    Frame(Vec<u8>),
    /// Tear the connection down; the next frame re-dials.
    Sever,
}

/// Reactor-side state shared with the [`crate::mesh::TcpMesh`] handle.
pub(crate) struct Shared {
    /// Raised by the handle to request flush-and-exit.
    pub stop: AtomicBool,
    /// Outbound links that have completed their first handshake.
    pub out_ready: AtomicUsize,
    /// Which peers have an accepted, handshaked inbound link.
    pub accepted: Mutex<Vec<bool>>,
    /// First permanent establishment error, if any.
    pub fatal: Mutex<Option<WireError>>,
}

impl Shared {
    pub(crate) fn new(n: usize) -> Self {
        Shared {
            stop: AtomicBool::new(false),
            out_ready: AtomicUsize::new(0),
            accepted: Mutex::new(vec![false; n]),
            fatal: Mutex::new(None),
        }
    }
}

/// Construction parameters handed from the mesh to its reactor thread.
pub(crate) struct ReactorConfig {
    pub me: ProcessId,
    pub hello: Hello,
    pub addrs: Vec<SocketAddr>,
    pub outbox_capacity: usize,
    pub backoff_cap: Duration,
    pub jitter: Duration,
    pub handshake_timeout: Duration,
    pub flush_timeout: Duration,
}

/// Upper bound on one blocking `connect` attempt. Dials are the one
/// blocking call left in the reactor: on the loopback links this crate
/// targets, a connect resolves (or is refused) in microseconds, and
/// bounding it keeps a blackholed peer from stalling the loop for more
/// than a beat.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Poll timeout when no timer is pending — a liveness backstop in case
/// a wake is ever missed, not the normal wake path.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Retry cadence for re-offering a parked inbound message to a full
/// inbox (normally the drain side wakes the reactor first).
const PARK_RETRY: Duration = Duration::from_millis(1);

/// Deterministic per-attempt jitter in `[0, jitter)`: a SplitMix64-style
/// hash of `(peer, attempt)`, so redial schedules are reproducible yet
/// spread out across peers.
pub fn dial_jitter(peer: ProcessId, attempt: u64, jitter: Duration) -> Duration {
    if jitter.is_zero() {
        return Duration::ZERO;
    }
    let mut z = (u64::from(peer.0) << 32) ^ attempt ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let max_ns = jitter.as_nanos().max(1) as u64;
    Duration::from_nanos(z % max_ns)
}

/// The delay before re-dial attempt `attempt` (0-based): capped
/// exponential backoff from 1 ms plus [`dial_jitter`]. Never exceeds
/// `backoff_cap + jitter` (treating a sub-millisecond cap as 1 ms).
pub fn reconnect_delay(
    peer: ProcessId,
    attempt: u64,
    backoff_cap: Duration,
    jitter: Duration,
) -> Duration {
    let cap = backoff_cap.max(Duration::from_millis(1));
    let base = Duration::from_millis(1u64 << attempt.min(20)).min(cap);
    base + dial_jitter(peer, attempt, jitter)
}

// ---------------------------------------------------------------------
// Incremental framing.
// ---------------------------------------------------------------------

/// Incremental reader for one length-prefixed frame over a nonblocking
/// stream: accumulates across `WouldBlock` boundaries and yields at most
/// one complete payload per call. The size cap is enforced before the
/// payload buffer grows, exactly like the blocking
/// [`crate::frame::read_frame`].
///
/// The payload buffer is owned by the accumulator and reused across
/// frames: a yielded payload is borrowed, and its bytes stay valid until
/// the next `poll_frame` call starts the next payload. Steady-state link
/// reads therefore allocate nothing once the buffer has grown to the
/// largest frame seen — the per-link read buffer.
pub(crate) struct FrameAccum {
    header: [u8; 4],
    have: usize,
    /// True while `payload` is being filled for the current frame.
    in_payload: bool,
    payload: Vec<u8>,
    filled: usize,
}

impl FrameAccum {
    pub(crate) fn new() -> Self {
        FrameAccum { header: [0; 4], have: 0, in_payload: false, payload: Vec::new(), filled: 0 }
    }

    /// Pulls bytes until a frame completes (`Ok(Some(payload))`), the
    /// stream would block (`Ok(None)`), or the link is dead.
    pub(crate) fn poll_frame<R: Read>(&mut self, r: &mut R) -> Result<Option<&[u8]>, WireError> {
        if !self.in_payload {
            while self.have < 4 {
                match r.read(&mut self.header[self.have..]) {
                    Ok(0) => return Err(WireError::PeerClosed),
                    Ok(k) => self.have += k,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            let len = u32::from_be_bytes(self.header) as usize;
            if len > MAX_FRAME_BYTES {
                return Err(WireError::FrameTooLarge { len, max: MAX_FRAME_BYTES });
            }
            self.payload.clear();
            self.payload.resize(len, 0);
            self.filled = 0;
            self.in_payload = true;
        }
        while self.filled < self.payload.len() {
            match r.read(&mut self.payload[self.filled..]) {
                Ok(0) => return Err(WireError::PeerClosed),
                Ok(k) => self.filled += k,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        self.have = 0;
        self.in_payload = false;
        Ok(Some(&self.payload))
    }
}

/// Per-link outbound queue of fully framed byte strings, with partial
/// write tracking. Frames arrive already framed (the mesh handle builds
/// `prefix ‖ payload` in a pooled buffer), so queueing is a move, not a
/// copy. Frames survive reconnects: on teardown the partial offset
/// resets and the head frame is resent whole (the receiver's half-read
/// copy died with the connection).
struct SendQueue {
    frames: VecDeque<Vec<u8>>,
    head_written: usize,
}

impl SendQueue {
    fn new() -> Self {
        SendQueue { frames: VecDeque::new(), head_written: 0 }
    }

    fn push(&mut self, framed: Vec<u8>) {
        debug_assert!(framed.len() >= 4, "frames arrive with their length prefix");
        self.frames.push_back(framed);
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    fn reset_partial(&mut self) {
        self.head_written = 0;
    }

    fn clear(&mut self) -> u64 {
        self.head_written = 0;
        let n = self.frames.len() as u64;
        self.frames.clear();
        n
    }

    /// Writes as much as the socket accepts, returning each completed
    /// frame's buffer to `pool`. Returns
    /// `(frames_completed, bytes_of_completed_frames, wrote_anything)`.
    fn pump<W: Write>(
        &mut self,
        w: &mut W,
        pool: &crate::pool::BufPool,
    ) -> io::Result<(u64, u64, bool)> {
        let mut frames = 0u64;
        let mut bytes = 0u64;
        let mut progress = false;
        while let Some(head) = self.frames.front() {
            match w.write(&head[self.head_written..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(k) => {
                    progress = true;
                    self.head_written += k;
                    if self.head_written == head.len() {
                        bytes += head.len() as u64;
                        frames += 1;
                        if let Some(done) = self.frames.pop_front() {
                            pool.put(done);
                        }
                        self.head_written = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok((frames, bytes, progress))
    }
}

// ---------------------------------------------------------------------
// Link state machines.
// ---------------------------------------------------------------------

enum OutConn {
    /// No connection and no retry pending; dials lazily when frames
    /// queue up (or eagerly during establishment).
    Idle,
    /// Last attempt failed; retry once `until` passes.
    Backoff { until: Instant },
    /// Connected; hello sent/being sent, reply being read.
    Handshaking {
        conn: TcpStream,
        hello_out: Vec<u8>,
        written: usize,
        acc: FrameAccum,
        deadline: Instant,
    },
    /// Link up; frames flow.
    Established { conn: TcpStream },
    /// Semantic handshake rejection: retrying cannot heal this.
    Failed,
}

struct OutLink {
    peer: ProcessId,
    addr: SocketAddr,
    conn: OutConn,
    queue: SendQueue,
    attempt: u64,
    /// Dial even with an empty queue — set during establishment,
    /// cleared on the first successful handshake.
    eager: bool,
    ever_established: bool,
    counted_ready: bool,
    /// Last instant the link made write progress (or went idle);
    /// a non-empty queue stalled past the handshake timeout forces a
    /// reconnect instead of wedging behind a peer that stopped reading.
    last_progress: Instant,
}

/// Outcome of driving an outbound link, applied after the borrow on the
/// link ends.
enum OutAct {
    None,
    /// Transient failure: tear down, schedule a backoff retry.
    Backoff,
    /// Semantic handshake rejection: permanent.
    Fail(WireError),
    /// Handshake reply validated: promote to `Established`.
    Promote,
    /// Connection died (EOF/reset/write error): back to `Idle`, frames
    /// kept, re-dial on demand.
    Disconnect,
}

enum InState<M> {
    Handshaking {
        acc: FrameAccum,
        /// Our reply hello (framed) once the dialer's hello validated,
        /// with the write offset and the authenticated peer.
        reply: Option<(Vec<u8>, usize, ProcessId)>,
        deadline: Instant,
    },
    Established {
        peer: ProcessId,
        acc: FrameAccum,
        parked: Option<Inbound<M>>,
    },
}

struct InLink<M> {
    conn: TcpStream,
    state: InState<M>,
    dead: bool,
}

/// Outcome of driving an inbound handshake, applied after the borrow on
/// the link ends.
enum InStep {
    None,
    Reject,
    Promote(ProcessId),
}

enum Tok {
    Wake,
    Listener,
    In(usize),
    Out(usize),
}

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(s: &T) -> i32 {
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn fd_of<T>(_s: &T) -> i32 {
    0
}

fn is_semantic(e: &WireError) -> bool {
    matches!(
        e,
        WireError::VersionMismatch { .. }
            | WireError::ConfigMismatch { .. }
            | WireError::DomainMismatch { .. }
            | WireError::PeerMismatch { .. }
            | WireError::IdentityInvalid { .. }
    )
}

fn frame_hello(hello: &Hello) -> Vec<u8> {
    let payload = hello.to_wire_bytes();
    let mut framed = Vec::with_capacity(payload.len() + 4);
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(&payload);
    framed
}

/// Loud (but non-panicking) accounting for every protocol frame the
/// mesh gives up on — the paper's protocols tolerate loss, but a lost
/// frame must never be *silent*.
fn report_dropped(stats: &MeshStats, me: ProcessId, peer: ProcessId, count: u64, why: &str) {
    if count == 0 {
        return;
    }
    stats.frames_dropped.fetch_add(count, Ordering::Relaxed);
    eprintln!("meba-wire[{me}]: dropped {count} protocol frame(s) to {peer}: {why}");
}

// ---------------------------------------------------------------------
// The reactor proper.
// ---------------------------------------------------------------------

pub(crate) struct Reactor<M: Message + WireCodec> {
    cfg: ReactorConfig,
    n: usize,
    listener: TcpListener,
    rxs: Vec<Option<Receiver<Cmd>>>,
    inbox: Sender<Inbound<M>>,
    stats: Arc<MeshStats>,
    shared: Arc<Shared>,
    wake: WakeFd,
    /// Frame buffers cycled back to the mesh handle after socket writes.
    pool: Arc<crate::pool::BufPool>,
    outs: Vec<OutLink>,
    ins: Vec<InLink<M>>,
}

impl<M: Message + WireCodec> Reactor<M> {
    #[allow(clippy::too_many_arguments)] // construction-only plumbing from the mesh
    pub(crate) fn new(
        cfg: ReactorConfig,
        listener: TcpListener,
        rxs: Vec<Option<Receiver<Cmd>>>,
        inbox: Sender<Inbound<M>>,
        stats: Arc<MeshStats>,
        shared: Arc<Shared>,
        wake: WakeFd,
        pool: Arc<crate::pool::BufPool>,
    ) -> Self {
        let now = Instant::now();
        let outs = cfg
            .addrs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != cfg.me.index())
            .map(|(j, &addr)| OutLink {
                peer: ProcessId(j as u32),
                addr,
                conn: OutConn::Idle,
                queue: SendQueue::new(),
                attempt: 0,
                eager: true,
                ever_established: false,
                counted_ready: false,
                last_progress: now,
            })
            .collect();
        let n = cfg.addrs.len();
        Reactor { cfg, n, listener, rxs, inbox, stats, shared, wake, pool, outs, ins: Vec::new() }
    }

    /// The reactor thread body: loops until stop + flush completes.
    pub(crate) fn run(mut self) {
        if let Err(e) = self.listener.set_nonblocking(true) {
            let mut fatal = self.shared.fatal.lock();
            if fatal.is_none() {
                *fatal = Some(WireError::Io(e));
            }
            return;
        }
        let mut flush_deadline: Option<Instant> = None;
        loop {
            let stopping = self.shared.stop.load(Ordering::SeqCst);
            if stopping && flush_deadline.is_none() {
                flush_deadline = Some(Instant::now() + self.cfg.flush_timeout);
            }
            self.pump_commands();
            let now = Instant::now();
            self.expire_timers(now);
            self.start_dials(stopping, now);
            self.unpark_inbound();
            if stopping && self.flush_done(flush_deadline.expect("set at stop")) {
                return;
            }
            let (mut fds, toks) = self.build_poll_set(stopping);
            let timeout = self.poll_timeout(stopping, flush_deadline);
            let _ = poller::poll(&mut fds, timeout);
            let mut accept_ready = false;
            let mut ready_in: Vec<usize> = Vec::new();
            let mut ready_out: Vec<(usize, bool, bool)> = Vec::new();
            for (pfd, tok) in fds.iter().zip(&toks) {
                if !pfd.ready() {
                    continue;
                }
                match tok {
                    Tok::Wake => self.wake.drain(),
                    Tok::Listener => accept_ready = true,
                    Tok::In(i) => ready_in.push(*i),
                    Tok::Out(k) => ready_out.push((*k, pfd.readable(), pfd.writable())),
                }
            }
            if accept_ready {
                self.accept_new(Instant::now());
            }
            for (k, readable, writable) in ready_out {
                self.drive_out(k, readable, writable);
            }
            for i in ready_in {
                self.drive_in(i);
            }
            self.ins.retain(|l| !l.dead);
        }
    }

    /// Moves queued commands from the handle's channels into per-link
    /// send queues, bounded by the outbox capacity so total buffering
    /// per link stays at most `2 × outbox_capacity` frames.
    fn pump_commands(&mut self) {
        for link in &mut self.outs {
            let Some(rx) = self.rxs[link.peer.index()].as_ref() else { continue };
            let mut disconnected = false;
            while link.queue.len() < self.cfg.outbox_capacity {
                match rx.try_recv() {
                    Ok(Cmd::Frame(framed)) => {
                        // `framed` includes its 4-byte length prefix.
                        if framed.len().saturating_sub(4) > MAX_FRAME_BYTES {
                            report_dropped(
                                &self.stats,
                                self.cfg.me,
                                link.peer,
                                1,
                                "frame exceeds MAX_FRAME_BYTES",
                            );
                            self.pool.put(framed);
                            continue;
                        }
                        if matches!(link.conn, OutConn::Failed) {
                            report_dropped(
                                &self.stats,
                                self.cfg.me,
                                link.peer,
                                1,
                                "link permanently rejected by handshake",
                            );
                            self.pool.put(framed);
                            continue;
                        }
                        if link.queue.is_empty() {
                            link.last_progress = Instant::now();
                        }
                        link.queue.push(framed);
                    }
                    Ok(Cmd::Sever) => {
                        if matches!(
                            link.conn,
                            OutConn::Established { .. } | OutConn::Handshaking { .. }
                        ) {
                            link.conn = OutConn::Idle;
                            link.queue.reset_partial();
                            link.attempt = 0;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            if disconnected {
                self.rxs[link.peer.index()] = None;
            }
        }
    }

    fn expire_timers(&mut self, now: Instant) {
        let stall = self.cfg.handshake_timeout;
        for link in &mut self.outs {
            match &link.conn {
                OutConn::Backoff { until } if now >= *until => link.conn = OutConn::Idle,
                OutConn::Handshaking { deadline, .. } if now >= *deadline => {
                    let attempt = link.attempt;
                    link.attempt += 1;
                    link.conn = OutConn::Backoff {
                        until: now
                            + reconnect_delay(
                                link.peer,
                                attempt,
                                self.cfg.backoff_cap,
                                self.cfg.jitter,
                            ),
                    };
                }
                OutConn::Established { .. }
                    if !link.queue.is_empty() && now.duration_since(link.last_progress) > stall =>
                {
                    // The peer accepted the connection but stopped
                    // reading; a fresh connection re-runs the handshake
                    // and resends the queued frames.
                    link.conn = OutConn::Idle;
                    link.queue.reset_partial();
                    link.attempt = 0;
                    link.last_progress = now;
                }
                _ => {}
            }
        }
        for l in &mut self.ins {
            if let InState::Handshaking { deadline, .. } = &l.state {
                if now >= *deadline {
                    // Slow-loris / stalled dialer: reap at the deadline.
                    self.stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                    l.dead = true;
                }
            }
        }
        self.ins.retain(|l| !l.dead);
    }

    fn start_dials(&mut self, stopping: bool, now: Instant) {
        for k in 0..self.outs.len() {
            let wants = {
                let link = &self.outs[k];
                matches!(link.conn, OutConn::Idle)
                    && if stopping {
                        !link.queue.is_empty()
                    } else {
                        link.eager || !link.queue.is_empty()
                    }
            };
            if wants {
                self.dial(k, now);
            }
        }
    }

    fn dial(&mut self, k: usize, now: Instant) {
        let link = &mut self.outs[k];
        let conn = TcpStream::connect_timeout(&link.addr, CONNECT_TIMEOUT)
            .and_then(|conn| conn.set_nonblocking(true).map(|()| conn));
        match conn {
            Ok(conn) => {
                let _ = conn.set_nodelay(true);
                link.conn = OutConn::Handshaking {
                    conn,
                    hello_out: frame_hello(&self.cfg.hello),
                    written: 0,
                    acc: FrameAccum::new(),
                    deadline: now + self.cfg.handshake_timeout,
                };
            }
            Err(_) => {
                let attempt = link.attempt;
                link.attempt += 1;
                link.conn = OutConn::Backoff {
                    until: now
                        + reconnect_delay(
                            link.peer,
                            attempt,
                            self.cfg.backoff_cap,
                            self.cfg.jitter,
                        ),
                };
            }
        }
    }

    fn unpark_inbound(&mut self) {
        for l in &mut self.ins {
            if let InState::Established { parked, .. } = &mut l.state {
                if let Some(msg) = parked.take() {
                    if let Err(TrySendError::Full(msg)) = self.inbox.try_send(msg) {
                        *parked = Some(msg);
                    }
                }
            }
        }
    }

    fn flush_done(&mut self, flush_deadline: Instant) -> bool {
        let drained = self.outs.iter().all(|l| l.queue.is_empty())
            && self
                .rxs
                .iter()
                .all(|r| r.as_ref().is_none_or(crossbeam::channel::Receiver::is_empty));
        if drained {
            return true;
        }
        if Instant::now() >= flush_deadline {
            for link in &mut self.outs {
                let mut leftover = link.queue.clear();
                if let Some(rx) = self.rxs[link.peer.index()].take() {
                    leftover += rx.try_iter().filter(|c| matches!(c, Cmd::Frame(_))).count() as u64;
                }
                report_dropped(
                    &self.stats,
                    self.cfg.me,
                    link.peer,
                    leftover,
                    "undeliverable at shutdown flush deadline",
                );
            }
            return true;
        }
        false
    }

    fn build_poll_set(&self, stopping: bool) -> (Vec<PollFd>, Vec<Tok>) {
        let mut fds = Vec::with_capacity(2 + self.ins.len() + self.outs.len());
        let mut toks = Vec::with_capacity(2 + self.ins.len() + self.outs.len());
        fds.push(PollFd::new(self.wake.fd(), POLLIN));
        toks.push(Tok::Wake);
        if !stopping {
            fds.push(PollFd::new(fd_of(&self.listener), POLLIN));
            toks.push(Tok::Listener);
        }
        for (i, l) in self.ins.iter().enumerate() {
            let ev = match &l.state {
                InState::Handshaking { reply: Some(_), .. } => POLLOUT | POLLIN,
                InState::Handshaking { reply: None, .. } => POLLIN,
                InState::Established { parked: Some(_), .. } => 0,
                InState::Established { parked: None, .. } => POLLIN,
            };
            if ev != 0 {
                fds.push(PollFd::new(fd_of(&l.conn), ev));
                toks.push(Tok::In(i));
            }
        }
        for (k, l) in self.outs.iter().enumerate() {
            match &l.conn {
                OutConn::Handshaking { conn, hello_out, written, .. } => {
                    let ev = if *written < hello_out.len() { POLLOUT | POLLIN } else { POLLIN };
                    fds.push(PollFd::new(fd_of(conn), ev));
                    toks.push(Tok::Out(k));
                }
                OutConn::Established { conn } => {
                    let ev = POLLIN | if l.queue.is_empty() { 0 } else { POLLOUT };
                    fds.push(PollFd::new(fd_of(conn), ev));
                    toks.push(Tok::Out(k));
                }
                _ => {}
            }
        }
        (fds, toks)
    }

    fn poll_timeout(&self, stopping: bool, flush_deadline: Option<Instant>) -> Duration {
        let now = Instant::now();
        let mut next: Option<Instant> = if stopping { flush_deadline } else { None };
        let mut consider = |t: Instant| {
            next = Some(match next {
                Some(cur) if cur <= t => cur,
                _ => t,
            });
        };
        for l in &self.outs {
            match &l.conn {
                OutConn::Backoff { until } => consider(*until),
                OutConn::Handshaking { deadline, .. } => consider(*deadline),
                OutConn::Established { .. } if !l.queue.is_empty() => {
                    consider(l.last_progress + self.cfg.handshake_timeout);
                }
                _ => {}
            }
        }
        for l in &self.ins {
            match &l.state {
                InState::Handshaking { deadline, .. } => consider(*deadline),
                InState::Established { parked: Some(_), .. } => consider(now + PARK_RETRY),
                _ => {}
            }
        }
        match next {
            Some(t) => t.saturating_duration_since(now).min(IDLE_POLL),
            None => IDLE_POLL,
        }
    }

    fn accept_new(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((conn, _)) => {
                    let _ = conn.set_nodelay(true);
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.ins.push(InLink {
                        conn,
                        state: InState::Handshaking {
                            acc: FrameAccum::new(),
                            reply: None,
                            deadline: now + self.cfg.handshake_timeout,
                        },
                        dead: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn out_backoff(&mut self, k: usize) {
        let link = &mut self.outs[k];
        let attempt = link.attempt;
        link.attempt += 1;
        link.queue.reset_partial();
        link.conn = OutConn::Backoff {
            until: Instant::now()
                + reconnect_delay(link.peer, attempt, self.cfg.backoff_cap, self.cfg.jitter),
        };
    }

    /// Permanent semantic rejection: the link will never carry a frame.
    fn out_failed(&mut self, k: usize, e: WireError) {
        let why = format!("handshake permanently rejected ({e})");
        let link = &mut self.outs[k];
        link.conn = OutConn::Failed;
        let dropped = link.queue.clear();
        let (me, peer) = (self.cfg.me, link.peer);
        report_dropped(&self.stats, me, peer, dropped, &why);
        let mut fatal = self.shared.fatal.lock();
        if fatal.is_none() {
            *fatal = Some(e);
        }
    }

    fn out_disconnect(&mut self, k: usize) {
        let link = &mut self.outs[k];
        link.conn = OutConn::Idle;
        link.queue.reset_partial();
        link.attempt = 0;
    }

    fn out_established(&mut self, k: usize) {
        let link = &mut self.outs[k];
        let OutConn::Handshaking { conn, .. } = std::mem::replace(&mut link.conn, OutConn::Idle)
        else {
            return;
        };
        link.conn = OutConn::Established { conn };
        link.attempt = 0;
        link.eager = false;
        link.queue.reset_partial();
        link.last_progress = Instant::now();
        if link.ever_established {
            self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        link.ever_established = true;
        if !link.counted_ready {
            link.counted_ready = true;
            self.shared.out_ready.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn drive_out(&mut self, k: usize, readable: bool, writable: bool) {
        let act = {
            let link = &mut self.outs[k];
            match &mut link.conn {
                OutConn::Handshaking { conn, hello_out, written, acc, .. } => {
                    let mut act = OutAct::None;
                    if writable && *written < hello_out.len() {
                        loop {
                            match conn.write(&hello_out[*written..]) {
                                Ok(0) => {
                                    act = OutAct::Backoff;
                                    break;
                                }
                                Ok(w) => {
                                    *written += w;
                                    if *written == hello_out.len() {
                                        break;
                                    }
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                Err(_) => {
                                    act = OutAct::Backoff;
                                    break;
                                }
                            }
                        }
                    }
                    if matches!(act, OutAct::None) && readable {
                        match acc.poll_frame(conn) {
                            Ok(None) => {}
                            Ok(Some(frame)) => match Hello::from_wire_bytes(frame) {
                                Ok(theirs) => {
                                    match validate(
                                        &self.cfg.hello,
                                        &theirs,
                                        Some(link.peer),
                                        self.n,
                                    ) {
                                        Ok(()) => act = OutAct::Promote,
                                        Err(e) if is_semantic(&e) => act = OutAct::Fail(e),
                                        Err(_) => act = OutAct::Backoff,
                                    }
                                }
                                Err(_) => act = OutAct::Backoff,
                            },
                            Err(_) => act = OutAct::Backoff,
                        }
                    }
                    act
                }
                OutConn::Established { conn } => {
                    let mut act = OutAct::None;
                    if readable {
                        // A data link is send-only; the only thing to
                        // read here is EOF/reset from a peer that
                        // severed, crashed, or shut down.
                        let mut buf = [0u8; 4096];
                        loop {
                            match conn.read(&mut buf) {
                                Ok(0) => {
                                    act = OutAct::Disconnect;
                                    break;
                                }
                                Ok(_) => continue, // unexpected data: discard
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                Err(_) => {
                                    act = OutAct::Disconnect;
                                    break;
                                }
                            }
                        }
                    }
                    if matches!(act, OutAct::None) && writable && !link.queue.is_empty() {
                        match link.queue.pump(conn, &self.pool) {
                            Ok((frames, bytes, progress)) => {
                                if frames > 0 {
                                    self.stats.frames_sent.fetch_add(frames, Ordering::Relaxed);
                                    self.stats.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
                                }
                                if progress {
                                    link.last_progress = Instant::now();
                                }
                            }
                            Err(_) => act = OutAct::Disconnect,
                        }
                    }
                    act
                }
                _ => OutAct::None,
            }
        };
        match act {
            OutAct::None => {}
            OutAct::Backoff => self.out_backoff(k),
            OutAct::Fail(e) => self.out_failed(k, e),
            OutAct::Promote => self.out_established(k),
            OutAct::Disconnect => self.out_disconnect(k),
        }
    }

    fn drive_in(&mut self, i: usize) {
        let step = {
            let l = &mut self.ins[i];
            match &mut l.state {
                InState::Handshaking { acc, reply, .. } => {
                    let mut step = InStep::None;
                    if reply.is_none() {
                        match acc.poll_frame(&mut l.conn) {
                            Ok(None) => return,
                            Ok(Some(frame)) => {
                                let verdict = Hello::from_wire_bytes(frame)
                                    .map_err(WireError::from)
                                    .and_then(|theirs| {
                                        validate(&self.cfg.hello, &theirs, None, self.n)
                                            .map(|()| theirs.id)
                                    });
                                match verdict {
                                    Ok(peer) => {
                                        *reply = Some((frame_hello(&self.cfg.hello), 0, peer));
                                    }
                                    // A rejected dialer learns nothing but
                                    // a closed connection; the structured
                                    // reject stays on our side.
                                    Err(_) => step = InStep::Reject,
                                }
                            }
                            Err(_) => step = InStep::Reject,
                        }
                    }
                    if matches!(step, InStep::None) {
                        if let Some((buf, written, peer)) = reply {
                            loop {
                                match l.conn.write(&buf[*written..]) {
                                    Ok(0) => {
                                        step = InStep::Reject;
                                        break;
                                    }
                                    Ok(w) => {
                                        *written += w;
                                        if *written == buf.len() {
                                            step = InStep::Promote(*peer);
                                            break;
                                        }
                                    }
                                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                                    Err(_) => {
                                        step = InStep::Reject;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    step
                }
                InState::Established { peer, acc, parked } => {
                    if parked.is_some() {
                        return;
                    }
                    loop {
                        match acc.poll_frame(&mut l.conn) {
                            Ok(None) => return,
                            Ok(Some(payload)) => {
                                let mut dec = Decoder::new(payload);
                                let decoded = dec
                                    .get_u64()
                                    .and_then(|sent_round| {
                                        M::decode_wire(&mut dec).map(|msg| (sent_round, msg))
                                    })
                                    .and_then(|ok| dec.finish().map(|()| ok));
                                match decoded {
                                    Ok((sent_round, msg)) => {
                                        let inbound = Inbound { from: *peer, sent_round, msg };
                                        match self.inbox.try_send(inbound) {
                                            Ok(()) => {}
                                            Err(TrySendError::Full(m)) => {
                                                *parked = Some(m);
                                                return;
                                            }
                                            Err(TrySendError::Disconnected(_)) => return,
                                        }
                                    }
                                    Err(_) => {
                                        self.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                            Err(_) => {
                                // Peer severed, crashed, or shut down: the
                                // link simply disappears (its peer re-dials
                                // on demand).
                                l.dead = true;
                                return;
                            }
                        }
                    }
                }
            }
        };
        match step {
            InStep::None => {}
            InStep::Reject => {
                self.stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                self.ins[i].dead = true;
            }
            InStep::Promote(peer) => {
                self.ins[i].state =
                    InState::Established { peer, acc: FrameAccum::new(), parked: None };
                self.shared.accepted.lock()[peer.index()] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_accum_handles_split_arrivals() {
        struct Dribble {
            data: Vec<u8>,
            pos: usize,
            chunk: usize,
        }
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let k = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
                buf[..k].copy_from_slice(&self.data[self.pos..self.pos + k]);
                self.pos += k;
                Ok(k)
            }
        }
        let mut wire = Vec::new();
        crate::frame::write_frame(&mut wire, b"hello world").unwrap();
        crate::frame::write_frame(&mut wire, b"").unwrap();
        let mut src = Dribble { data: wire, pos: 0, chunk: 3 };
        let mut acc = FrameAccum::new();
        let mut frames = Vec::new();
        loop {
            match acc.poll_frame(&mut src) {
                Ok(Some(f)) => frames.push(f.to_vec()),
                Ok(None) => {
                    if src.pos >= src.data.len() {
                        break;
                    }
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(frames, vec![b"hello world".to_vec(), Vec::new()]);
    }

    #[test]
    fn frame_accum_reuses_its_payload_buffer() {
        // The per-link read buffer: after the first (largest) frame, the
        // accumulator must serve subsequent frames from the same backing
        // allocation.
        let mut wire = Vec::new();
        crate::frame::write_frame(&mut wire, &[7u8; 256]).unwrap();
        for k in 0..16u8 {
            crate::frame::write_frame(&mut wire, &[k; 32]).unwrap();
        }
        let mut src = &wire[..];
        let mut acc = FrameAccum::new();
        let first = acc.poll_frame(&mut src).unwrap().expect("first frame complete");
        assert_eq!(first.len(), 256);
        let ptr = first.as_ptr();
        for k in 0..16u8 {
            let f = acc.poll_frame(&mut src).unwrap().expect("frame complete");
            assert_eq!(f, [k; 32]);
            assert_eq!(f.as_ptr(), ptr, "read buffer was reallocated");
        }
    }

    #[test]
    fn frame_accum_rejects_oversize_before_allocating() {
        let mut wire: &[u8] = &u32::MAX.to_be_bytes();
        let mut acc = FrameAccum::new();
        assert!(matches!(
            acc.poll_frame(&mut wire),
            Err(WireError::FrameTooLarge { len, .. }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn frame_accum_eof_is_peer_closed() {
        let mut wire: &[u8] = &3u32.to_be_bytes();
        let mut acc = FrameAccum::new();
        assert!(matches!(acc.poll_frame(&mut wire), Err(WireError::PeerClosed)));
    }

    #[test]
    fn send_queue_survives_partial_writes() {
        struct Throttle {
            out: Vec<u8>,
            budget: usize,
        }
        impl Write for Throttle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::ErrorKind::WouldBlock.into());
                }
                let k = buf.len().min(self.budget).min(2);
                self.budget -= k;
                self.out.extend_from_slice(&buf[..k]);
                Ok(k)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        fn framed(payload: &[u8]) -> Vec<u8> {
            let mut f = Vec::with_capacity(payload.len() + 4);
            f.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            f.extend_from_slice(payload);
            f
        }
        let pool = crate::pool::BufPool::new();
        let mut q = SendQueue::new();
        q.push(framed(b"abcdef"));
        q.push(framed(b"gh"));
        let mut sink = Throttle { out: Vec::new(), budget: 5 };
        let (frames, bytes, progress) = q.pump(&mut sink, &pool).unwrap();
        assert_eq!((frames, bytes), (0, 0));
        assert!(progress);
        assert!(!q.is_empty());
        sink.budget = 1024;
        let (frames, bytes, _) = q.pump(&mut sink, &pool).unwrap();
        assert_eq!(frames, 2);
        assert_eq!(bytes, (4 + 6) + (4 + 2));
        assert!(q.is_empty());
        assert_eq!(pool.pooled(), 2, "completed frame buffers are recycled");
        let mut check = &sink.out[..];
        let mut payload = Vec::new();
        crate::frame::read_frame(&mut check, &mut payload).unwrap();
        assert_eq!(payload, b"abcdef");
        crate::frame::read_frame(&mut check, &mut payload).unwrap();
        assert_eq!(payload, b"gh");
    }

    #[test]
    fn reconnect_delay_is_capped_and_jittered_deterministically() {
        let cap = Duration::from_millis(250);
        let jit = Duration::from_millis(10);
        for attempt in 0..64 {
            let d = reconnect_delay(ProcessId(3), attempt, cap, jit);
            assert!(d <= cap + jit, "attempt {attempt}: {d:?} exceeds cap+jitter");
            assert_eq!(d, reconnect_delay(ProcessId(3), attempt, cap, jit));
        }
        assert_eq!(reconnect_delay(ProcessId(1), 0, cap, Duration::ZERO), Duration::from_millis(1));
        assert_eq!(
            reconnect_delay(ProcessId(1), 40, cap, Duration::ZERO),
            cap,
            "exponent saturates at the cap"
        );
    }
}
