//! A shared pool of reusable frame buffers.
//!
//! [`TcpMesh::send`](crate::mesh::TcpMesh::send) builds each outbound
//! frame (`4-byte BE length ‖ sent_round ‖ message`) in a buffer taken
//! from this pool; the reactor returns the buffer once the frame has
//! been fully written to its socket. In steady state a mesh therefore
//! cycles a small working set of buffers between the process thread and
//! the I/O thread instead of allocating and freeing one `Vec` per frame.
//!
//! The pool is deliberately lossy: taking from an empty pool allocates,
//! and returning to a full pool (or returning an over-grown buffer)
//! drops the buffer. Both caps bound worst-case memory retention; losing
//! a buffer only costs a future allocation, never correctness.

use parking_lot::Mutex;

/// Most buffers the pool retains; beyond this, returns are dropped.
const MAX_POOLED: usize = 256;

/// Largest capacity worth keeping. Protocol frames are a few hundred
/// bytes; a buffer that ballooned (e.g. a state-transfer frame) is
/// dropped rather than pinning its capacity forever.
const MAX_RETAINED_CAPACITY: usize = 16 * 1024;

/// Lock-guarded free list of cleared byte buffers.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared buffer, reusing pooled capacity when available.
    pub fn take(&self) -> Vec<u8> {
        self.free.lock().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse. Cleared here, so takers
    /// always see an empty buffer.
    pub fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        buf.clear();
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// Number of buffers currently pooled (test/diagnostic aid).
    pub fn pooled(&self) -> usize {
        self.free.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        let pool = BufPool::new();
        let mut b = pool.take();
        assert_eq!(b.capacity(), 0);
        b.extend_from_slice(&[1, 2, 3, 4]);
        let ptr = b.as_ptr();
        let cap = b.capacity();
        pool.put(b);
        assert_eq!(pool.pooled(), 1);
        let b2 = pool.take();
        assert!(b2.is_empty(), "pooled buffers are cleared");
        assert_eq!(b2.as_ptr(), ptr, "capacity is reused, not reallocated");
        assert_eq!(b2.capacity(), cap);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn oversized_and_empty_buffers_are_not_retained() {
        let pool = BufPool::new();
        pool.put(Vec::new());
        pool.put(Vec::with_capacity(MAX_RETAINED_CAPACITY + 1));
        assert_eq!(pool.pooled(), 0);
        pool.put(Vec::with_capacity(64));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn pool_size_is_capped() {
        let pool = BufPool::new();
        for _ in 0..(MAX_POOLED + 10) {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.pooled(), MAX_POOLED);
    }
}
