//! Real TCP transport for the `meba` protocols.
//!
//! The lockstep simulator (`meba-sim`) and the threaded cluster
//! (`meba-net`) move Rust values over channels; this crate puts the same
//! actor state machines on actual sockets, closing the loop between the
//! paper's word model and bytes on a wire:
//!
//! * [`frame`] — length-prefixed frames with a hard size cap;
//! * [`handshake`] — a versioned hello pinning protocol version,
//!   identity, configuration digest, and session domain per link;
//! * [`mesh`] — a full mesh of handshaked `std::net::TcpStream` links
//!   with one reader/writer thread per peer, bounded outboxes, and
//!   capped-backoff reconnect;
//! * [`cluster`] — [`run_tcp_cluster`], mirroring
//!   [`meba_net::run_cluster`]'s configuration and report so any
//!   scenario moves from channels to loopback TCP unchanged;
//! * [`proxy`] — socket-edge fault injection ([`SocketFate::Sever`]
//!   exercises reconnect, the rest mirror [`meba_sim::faults::LinkFate`]);
//! * [`budget`] — the [`budget::BYTES_PER_WORD`] constant tying the
//!   canonical codec's byte costs back to the paper's word costs.
//!
//! Every message crosses the wire in its canonical
//! [`meba_crypto::WireCodec`] encoding — the same bytes the signatures
//! are computed over — so transport introduces no second, unsigned
//! serialization (see `docs/CORRECTNESS.md` §9).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
pub mod cluster;
pub mod error;
pub mod frame;
pub mod handshake;
pub mod mesh;
pub mod proxy;

pub use budget::BYTES_PER_WORD;
pub use cluster::{
    drive_mesh, run_tcp_cluster, run_tcp_cluster_with_recovery, MeshDriveConfig, MeshTransport,
    TcpClusterConfig, TcpClusterReport,
};
pub use error::WireError;
pub use frame::MAX_FRAME_BYTES;
pub use handshake::{config_digest, Hello, PROTOCOL_VERSION};
pub use mesh::{Inbound, MeshConfig, MeshStats, TcpMesh};
pub use proxy::{
    adapt_link_policy, SeverAt, SocketFate, SocketPolicy, SocketPolicyFactory, SocketSendAdapter,
};
