//! Real TCP transport for the `meba` protocols.
//!
//! The lockstep simulator (`meba-sim`) and the threaded cluster
//! (`meba-net`) move Rust values over channels; this crate puts the same
//! actor state machines on actual sockets, closing the loop between the
//! paper's word model and bytes on a wire:
//!
//! * [`frame`] — length-prefixed frames with a hard size cap;
//! * [`handshake`] — a versioned hello pinning protocol version,
//!   identity, configuration digest, and session domain per link;
//! * [`poller`] — a minimal `poll(2)` readiness layer plus a self-wake
//!   pipe, the only `unsafe` in the crate;
//! * [`reactor`] — per-link nonblocking state machines (dial →
//!   handshake → established → backoff) driven by one I/O thread;
//! * [`mesh`] — a full mesh of handshaked `std::net::TcpStream` links
//!   behind a single readiness-driven reactor thread per process (O(n)
//!   threads for an n-process host, not O(n²)), with bounded outboxes
//!   and capped-backoff reconnect;
//! * [`cluster`] — [`run_tcp_cluster`], mirroring
//!   [`meba_net::run_cluster`]'s configuration and report so any
//!   scenario moves from channels to loopback TCP unchanged;
//! * [`proxy`] — socket-edge fault injection ([`SocketFate::Sever`]
//!   exercises reconnect, the rest mirror [`meba_sim::faults::LinkFate`]);
//! * [`budget`] — the [`budget::BYTES_PER_WORD`] constant tying the
//!   canonical codec's byte costs back to the paper's word costs.
//!
//! Every message crosses the wire in its canonical
//! [`meba_crypto::WireCodec`] encoding — the same bytes the signatures
//! are computed over — so transport introduces no second, unsigned
//! serialization (see `docs/CORRECTNESS.md` §9).

#![warn(missing_docs)]
#![deny(unsafe_code)] // allowed only inside `poller::sys` (FFI to poll/rlimit)

pub mod budget;
pub mod cluster;
pub mod error;
pub mod frame;
pub mod handshake;
pub mod mesh;
pub mod poller;
pub mod pool;
pub mod proxy;
pub mod reactor;

pub use budget::BYTES_PER_WORD;
pub use cluster::{
    drive_mesh, run_tcp_cluster, run_tcp_cluster_with_recovery, MeshDriveConfig, MeshTransport,
    TcpClusterConfig, TcpClusterReport,
};
pub use error::WireError;
pub use frame::MAX_FRAME_BYTES;
pub use handshake::{config_digest, Hello, PROTOCOL_VERSION};
pub use mesh::{Inbound, MeshConfig, MeshSnapshot, MeshStats, TcpMesh};
pub use poller::raise_nofile_limit;
pub use pool::BufPool;
pub use proxy::{
    adapt_link_policy, SeverAt, SocketFate, SocketPolicy, SocketPolicyFactory, SocketSendAdapter,
};
pub use reactor::{dial_jitter, reconnect_delay};
