//! Socket-level fault injection.
//!
//! The TCP runtime intercepts every outbound frame at the sender's edge
//! — the last point before bytes hit the socket — and asks a
//! [`SocketPolicy`] for its fate. The first three fates mirror
//! [`meba_sim::faults::LinkFate`] exactly, so every policy written for
//! the lockstep simulator or the threaded cluster drives the TCP runtime
//! unchanged through [`adapt_link_policy`]. The fourth, [`SocketFate::Sever`],
//! is TCP-specific: it tears down the underlying connection (the frame is
//! lost and the writer must re-dial and re-handshake), exercising the
//! reconnect path that channel-based runtimes cannot model.

use meba_crypto::ProcessId;
use meba_sim::faults::{Link, LinkFate, LinkPolicy};
use std::sync::Arc;

/// The fate of one frame at the socket edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocketFate {
    /// Written to the socket now.
    Forward,
    /// Silently discarded (message loss).
    Drop,
    /// Held back `k` rounds past the synchrony bound, then written with
    /// its original send round (late delivery + reordering).
    DelayRounds(u64),
    /// Discarded *and* the connection is torn down; the link re-dials and
    /// re-handshakes before carrying further traffic.
    Sever,
}

impl From<LinkFate> for SocketFate {
    fn from(f: LinkFate) -> Self {
        match f {
            LinkFate::Deliver => SocketFate::Forward,
            LinkFate::Drop => SocketFate::Drop,
            LinkFate::DelayRounds(k) => SocketFate::DelayRounds(k),
        }
    }
}

/// A per-frame fault schedule for one sender's outbound sockets.
///
/// Same contract as [`LinkPolicy`]: consulted once per point-to-point
/// frame, never for self-delivery, `&mut self` so policies may keep
/// state. Closures implement it.
pub trait SocketPolicy: Send {
    /// Decides the fate of the next frame on `link` sent in `round`.
    fn fate(&mut self, link: Link, round: u64) -> SocketFate;
}

impl<F> SocketPolicy for F
where
    F: FnMut(Link, u64) -> SocketFate + Send,
{
    fn fate(&mut self, link: Link, round: u64) -> SocketFate {
        self(link, round)
    }
}

/// Per-sender factory for [`SocketPolicy`] instances, mirroring
/// [`meba_net::LinkPolicyFactory`].
pub type SocketPolicyFactory = Arc<dyn Fn(ProcessId) -> Box<dyn SocketPolicy> + Send + Sync>;

/// Wraps a [`LinkPolicy`] as a [`SocketPolicy`], mapping each
/// [`LinkFate`] to the equivalent [`SocketFate`]. This is how
/// [`crate::run_tcp_cluster`] reuses `ClusterConfig::link_policy`
/// unchanged.
pub struct LinkPolicyAdapter(pub Box<dyn LinkPolicy>);

impl SocketPolicy for LinkPolicyAdapter {
    fn fate(&mut self, link: Link, round: u64) -> SocketFate {
        self.0.fate(link, round).into()
    }
}

/// Convenience: adapt a whole [`meba_net::LinkPolicyFactory`] into a
/// [`SocketPolicyFactory`].
pub fn adapt_link_policy(factory: meba_net::LinkPolicyFactory) -> SocketPolicyFactory {
    Arc::new(move |me| Box::new(LinkPolicyAdapter(factory(me))) as Box<dyn SocketPolicy>)
}

/// Adapts a [`SocketPolicy`] to the round engine's
/// [`SendPolicy`](meba_engine::SendPolicy), mapping each [`SocketFate`]
/// to the equivalent [`meba_engine::SendFate`]. This is how the TCP
/// runtime drives [`meba_engine::run_threaded_cluster`] with socket-edge
/// fault injection — including the TCP-only [`SocketFate::Sever`], which
/// becomes [`meba_engine::SendFate::Sever`] and tears the connection
/// down through the transport.
pub struct SocketSendAdapter(pub Box<dyn SocketPolicy>);

impl meba_engine::SendPolicy for SocketSendAdapter {
    fn fate(&mut self, link: Link, round: u64) -> meba_engine::SendFate {
        match self.0.fate(link, round) {
            SocketFate::Forward => meba_engine::SendFate::Deliver,
            SocketFate::Drop => meba_engine::SendFate::Drop,
            SocketFate::DelayRounds(k) => meba_engine::SendFate::DelayRounds(k),
            SocketFate::Sever => meba_engine::SendFate::Sever,
        }
    }
}

/// Severs one directed link in one specific round, delegating every
/// other decision to an inner policy. Deterministic by construction.
pub struct SeverAt {
    link: Link,
    round: u64,
    inner: Box<dyn SocketPolicy>,
}

impl SeverAt {
    /// Severs `link` for frames sent in `round`; all other traffic is
    /// judged by `inner`.
    pub fn new(link: Link, round: u64, inner: Box<dyn SocketPolicy>) -> Self {
        SeverAt { link, round, inner }
    }

    /// Severs `link` in `round` and forwards everything else.
    pub fn otherwise_forward(link: Link, round: u64) -> Self {
        SeverAt::new(link, round, Box::new(|_: Link, _: u64| SocketFate::Forward))
    }
}

impl SocketPolicy for SeverAt {
    fn fate(&mut self, link: Link, round: u64) -> SocketFate {
        if link == self.link && round == self.round {
            SocketFate::Sever
        } else {
            self.inner.fate(link, round)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meba_sim::faults::BernoulliDrop;

    #[test]
    fn link_fates_map_one_to_one() {
        assert_eq!(SocketFate::from(LinkFate::Deliver), SocketFate::Forward);
        assert_eq!(SocketFate::from(LinkFate::Drop), SocketFate::Drop);
        assert_eq!(SocketFate::from(LinkFate::DelayRounds(3)), SocketFate::DelayRounds(3));
    }

    #[test]
    fn adapter_matches_underlying_policy() {
        let link = Link { from: ProcessId(0), to: ProcessId(1) };
        let mut raw = BernoulliDrop::new(11, 0.5);
        let mut adapted = LinkPolicyAdapter(Box::new(BernoulliDrop::new(11, 0.5)));
        for round in 0..64 {
            assert_eq!(adapted.fate(link, round), SocketFate::from(raw.fate(link, round)));
        }
    }

    #[test]
    fn sever_at_fires_once_per_link_round() {
        let link = Link { from: ProcessId(0), to: ProcessId(2) };
        let other = Link { from: ProcessId(0), to: ProcessId(1) };
        let mut p = SeverAt::otherwise_forward(link, 5);
        assert_eq!(p.fate(link, 4), SocketFate::Forward);
        assert_eq!(p.fate(link, 5), SocketFate::Sever);
        assert_eq!(p.fate(other, 5), SocketFate::Forward);
        assert_eq!(p.fate(link, 6), SocketFate::Forward);
    }
}
