//! A full mesh of TCP links for one process.
//!
//! [`TcpMesh::establish`] turns a bound listener plus the peer address
//! list into `n - 1` outbound links (dialed, handshaked) and `n - 1`
//! inbound links (accepted, handshaked), all driven by **one reactor
//! thread** ([`crate::reactor`]) multiplexing every socket with
//! [`crate::poller::poll`]. The calling process thread then only ever
//! touches two ends: [`TcpMesh::send`] and [`TcpMesh::drain_into`].
//!
//! Design points, mirroring the threaded `meba-net` cluster:
//!
//! * **O(n) threads** — the mesh costs one I/O thread regardless of
//!   peer count; an n-process loopback cluster is O(n) OS threads total
//!   where the previous thread-per-link design needed O(n²).
//! * **Bounded outboxes** — each link sits behind a bounded command
//!   channel plus an equal-sized reactor-side queue; a full channel
//!   blocks the sender and counts into [`MeshStats::backpressure`]
//!   instead of buffering without bound.
//! * **Reconnect** — a failed or severed connection is re-dialed with
//!   capped exponential backoff (1 ms doubling to the configured cap),
//!   re-running the full handshake; [`MeshStats::reconnects`] counts
//!   successes, and queued frames *survive* the reconnect.
//! * **No silent drops** — a protocol frame the mesh gives up on
//!   (permanent handshake rejection, shutdown flush deadline) is
//!   counted in [`MeshStats::frames_dropped`] and reported on stderr.
//! * **Pooled frames** — outbound frames are built (length prefix
//!   included) in buffers from a [`crate::pool::BufPool`] shared with
//!   the reactor, which returns each buffer after its socket write;
//!   steady-state sends and link reads allocate nothing.
//! * **Total decoding** — inbound frames decode with the canonical
//!   [`WireCodec`]; a frame that fails to decode is counted
//!   ([`MeshStats::decode_errors`]) and dropped without disturbing
//!   framing.
//! * **Graceful shutdown** — [`TcpMesh::shutdown`] flushes queued
//!   frames (re-dialing if needed) up to [`MeshConfig::flush_timeout`],
//!   then closes every socket and joins the reactor.

use crate::error::WireError;
use crate::handshake::Hello;
use crate::poller::{wake_pair, WakeHandle};
use crate::pool::BufPool;
use crate::reactor::{Cmd, Reactor, ReactorConfig, Shared};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use meba_crypto::{with_scratch_encoder, ProcessId, WireCodec};
use meba_sim::Message;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-level counters for one mesh, all monotone.
#[derive(Debug, Default)]
pub struct MeshStats {
    /// Data frames written to sockets (handshake frames excluded).
    pub frames_sent: AtomicU64,
    /// Bytes written to sockets for data frames, *including* the 4-byte
    /// length prefix — the realized cost of a word on a real wire.
    pub bytes_sent: AtomicU64,
    /// Successful re-dials after a connection failed or was severed.
    pub reconnects: AtomicU64,
    /// Inbound frames whose payload failed canonical decoding.
    pub decode_errors: AtomicU64,
    /// Inbound connection attempts rejected by the handshake (including
    /// peers reaped for stalling past the handshake deadline).
    pub handshake_rejects: AtomicU64,
    /// Times [`TcpMesh::send`] blocked on a full outbox.
    pub backpressure: AtomicU64,
    /// Protocol frames the mesh gave up on: queued behind a permanently
    /// rejected link, oversized, or undeliverable when the shutdown
    /// flush deadline expired. Every one is also reported on stderr —
    /// a dropped frame is never silent.
    pub frames_dropped: AtomicU64,
}

/// A plain-number copy of [`MeshStats`] at one instant — named fields,
/// so call sites don't index into a positional tuple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeshSnapshot {
    /// [`MeshStats::frames_sent`].
    pub frames_sent: u64,
    /// [`MeshStats::bytes_sent`].
    pub bytes_sent: u64,
    /// [`MeshStats::reconnects`].
    pub reconnects: u64,
    /// [`MeshStats::decode_errors`].
    pub decode_errors: u64,
    /// [`MeshStats::handshake_rejects`].
    pub handshake_rejects: u64,
    /// [`MeshStats::backpressure`].
    pub backpressure: u64,
    /// [`MeshStats::frames_dropped`].
    pub frames_dropped: u64,
}

impl MeshStats {
    /// Plain-number snapshot of every counter.
    pub fn snapshot(&self) -> MeshSnapshot {
        MeshSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            handshake_rejects: self.handshake_rejects.load(Ordering::Relaxed),
            backpressure: self.backpressure.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
        }
    }
}

/// A decoded inbound message with its authenticated link-level sender
/// (the identity proven by the handshake on the socket it arrived on).
#[derive(Clone, Debug)]
pub struct Inbound<M> {
    /// Handshaked identity of the sending endpoint.
    pub from: ProcessId,
    /// Round the sender stamped into the frame.
    pub sent_round: u64,
    /// Decoded payload.
    pub msg: M,
}

/// Mesh construction parameters.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Our identity (must index into the address list).
    pub me: ProcessId,
    /// Our hello (identity, version, config digest, domain).
    pub hello: Hello,
    /// Capacity of the single inbound channel all links feed.
    pub inbox_capacity: usize,
    /// Capacity of each per-link outbound queue (the reactor buffers up
    /// to the same amount again internally).
    pub outbox_capacity: usize,
    /// How long [`TcpMesh::establish`] keeps dialing an unreachable peer
    /// and waiting for inbound links before giving up.
    pub dial_timeout: Duration,
    /// Upper bound on the exponential re-dial backoff (doubling from
    /// 1 ms). Crash-restart tests lower it so a restarted process
    /// re-establishes its links within a round or two.
    pub reconnect_backoff_cap: Duration,
    /// Maximum deterministic jitter added to each re-dial delay, derived
    /// from `(peer, attempt)`. Spreads the thundering herd of redials
    /// after a peer restarts; zero disables jitter entirely.
    pub reconnect_jitter: Duration,
    /// Per-connection handshake deadline: a peer that stalls mid-
    /// handshake (slow-loris) is reaped after this long without ever
    /// pinning the I/O thread. Also bounds how long an established
    /// outbound link may sit on unflushed frames before the reactor
    /// forces a reconnect.
    pub handshake_timeout: Duration,
    /// How long [`TcpMesh::shutdown`] keeps delivering (and re-dialing
    /// for) queued frames before giving up and counting the remainder
    /// into [`MeshStats::frames_dropped`].
    pub flush_timeout: Duration,
}

impl MeshConfig {
    /// Defaults tuned for loopback clusters: 1024-deep channels, 10 s
    /// establishment budget, 250 ms backoff cap, no jitter, 5 s
    /// handshake deadline, 2 s shutdown flush.
    pub fn new(me: ProcessId, hello: Hello) -> Self {
        MeshConfig {
            me,
            hello,
            inbox_capacity: 1024,
            outbox_capacity: 1024,
            dial_timeout: Duration::from_secs(10),
            reconnect_backoff_cap: Duration::from_millis(250),
            reconnect_jitter: Duration::ZERO,
            handshake_timeout: Duration::from_secs(5),
            flush_timeout: Duration::from_secs(2),
        }
    }
}

/// One process's view of the cluster network.
pub struct TcpMesh<M> {
    me: ProcessId,
    n: usize,
    inbox: Receiver<Inbound<M>>,
    loopback: Sender<Inbound<M>>,
    links: Vec<Option<Sender<Cmd>>>,
    stats: Arc<MeshStats>,
    shared: Arc<Shared>,
    /// Outbound frame buffers, cycled with the reactor: [`TcpMesh::send`]
    /// takes one, the reactor returns it after the socket write.
    pool: Arc<BufPool>,
    wake: WakeHandle,
    reactor: Option<JoinHandle<()>>,
}

impl<M: Message + WireCodec> TcpMesh<M> {
    /// Builds the full mesh: spawns the reactor thread, which accepts
    /// `n - 1` handshaked inbound links on `listener` while dialing
    /// every peer in `addrs` (index = process id; our own slot is
    /// ignored). Returns once all `2(n - 1)` links are up, or fails
    /// after [`MeshConfig::dial_timeout`].
    pub fn establish(
        config: MeshConfig,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<Self, WireError> {
        let n = addrs.len();
        let me = config.me;
        assert!(me.index() < n, "mesh identity {me} out of range for {n} peers");
        let (inbox_tx, inbox_rx) = bounded(config.inbox_capacity.max(1));
        let stats = Arc::new(MeshStats::default());
        let shared = Arc::new(Shared::new(n));
        let pool = Arc::new(BufPool::new());
        let (wake, wake_rx) = wake_pair().map_err(WireError::Io)?;

        let mut links: Vec<Option<Sender<Cmd>>> = (0..n).map(|_| None).collect();
        let mut rxs: Vec<Option<Receiver<Cmd>>> = (0..n).map(|_| None).collect();
        for j in 0..n {
            if j == me.index() {
                continue;
            }
            let (tx, rx) = bounded(config.outbox_capacity.max(1));
            links[j] = Some(tx);
            rxs[j] = Some(rx);
        }

        let reactor = Reactor::<M>::new(
            ReactorConfig {
                me,
                hello: config.hello.clone(),
                addrs: addrs.to_vec(),
                outbox_capacity: config.outbox_capacity.max(1),
                backoff_cap: config.reconnect_backoff_cap.max(Duration::from_millis(1)),
                jitter: config.reconnect_jitter,
                handshake_timeout: config.handshake_timeout,
                flush_timeout: config.flush_timeout,
            },
            listener,
            rxs,
            inbox_tx.clone(),
            stats.clone(),
            shared.clone(),
            wake_rx,
            pool.clone(),
        );
        let reactor_handle = std::thread::Builder::new()
            .name(format!("mesh-reactor-{}", me.0))
            .spawn(move || reactor.run())
            .map_err(WireError::Io)?;

        let mesh = TcpMesh {
            me,
            n,
            inbox: inbox_rx,
            loopback: inbox_tx,
            links,
            stats,
            shared,
            pool,
            wake,
            reactor: Some(reactor_handle),
        };

        // Wait until every outbound link has handshaked *and* every peer
        // has dialed us, so no early round can race an unestablished
        // link.
        let deadline = Instant::now() + config.dial_timeout;
        let failure = loop {
            if let Some(e) = mesh.shared.fatal.lock().take() {
                break Some(e);
            }
            let out = mesh.shared.out_ready.load(Ordering::SeqCst);
            let inbound = mesh.shared.accepted.lock().iter().filter(|&&a| a).count();
            if out >= n - 1 && inbound >= n - 1 {
                break None;
            }
            if Instant::now() > deadline {
                break Some(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "{me}: only {out}/{} outbound and {inbound}/{} inbound links \
                         handshaked within the dial timeout",
                        n - 1,
                        n - 1
                    ),
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        };

        match failure {
            Some(e) => {
                mesh.shutdown();
                Err(e)
            }
            None => Ok(mesh),
        }
    }

    /// Our identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Socket-level counters.
    pub fn stats(&self) -> &Arc<MeshStats> {
        &self.stats
    }

    /// Sends `msg` stamped with `sent_round` to `to`. Self-sends bypass
    /// the sockets (process memory cannot fail); remote sends encode one
    /// frame and hand it to the reactor, blocking (and counting
    /// backpressure) when the link's outbox is full.
    ///
    /// The frame (`4-byte BE length ‖ sent_round ‖ message`) is built in
    /// a pooled buffer via the thread-local scratch encoder: steady-state
    /// sends allocate nothing once the pool has warmed up.
    pub fn send(&self, to: ProcessId, sent_round: u64, msg: &M) {
        if to == self.me {
            let _ = self.loopback.send(Inbound { from: self.me, sent_round, msg: msg.clone() });
            return;
        }
        let Some(tx) = self.links.get(to.index()).and_then(|l| l.as_ref()) else {
            return;
        };
        let framed = with_scratch_encoder(|enc| {
            enc.put_u64(sent_round);
            msg.encode_wire(enc);
            let payload = enc.as_bytes();
            let mut framed = self.pool.take();
            let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
            framed.extend_from_slice(&len.to_be_bytes());
            framed.extend_from_slice(payload);
            framed
        });
        match tx.try_send(Cmd::Frame(framed)) {
            Ok(()) => self.wake.wake(),
            Err(TrySendError::Full(cmd)) => {
                self.stats.backpressure.fetch_add(1, Ordering::Relaxed);
                // Wake first so the reactor drains the channel we are
                // about to block on.
                self.wake.wake();
                let _ = tx.send(cmd);
                self.wake.wake();
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Tears down the connection to `to`; the next frame re-dials and
    /// re-handshakes. Used by [`crate::proxy::SocketFate::Sever`].
    pub fn sever(&self, to: ProcessId) {
        if let Some(tx) = self.links.get(to.index()).and_then(|l| l.as_ref()) {
            let _ = tx.send(Cmd::Sever);
            self.wake.wake();
        }
    }

    /// Moves every currently queued inbound message into `buf`.
    pub fn drain_into(&self, buf: &mut Vec<Inbound<M>>) {
        let before = buf.len();
        buf.extend(self.inbox.try_iter());
        if buf.len() > before {
            // Space freed: let the reactor re-offer any parked message.
            self.wake.wake();
        }
    }

    /// Flushes queued frames (re-dialing where needed, bounded by
    /// [`MeshConfig::flush_timeout`]), closes every socket, and joins
    /// the reactor. Frames still undeliverable at the deadline are
    /// counted into [`MeshStats::frames_dropped`] and reported — which
    /// is survivable: the run is over for those peers.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Dropping the senders marks the command channels finished once
        // drained.
        for link in &mut self.links {
            *link = None;
        }
        self.wake.wake();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{config_digest, PROTOCOL_VERSION};
    use meba_core::SystemConfig;
    use meba_crypto::{DecodeError, Decoder, Encoder};
    use std::io::Write as _;
    use std::net::TcpStream;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn words(&self) -> u64 {
            1
        }
        fn wire_bytes(&self) -> u64 {
            self.wire_len()
        }
    }
    impl WireCodec for Num {
        fn encode_wire(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
        fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            Ok(Num(dec.get_u64()?))
        }
    }

    fn meshes_with(
        n: usize,
        domain: u64,
        tune: impl Fn(&mut MeshConfig) + Send + Sync + 'static,
    ) -> Vec<TcpMesh<Num>> {
        // The digest only has to *match* across peers; the mesh size is
        // independent of the configuration it hashes.
        let cfg = SystemConfig::new(n.max(3) | 1, 1).unwrap();
        let digest = config_digest(&cfg);
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let tune = Arc::new(tune);
        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let tune = tune.clone();
            let hello = Hello {
                version: PROTOCOL_VERSION,
                id: ProcessId(i as u32),
                config_digest: digest,
                domain,
            };
            handles.push(std::thread::spawn(move || {
                let mut mc = MeshConfig::new(ProcessId(i as u32), hello);
                tune(&mut mc);
                TcpMesh::establish(mc, listener, &addrs)
            }));
        }
        let mut meshes: Vec<TcpMesh<Num>> =
            handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        meshes.sort_by_key(|m| m.me().index());
        meshes
    }

    fn meshes(n: usize, domain: u64) -> Vec<TcpMesh<Num>> {
        meshes_with(n, domain, |_| {})
    }

    fn recv_one(mesh: &TcpMesh<Num>, deadline: Duration) -> Vec<Inbound<Num>> {
        let start = Instant::now();
        let mut got = Vec::new();
        while got.is_empty() && start.elapsed() < deadline {
            mesh.drain_into(&mut got);
            std::thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn three_process_mesh_delivers_frames() {
        let meshes = meshes(3, 0xaa);
        meshes[0].send(ProcessId(1), 7, &Num(41));
        meshes[0].send(ProcessId(0), 7, &Num(42)); // self: loopback
        let got = recv_one(&meshes[1], Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, ProcessId(0));
        assert_eq!(got[0].sent_round, 7);
        assert_eq!(got[0].msg, Num(41));
        let mut own = Vec::new();
        meshes[0].drain_into(&mut own);
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].msg, Num(42));
        let snap = meshes[0].stats().snapshot();
        assert_eq!(snap.frames_sent, 1, "self-delivery must not touch a socket");
        // frame = 4-byte prefix + 9-byte round + 9-byte Num encoding
        assert_eq!(snap.bytes_sent, 22);
        assert_eq!(snap.frames_dropped, 0);
        for m in meshes {
            m.shutdown();
        }
    }

    #[test]
    fn severed_link_reconnects_and_delivers_again() {
        let meshes = meshes(2, 0xbb);
        meshes[0].send(ProcessId(1), 0, &Num(1));
        assert_eq!(recv_one(&meshes[1], Duration::from_secs(5)).len(), 1);
        meshes[0].sever(ProcessId(1));
        // The next frame must trigger a re-dial + re-handshake.
        meshes[0].send(ProcessId(1), 1, &Num(2));
        let got = recv_one(&meshes[1], Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].msg, Num(2));
        assert_eq!(meshes[0].stats().snapshot().reconnects, 1);
        for m in meshes {
            m.shutdown();
        }
    }

    #[test]
    fn shutdown_flushes_frames_queued_behind_a_severed_link() {
        // Regression: a cleanly-stopping process must not drop frames
        // that still need a re-dial to be delivered (e.g. decide
        // certificates queued behind backpressure when the link dropped).
        let mut meshes = meshes(2, 0xcc);
        meshes[0].send(ProcessId(1), 0, &Num(1));
        assert_eq!(recv_one(&meshes[1], Duration::from_secs(5)).len(), 1);
        // Kill the socket, then queue frames that can only go out after a
        // reconnect, then shut down immediately.
        meshes[0].sever(ProcessId(1));
        for k in 0..5u64 {
            meshes[0].send(ProcessId(1), 1, &Num(100 + k));
        }
        let receiver = meshes.pop().unwrap();
        let sender = meshes.pop().unwrap();
        sender.shutdown();
        let start = Instant::now();
        let mut got = Vec::new();
        while got.len() < 5 && start.elapsed() < Duration::from_secs(5) {
            receiver.drain_into(&mut got);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.len(), 5, "graceful shutdown must flush queued frames");
        receiver.shutdown();
    }

    #[test]
    fn undeliverable_frames_are_counted_not_silent() {
        // Regression for the old writer path, which dropped a frame
        // *silently* after one failed resend. Point a sender at a peer
        // that has shut down for good, queue frames, and shut down with
        // a short flush budget: every one must land in `frames_dropped`.
        let mut meshes = meshes_with(2, 0xdd, |mc| {
            mc.flush_timeout = Duration::from_millis(200);
            mc.reconnect_backoff_cap = Duration::from_millis(10);
        });
        let receiver = meshes.pop().unwrap();
        let sender = meshes.pop().unwrap();
        // First failure: the peer shuts down entirely (connection dies).
        receiver.shutdown();
        // Queue frames that can never be delivered again.
        for k in 0..3u64 {
            sender.send(ProcessId(1), 2, &Num(k));
        }
        // Second failure: every re-dial during the flush fails too.
        let stats = sender.stats().clone();
        sender.shutdown();
        let dropped = stats.snapshot().frames_dropped;
        assert!(dropped >= 3, "expected ≥3 dropped frames counted, got {dropped}");
    }

    #[test]
    fn dial_jitter_is_deterministic_and_bounded() {
        use crate::reactor::dial_jitter;
        assert_eq!(dial_jitter(ProcessId(3), 0, Duration::ZERO), Duration::ZERO);
        let jit = Duration::from_millis(10);
        for attempt in 0..50 {
            let a = dial_jitter(ProcessId(3), attempt, jit);
            assert!(a < jit, "jitter {a:?} out of bounds");
            assert_eq!(a, dial_jitter(ProcessId(3), attempt, jit), "jitter must be deterministic");
        }
        // Different attempts spread across the range.
        assert_ne!(dial_jitter(ProcessId(3), 0, jit), dial_jitter(ProcessId(3), 1, jit));
    }

    #[test]
    fn mismatched_domain_cannot_establish() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let digest = config_digest(&cfg);
        let listeners: Vec<TcpListener> =
            (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let hello = Hello {
                version: PROTOCOL_VERSION,
                id: ProcessId(i as u32),
                config_digest: digest,
                domain: i as u64, // each side in its own domain
            };
            let mut mc = MeshConfig::new(ProcessId(i as u32), hello);
            mc.dial_timeout = Duration::from_millis(500);
            handles
                .push(std::thread::spawn(move || TcpMesh::<Num>::establish(mc, listener, &addrs)));
        }
        for h in handles {
            assert!(h.join().unwrap().is_err());
        }
    }

    #[test]
    fn stalled_dialer_is_reaped_at_the_handshake_deadline() {
        // The slow-loris byte-level case, driven directly: a raw TCP
        // client sends half a handshake frame and stalls; the reactor
        // must reject it at the deadline and keep serving real links.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let loris_target = listener.local_addr().unwrap();
        let other = TcpListener::bind("127.0.0.1:0").unwrap();
        let addrs = vec![loris_target, other.local_addr().unwrap()];
        let cfg = SystemConfig::new(3, 1).unwrap();
        let digest = config_digest(&cfg);
        let mk_hello = |i: u32| Hello {
            version: PROTOCOL_VERSION,
            id: ProcessId(i),
            config_digest: digest,
            domain: 0xf00d,
        };
        let mut mc0 = MeshConfig::new(ProcessId(0), mk_hello(0));
        mc0.handshake_timeout = Duration::from_millis(250);
        let mut mc1 = MeshConfig::new(ProcessId(1), mk_hello(1));
        mc1.handshake_timeout = Duration::from_millis(250);
        let addrs0 = addrs.clone();
        let h0 = std::thread::spawn(move || TcpMesh::<Num>::establish(mc0, listener, &addrs0));
        let h1 = std::thread::spawn(move || TcpMesh::<Num>::establish(mc1, other, &addrs));
        let m0 = h0.join().unwrap().unwrap();
        let m1 = h1.join().unwrap().unwrap();

        // The loris: half a frame header, then silence.
        let mut loris = TcpStream::connect(loris_target).unwrap();
        loris.write_all(&[0x00, 0x00]).unwrap();

        // Healthy traffic keeps flowing both ways while the loris sits.
        m1.send(ProcessId(0), 1, &Num(5));
        assert_eq!(recv_one(&m0, Duration::from_secs(5)).len(), 1);
        m0.send(ProcessId(1), 1, &Num(6));
        assert_eq!(recv_one(&m1, Duration::from_secs(5)).len(), 1);

        // After the deadline the loris is reaped and counted.
        let start = Instant::now();
        loop {
            if m0.stats().snapshot().handshake_rejects >= 1 {
                break;
            }
            assert!(start.elapsed() < Duration::from_secs(5), "stalled handshake was never reaped");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Mesh still live afterwards.
        m1.send(ProcessId(0), 2, &Num(9));
        assert_eq!(recv_one(&m0, Duration::from_secs(5)).len(), 1);
        drop(loris);
        m0.shutdown();
        m1.shutdown();
    }
}
