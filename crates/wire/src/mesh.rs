//! A full mesh of TCP links for one process.
//!
//! [`TcpMesh::establish`] turns a bound listener plus the peer address
//! list into `n - 1` outbound links (one dialed, handshaked socket each,
//! owned by a writer thread) and `n - 1` inbound links (accepted,
//! handshaked sockets, each owned by a reader thread feeding one bounded
//! inbox channel). The calling process thread then only ever touches two
//! ends: [`TcpMesh::send`] and [`TcpMesh::drain_into`].
//!
//! Design points, mirroring the threaded `meba-net` cluster:
//!
//! * **Bounded outboxes** — each writer thread sits behind a bounded
//!   channel; a full channel blocks the sender and counts into
//!   [`MeshStats::backpressure`] instead of buffering without bound.
//! * **Reconnect** — a failed or severed connection is re-dialed with
//!   capped exponential backoff (1 ms doubling to 250 ms), re-running the
//!   full handshake; [`MeshStats::reconnects`] counts successes.
//! * **Total decoding** — readers decode frames with the canonical
//!   [`WireCodec`]; a frame that fails to decode is counted
//!   ([`MeshStats::decode_errors`]) and dropped without disturbing framing.
//! * **Graceful shutdown** — [`TcpMesh::shutdown`] flushes writer queues,
//!   then closes every registered socket so blocked readers unblock, and
//!   joins all threads.

use crate::error::WireError;
use crate::frame::{read_frame, write_frame};
use crate::handshake::{client_handshake, server_handshake, Hello};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use meba_crypto::{Decoder, Encoder, ProcessId, WireCodec};
use meba_sim::Message;
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket-level counters for one mesh, all monotone.
#[derive(Debug, Default)]
pub struct MeshStats {
    /// Data frames written to sockets (handshake frames excluded).
    pub frames_sent: AtomicU64,
    /// Bytes written to sockets for data frames, *including* the 4-byte
    /// length prefix — the realized cost of a word on a real wire.
    pub bytes_sent: AtomicU64,
    /// Successful re-dials after a connection failed or was severed.
    pub reconnects: AtomicU64,
    /// Inbound frames whose payload failed canonical decoding.
    pub decode_errors: AtomicU64,
    /// Inbound connection attempts rejected by the handshake.
    pub handshake_rejects: AtomicU64,
    /// Times [`TcpMesh::send`] blocked on a full outbox.
    pub backpressure: AtomicU64,
}

impl MeshStats {
    /// Plain-number snapshot `(frames_sent, bytes_sent, reconnects,
    /// decode_errors, handshake_rejects, backpressure)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.frames_sent.load(Ordering::Relaxed),
            self.bytes_sent.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.decode_errors.load(Ordering::Relaxed),
            self.handshake_rejects.load(Ordering::Relaxed),
            self.backpressure.load(Ordering::Relaxed),
        )
    }
}

/// A decoded inbound message with its authenticated link-level sender
/// (the identity proven by the handshake on the socket it arrived on).
#[derive(Clone, Debug)]
pub struct Inbound<M> {
    /// Handshaked identity of the sending endpoint.
    pub from: ProcessId,
    /// Round the sender stamped into the frame.
    pub sent_round: u64,
    /// Decoded payload.
    pub msg: M,
}

/// Mesh construction parameters.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Our identity (must index into the address list).
    pub me: ProcessId,
    /// Our hello (identity, version, config digest, domain).
    pub hello: Hello,
    /// Capacity of the single inbound channel all readers feed.
    pub inbox_capacity: usize,
    /// Capacity of each per-link writer queue.
    pub outbox_capacity: usize,
    /// How long [`TcpMesh::establish`] keeps dialing an unreachable peer
    /// and waiting for inbound links before giving up.
    pub dial_timeout: Duration,
    /// Upper bound on the exponential re-dial backoff (doubling from
    /// 1 ms). Crash-restart tests lower it so a restarted process
    /// re-establishes its links within a round or two.
    pub reconnect_backoff_cap: Duration,
    /// Maximum deterministic jitter added to each re-dial sleep, derived
    /// from `(peer, attempt)`. Spreads the thundering herd of redials
    /// after a peer restarts; zero disables jitter entirely.
    pub reconnect_jitter: Duration,
}

impl MeshConfig {
    /// Defaults tuned for loopback clusters: 1024-deep channels, 10 s
    /// establishment budget, 250 ms backoff cap, no jitter.
    pub fn new(me: ProcessId, hello: Hello) -> Self {
        MeshConfig {
            me,
            hello,
            inbox_capacity: 1024,
            outbox_capacity: 1024,
            dial_timeout: Duration::from_secs(10),
            reconnect_backoff_cap: Duration::from_millis(250),
            reconnect_jitter: Duration::ZERO,
        }
    }
}

enum WriterCmd {
    Frame(Vec<u8>),
    Sever,
}

/// Everything a writer thread needs to (re-)establish its link.
struct LinkSpec {
    addr: SocketAddr,
    hello: Hello,
    peer: ProcessId,
    n: usize,
    backoff_cap: Duration,
    jitter: Duration,
}

/// Deterministic per-attempt jitter in `[0, max)`: a SplitMix64-style
/// hash of `(peer, attempt)`, so redials are reproducible yet spread out.
fn dial_jitter(spec: &LinkSpec, attempt: u64) -> Duration {
    if spec.jitter.is_zero() {
        return Duration::ZERO;
    }
    let mut z = (u64::from(spec.peer.0) << 32) ^ attempt ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let max_ns = spec.jitter.as_nanos().max(1) as u64;
    Duration::from_nanos(z % max_ns)
}

/// One process's view of the cluster network.
pub struct TcpMesh<M> {
    me: ProcessId,
    n: usize,
    inbox: Receiver<Inbound<M>>,
    loopback: Sender<Inbound<M>>,
    links: Vec<Option<Sender<WriterCmd>>>,
    stats: Arc<MeshStats>,
    stop: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    writer_handles: Vec<JoinHandle<()>>,
    acceptor_handle: Option<JoinHandle<()>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    _msg: PhantomData<fn() -> M>,
}

/// Handshake phase gets a read timeout so a silent dialer cannot wedge
/// the acceptor; cleared before protocol traffic.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

fn register(streams: &Mutex<Vec<TcpStream>>, s: &TcpStream) {
    if let Ok(clone) = s.try_clone() {
        streams.lock().push(clone);
    }
}

/// Dials `spec.addr` and completes the client handshake, retrying with
/// capped exponential backoff until success, `deadline`, or `stop`.
fn dial_link(
    spec: &LinkSpec,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<TcpStream, WireError> {
    let mut backoff = Duration::from_millis(1);
    let mut attempt = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Err(WireError::PeerClosed);
        }
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("dialing {} ({}) timed out", spec.peer, spec.addr),
                )));
            }
        }
        if let Ok(mut stream) = TcpStream::connect(spec.addr) {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
            // A permanent write timeout bounds how long a writer can
            // wedge on a peer that stopped reading, so shutdown can
            // always join it.
            let _ = stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT));
            match client_handshake(&mut stream, &spec.hello, spec.peer, spec.n) {
                Ok(_) => {
                    let _ = stream.set_read_timeout(None);
                    return Ok(stream);
                }
                Err(
                    e @ (WireError::VersionMismatch { .. }
                    | WireError::ConfigMismatch { .. }
                    | WireError::DomainMismatch { .. }
                    | WireError::PeerMismatch { .. }
                    | WireError::IdentityInvalid { .. }),
                ) => {
                    // A *semantic* rejection will not heal by retrying.
                    return Err(e);
                }
                Err(_) => {}
            }
        }
        std::thread::sleep(backoff + dial_jitter(spec, attempt));
        backoff = (backoff * 2).min(spec.backoff_cap);
        attempt += 1;
    }
}

fn writer_loop(
    rx: Receiver<WriterCmd>,
    initial: TcpStream,
    spec: LinkSpec,
    stats: Arc<MeshStats>,
    stop: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
) {
    let mut conn = Some(initial);
    loop {
        let cmd = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(cmd) => cmd,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) && rx.is_empty() {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        match cmd {
            WriterCmd::Sever => {
                if let Some(s) = conn.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
            }
            WriterCmd::Frame(payload) => {
                // One resend after a reconnect; a frame that fails twice
                // is lost (the run is over for that peer, or the fault is
                // persistent — either way the protocols must ride it out).
                for _attempt in 0..2 {
                    if conn.is_none() {
                        match dial_link(&spec, &stop, None) {
                            Ok(s) => {
                                register(&streams, &s);
                                stats.reconnects.fetch_add(1, Ordering::Relaxed);
                                conn = Some(s);
                            }
                            Err(_) => return,
                        }
                    }
                    let stream = conn.as_mut().expect("connection present");
                    match write_frame(stream, &payload) {
                        Ok(()) => {
                            stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                            stats.bytes_sent.fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
                            break;
                        }
                        Err(_) => {
                            conn = None;
                        }
                    }
                }
            }
        }
    }
}

fn reader_loop<M: Message + WireCodec>(
    mut stream: TcpStream,
    from: ProcessId,
    inbox: Sender<Inbound<M>>,
    stats: Arc<MeshStats>,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return,
        };
        let mut dec = Decoder::new(&payload);
        let decoded = dec
            .get_u64()
            .and_then(|sent_round| M::decode_wire(&mut dec).map(|msg| (sent_round, msg)))
            .and_then(|ok| dec.finish().map(|()| ok));
        match decoded {
            Ok((sent_round, msg)) => {
                if inbox.send(Inbound { from, sent_round, msg }).is_err() {
                    return;
                }
            }
            Err(_) => {
                stats.decode_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl<M: Message + WireCodec> TcpMesh<M> {
    /// Builds the full mesh: accepts `n - 1` handshaked inbound links on
    /// `listener` while dialing every peer in `addrs` (index = process
    /// id; our own slot is ignored). Returns once all `2(n - 1)` links
    /// are up, or fails after [`MeshConfig::dial_timeout`].
    pub fn establish(
        config: MeshConfig,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<Self, WireError> {
        let n = addrs.len();
        let me = config.me;
        assert!(me.index() < n, "mesh identity {me} out of range for {n} peers");
        let (inbox_tx, inbox_rx) = bounded(config.inbox_capacity.max(1));
        let stats = Arc::new(MeshStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let streams = Arc::new(Mutex::new(Vec::new()));
        let reader_handles = Arc::new(Mutex::new(Vec::new()));
        let accepted: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(vec![false; n]));

        listener.set_nonblocking(true).map_err(WireError::Io)?;
        let acceptor_handle = {
            let hello = config.hello.clone();
            let inbox_tx = inbox_tx.clone();
            let stats = stats.clone();
            let stop = stop.clone();
            let streams = streams.clone();
            let reader_handles = reader_handles.clone();
            let accepted = accepted.clone();
            std::thread::spawn(move || {
                acceptor_loop(
                    listener,
                    hello,
                    n,
                    inbox_tx,
                    stats,
                    stop,
                    streams,
                    reader_handles,
                    accepted,
                )
            })
        };

        let mut links: Vec<Option<Sender<WriterCmd>>> = (0..n).map(|_| None).collect();
        let mut writer_handles = Vec::with_capacity(n.saturating_sub(1));
        let deadline = Instant::now() + config.dial_timeout;
        let mut failure: Option<WireError> = None;
        for (j, &addr) in addrs.iter().enumerate() {
            if j == me.index() {
                continue;
            }
            let spec = LinkSpec {
                addr,
                hello: config.hello.clone(),
                peer: ProcessId(j as u32),
                n,
                backoff_cap: config.reconnect_backoff_cap.max(Duration::from_millis(1)),
                jitter: config.reconnect_jitter,
            };
            match dial_link(&spec, &stop, Some(deadline)) {
                Ok(stream) => {
                    register(&streams, &stream);
                    let (tx, rx) = bounded(config.outbox_capacity.max(1));
                    let stats = stats.clone();
                    let stop = stop.clone();
                    let streams = streams.clone();
                    writer_handles.push(std::thread::spawn(move || {
                        writer_loop(rx, stream, spec, stats, stop, streams)
                    }));
                    links[j] = Some(tx);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }

        // Wait until every peer has dialed us, so no early round can race
        // an unestablished inbound link.
        if failure.is_none() {
            loop {
                let inbound = accepted.lock().iter().filter(|&&a| a).count();
                if inbound >= n - 1 {
                    break;
                }
                if Instant::now() > deadline {
                    failure = Some(WireError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("{me}: only {inbound}/{} inbound links handshaked", n - 1),
                    )));
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        let mesh = TcpMesh {
            me,
            n,
            inbox: inbox_rx,
            loopback: inbox_tx,
            links,
            stats,
            stop,
            streams,
            writer_handles,
            acceptor_handle: Some(acceptor_handle),
            reader_handles,
            _msg: PhantomData,
        };
        match failure {
            Some(e) => {
                mesh.shutdown();
                Err(e)
            }
            None => Ok(mesh),
        }
    }

    /// Our identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Socket-level counters.
    pub fn stats(&self) -> &Arc<MeshStats> {
        &self.stats
    }

    /// Sends `msg` stamped with `sent_round` to `to`. Self-sends bypass
    /// the sockets (process memory cannot fail); remote sends encode one
    /// frame and hand it to the link's writer, blocking (and counting
    /// backpressure) when the outbox is full.
    pub fn send(&self, to: ProcessId, sent_round: u64, msg: &M) {
        if to == self.me {
            let _ = self.loopback.send(Inbound { from: self.me, sent_round, msg: msg.clone() });
            return;
        }
        let Some(tx) = self.links.get(to.index()).and_then(|l| l.as_ref()) else {
            return;
        };
        let mut enc = Encoder::new();
        enc.put_u64(sent_round);
        msg.encode_wire(&mut enc);
        match tx.try_send(WriterCmd::Frame(enc.into_bytes())) {
            Ok(()) => {}
            Err(TrySendError::Full(cmd)) => {
                self.stats.backpressure.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(cmd);
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }

    /// Tears down the connection to `to`; the next frame re-dials and
    /// re-handshakes. Used by [`crate::proxy::SocketFate::Sever`].
    pub fn sever(&self, to: ProcessId) {
        if let Some(tx) = self.links.get(to.index()).and_then(|l| l.as_ref()) {
            let _ = tx.send(WriterCmd::Sever);
        }
    }

    /// Moves every currently queued inbound message into `buf`.
    pub fn drain_into(&self, buf: &mut Vec<Inbound<M>>) {
        buf.extend(self.inbox.try_iter());
    }

    /// Flushes writer queues, closes every socket, and joins all mesh
    /// threads. Messages still in flight to peers that already shut down
    /// are lost, which is fine: the run is over for those peers.
    pub fn shutdown(mut self) {
        // Flush phase: wait (bounded) for every writer queue to drain
        // *before* raising the stop flag. With stop up, a writer that
        // needs a re-dial to deliver its remaining frames aborts
        // instead, dropping already-signed certificates still queued
        // behind backpressure.
        let flush_deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < flush_deadline
            && self.links.iter().flatten().any(|tx| !tx.is_empty())
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.stop.store(true, Ordering::SeqCst);
        // Dropping the senders lets writers drain their queues and exit.
        for link in &mut self.links {
            *link = None;
        }
        for h in self.writer_handles.drain(..) {
            let _ = h.join();
        }
        for s in self.streams.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.acceptor_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.reader_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn acceptor_loop<M: Message + WireCodec>(
    listener: TcpListener,
    hello: Hello,
    n: usize,
    inbox: Sender<Inbound<M>>,
    stats: Arc<MeshStats>,
    stop: Arc<AtomicBool>,
    streams: Arc<Mutex<Vec<TcpStream>>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
    accepted: Arc<Mutex<Vec<bool>>>,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
                let _ = stream.set_write_timeout(Some(HANDSHAKE_TIMEOUT));
                match server_handshake(&mut stream, &hello, n) {
                    Ok(theirs) => {
                        let _ = stream.set_read_timeout(None);
                        register(&streams, &stream);
                        accepted.lock()[theirs.id.index()] = true;
                        let inbox = inbox.clone();
                        let stats = stats.clone();
                        let handle = std::thread::spawn(move || {
                            reader_loop(stream, theirs.id, inbox, stats)
                        });
                        reader_handles.lock().push(handle);
                    }
                    Err(_) => {
                        stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{config_digest, PROTOCOL_VERSION};
    use meba_core::SystemConfig;
    use meba_crypto::DecodeError;

    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn words(&self) -> u64 {
            1
        }
        fn wire_bytes(&self) -> u64 {
            self.wire_len()
        }
    }
    impl WireCodec for Num {
        fn encode_wire(&self, enc: &mut Encoder) {
            enc.put_u64(self.0);
        }
        fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            Ok(Num(dec.get_u64()?))
        }
    }

    fn meshes(n: usize, domain: u64) -> Vec<TcpMesh<Num>> {
        // The digest only has to *match* across peers; the mesh size is
        // independent of the configuration it hashes.
        let cfg = SystemConfig::new(n.max(3) | 1, 1).unwrap();
        let digest = config_digest(&cfg);
        let listeners: Vec<TcpListener> =
            (0..n).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let hello = Hello {
                version: PROTOCOL_VERSION,
                id: ProcessId(i as u32),
                config_digest: digest,
                domain,
            };
            handles.push(std::thread::spawn(move || {
                TcpMesh::establish(MeshConfig::new(ProcessId(i as u32), hello), listener, &addrs)
            }));
        }
        let mut meshes: Vec<TcpMesh<Num>> =
            handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
        meshes.sort_by_key(|m| m.me().index());
        meshes
    }

    fn recv_one(mesh: &TcpMesh<Num>, deadline: Duration) -> Vec<Inbound<Num>> {
        let start = Instant::now();
        let mut got = Vec::new();
        while got.is_empty() && start.elapsed() < deadline {
            mesh.drain_into(&mut got);
            std::thread::sleep(Duration::from_millis(1));
        }
        got
    }

    #[test]
    fn three_process_mesh_delivers_frames() {
        let meshes = meshes(3, 0xaa);
        meshes[0].send(ProcessId(1), 7, &Num(41));
        meshes[0].send(ProcessId(0), 7, &Num(42)); // self: loopback
        let got = recv_one(&meshes[1], Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, ProcessId(0));
        assert_eq!(got[0].sent_round, 7);
        assert_eq!(got[0].msg, Num(41));
        let mut own = Vec::new();
        meshes[0].drain_into(&mut own);
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].msg, Num(42));
        let (frames, bytes, _, _, _, _) = meshes[0].stats().snapshot();
        assert_eq!(frames, 1, "self-delivery must not touch a socket");
        // frame = 4-byte prefix + 9-byte round + 9-byte Num encoding
        assert_eq!(bytes, 22);
        for m in meshes {
            m.shutdown();
        }
    }

    #[test]
    fn severed_link_reconnects_and_delivers_again() {
        let meshes = meshes(2, 0xbb);
        meshes[0].send(ProcessId(1), 0, &Num(1));
        assert_eq!(recv_one(&meshes[1], Duration::from_secs(5)).len(), 1);
        meshes[0].sever(ProcessId(1));
        // The next frame must trigger a re-dial + re-handshake.
        meshes[0].send(ProcessId(1), 1, &Num(2));
        let got = recv_one(&meshes[1], Duration::from_secs(5));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].msg, Num(2));
        let (_, _, reconnects, _, _, _) = meshes[0].stats().snapshot();
        assert_eq!(reconnects, 1);
        for m in meshes {
            m.shutdown();
        }
    }

    #[test]
    fn shutdown_flushes_frames_queued_behind_a_severed_link() {
        // Regression: a cleanly-stopping process must not drop frames
        // that still need a re-dial to be delivered (e.g. decide
        // certificates queued behind backpressure when the link dropped).
        let mut meshes = meshes(2, 0xcc);
        meshes[0].send(ProcessId(1), 0, &Num(1));
        assert_eq!(recv_one(&meshes[1], Duration::from_secs(5)).len(), 1);
        // Kill the socket, then queue frames that can only go out after a
        // reconnect, then shut down immediately.
        meshes[0].sever(ProcessId(1));
        for k in 0..5u64 {
            meshes[0].send(ProcessId(1), 1, &Num(100 + k));
        }
        let receiver = meshes.pop().unwrap();
        let sender = meshes.pop().unwrap();
        sender.shutdown();
        let start = Instant::now();
        let mut got = Vec::new();
        while got.len() < 5 && start.elapsed() < Duration::from_secs(5) {
            receiver.drain_into(&mut got);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.len(), 5, "graceful shutdown must flush queued frames");
        receiver.shutdown();
    }

    #[test]
    fn dial_jitter_is_deterministic_and_bounded() {
        let spec = |jitter| LinkSpec {
            addr: "127.0.0.1:1".parse().unwrap(),
            hello: Hello {
                version: PROTOCOL_VERSION,
                id: ProcessId(0),
                config_digest: config_digest(&SystemConfig::new(3, 1).unwrap()),
                domain: 0,
            },
            peer: ProcessId(3),
            n: 4,
            backoff_cap: Duration::from_millis(250),
            jitter,
        };
        let z = spec(Duration::ZERO);
        assert_eq!(dial_jitter(&z, 0), Duration::ZERO);
        let j = spec(Duration::from_millis(10));
        for attempt in 0..50 {
            let a = dial_jitter(&j, attempt);
            assert!(a < Duration::from_millis(10), "jitter {a:?} out of bounds");
            assert_eq!(a, dial_jitter(&j, attempt), "jitter must be deterministic");
        }
        // Different attempts spread across the range.
        assert_ne!(dial_jitter(&j, 0), dial_jitter(&j, 1));
    }

    #[test]
    fn mismatched_domain_cannot_establish() {
        let cfg = SystemConfig::new(3, 1).unwrap();
        let digest = config_digest(&cfg);
        let listeners: Vec<TcpListener> =
            (0..2).map(|_| TcpListener::bind("127.0.0.1:0").unwrap()).collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let mut handles = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            let addrs = addrs.clone();
            let hello = Hello {
                version: PROTOCOL_VERSION,
                id: ProcessId(i as u32),
                config_digest: digest,
                domain: i as u64, // each side in its own domain
            };
            let mut mc = MeshConfig::new(ProcessId(i as u32), hello);
            mc.dial_timeout = Duration::from_millis(500);
            handles
                .push(std::thread::spawn(move || TcpMesh::<Num>::establish(mc, listener, &addrs)));
        }
        for h in handles {
            assert!(h.join().unwrap().is_err());
        }
    }
}
