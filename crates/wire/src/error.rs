//! Structured transport errors.

use meba_crypto::{Digest, ProcessId};
use std::fmt;

/// Everything that can go wrong on a wire link.
///
/// Handshake mismatches carry both sides of the disagreement so a
/// rejected connection produces an actionable diagnostic, not just a
/// closed socket.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// A frame announced a length above [`crate::frame::MAX_FRAME_BYTES`].
    /// The frame is rejected *before* any allocation.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A frame payload failed canonical decoding.
    Decode(meba_crypto::DecodeError),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`crate::handshake::PROTOCOL_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// The peer was set up with a different system configuration
    /// (`n`, `t`, quorum, or session differ).
    ConfigMismatch {
        /// Digest of our configuration.
        ours: Digest,
        /// Digest the peer announced.
        theirs: Digest,
    },
    /// The peer runs in a different session domain (e.g. a stale cluster
    /// from a previous run still bound to the same ports).
    DomainMismatch {
        /// Our domain tag.
        ours: u64,
        /// The domain the peer announced.
        theirs: u64,
    },
    /// The peer identified as someone other than the process we dialed.
    PeerMismatch {
        /// Identity we expected at this address.
        expected: ProcessId,
        /// Identity the peer announced.
        got: ProcessId,
    },
    /// The peer announced an identity outside `p0..p(n-1)` or our own.
    IdentityInvalid {
        /// The identity the peer announced.
        got: ProcessId,
        /// System size.
        n: usize,
    },
    /// The connection closed before the exchange finished (commonly: the
    /// remote side rejected our hello and hung up).
    PeerClosed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket i/o error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Decode(e) => write!(f, "frame payload failed canonical decoding: {e}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, peer announced v{theirs}")
            }
            WireError::ConfigMismatch { ours, theirs } => {
                write!(f, "config digest mismatch: ours {ours}, peer announced {theirs}")
            }
            WireError::DomainMismatch { ours, theirs } => {
                write!(f, "session domain mismatch: ours {ours}, peer announced {theirs}")
            }
            WireError::PeerMismatch { expected, got } => {
                write!(f, "dialed {expected} but the peer identified as {got}")
            }
            WireError::IdentityInvalid { got, n } => {
                write!(f, "peer identity {got} invalid for a cluster of {n}")
            }
            WireError::PeerClosed => write!(f, "peer closed the connection mid-exchange"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::PeerClosed
        } else {
            WireError::Io(e)
        }
    }
}

impl From<meba_crypto::DecodeError> for WireError {
    fn from(e: meba_crypto::DecodeError) -> Self {
        WireError::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mismatches_render_both_sides() {
        let e = WireError::VersionMismatch { ours: 1, theirs: 7 };
        let s = e.to_string();
        assert!(s.contains("v1") && s.contains("v7"), "{s}");
        let e = WireError::DomainMismatch { ours: 3, theirs: 4 };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'), "{s}");
    }

    #[test]
    fn eof_maps_to_peer_closed() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(WireError::from(io), WireError::PeerClosed));
    }
}
