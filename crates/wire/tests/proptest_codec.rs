//! Property tests for the canonical codec's decode side.
//!
//! Three properties, over every protocol message family:
//!
//! 1. **Round-trip**: `decode(encode(m))` succeeds and re-encodes to the
//!    identical bytes (codecs have no `PartialEq`; byte equality is the
//!    stronger check anyway — it is what signatures are computed over).
//! 2. **Truncation is total**: every strict prefix of a valid encoding
//!    decodes to an error, never a panic.
//! 3. **Bit flips are total and canonical**: flipping any single bit
//!    either fails to decode, or decodes to a message whose re-encoding
//!    is exactly the mutated bytes — i.e. the decoder accepts *only*
//!    canonical encodings, so no two distinct byte strings decode to
//!    messages with the same encoding.
//! 4. **Borrowed ≡ owned**: decoding a message at an offset inside a
//!    shared frame buffer (the reactor's zero-copy path) accepts exactly
//!    the same byte strings as decoding it from a standalone owned
//!    buffer — same [`DecodeError`] on rejects, byte-identical
//!    re-encodes on accepts — over the full message-family corpus plus
//!    its truncations and mutations.

use meba_core::bb::{BbBaValue, BbMsg};
use meba_core::fallback::EchoMsg;
use meba_core::signing::*;
use meba_core::strong_ba::StrongBaMsg;
use meba_core::subprotocol::SkewEnvelope;
use meba_core::weak_ba::WeakBaMsg;
use meba_core::SystemConfig;
use meba_crypto::{trusted_setup, DecodeError, Decoder, Encoder, Signable, WireCodec};
use meba_fallback::{InstanceId, RecBaMsg, Scope};
use meba_sim::{SessionEnvelope, SessionId};
use meba_wire::Hello;
use proptest::prelude::*;

type WbaM = WeakBaMsg<u64, EchoMsg<u64>>;
type BbM = BbMsg<u64, EchoMsg<BbBaValue<u64>>>;
type SbaM = StrongBaMsg<EchoMsg<bool>>;
type RecM = RecBaMsg<u64>;

/// One constructed instance of every message family, parameterized by
/// the generated scalars so the search space covers varying field
/// values, not just varying variants.
fn corpus(v: u64, phase: u32, session: u64) -> Vec<Vec<u8>> {
    let cfg = SystemConfig::new(7, 1).unwrap();
    let (pki, keys) = trusted_setup(7, 1);
    let sig = sign_payload(&keys[0], &VoteSig { session, value: &v, level: 1 });
    let payload = VoteSig { session, value: &v, level: 1 };
    let shares: Vec<_> =
        keys.iter().take(cfg.quorum()).map(|k| sign_payload(k, &payload)).collect();
    let qc = pki.combine(cfg.quorum(), &payload.signing_bytes(), &shares).unwrap();
    let commit = CommitProof { level: 1, qc: qc.clone() };
    let decide = DecideProof { phase, qc: qc.clone() };
    let agg_shares: Vec<_> =
        keys.iter().take(3).map(|k| k.sign(&payload.signing_bytes())).collect();
    let agg = pki.aggregate(&payload.signing_bytes(), &agg_shares).unwrap();
    let inst = InstanceId::new(Scope::full(7), (phase % 8) as u8);

    let mut out: Vec<Vec<u8>> = Vec::new();
    let wba: Vec<WbaM> = vec![
        WeakBaMsg::Propose { phase, value: v },
        WeakBaMsg::Vote { phase, value: v, sig: sig.clone() },
        WeakBaMsg::CommitReply { phase, value: v, proof: commit.clone() },
        WeakBaMsg::CommitCert { phase, value: v, proof: commit },
        WeakBaMsg::Decide { phase, value: v, sig: sig.clone() },
        WeakBaMsg::FinalizeCert { phase, value: v, proof: decide.clone() },
        WeakBaMsg::HelpReq { sig: sig.clone() },
        WeakBaMsg::Help { value: v, proof: decide.clone() },
        WeakBaMsg::FallbackCert { qc: qc.clone(), decision: None },
        WeakBaMsg::FallbackCert { qc: qc.clone(), decision: Some((v, decide)) },
        WeakBaMsg::Fallback(SkewEnvelope { vstep: session, msg: EchoMsg(v) }),
    ];
    out.extend(wba.iter().map(|m| m.to_wire_bytes()));
    // Session multiplexing rides on the same codec.
    out.extend(
        wba.into_iter()
            .map(|msg| SessionEnvelope { session: SessionId(session), msg }.to_wire_bytes()),
    );

    let signed = BbBaValue::Signed { value: v, sig: sig.clone() };
    let quorum_v = BbBaValue::<u64>::IdkQuorum { phase, qc: qc.clone() };
    let bb: Vec<BbM> = vec![
        BbMsg::SenderValue { value: v, sig: sig.clone() },
        BbMsg::VetHelpReq { phase },
        BbMsg::VetValue { phase, value: signed.clone() },
        BbMsg::VetIdk { phase, sig: sig.clone() },
        BbMsg::Vetted { phase, value: quorum_v },
        BbMsg::Ba(WeakBaMsg::Propose { phase, value: signed }),
    ];
    out.extend(bb.iter().map(|m| m.to_wire_bytes()));

    let sba: Vec<SbaM> = vec![
        StrongBaMsg::Input { value: v.is_multiple_of(2), sig: sig.clone() },
        StrongBaMsg::Propose { value: true, qc: qc.clone() },
        StrongBaMsg::DecideShare { value: false, sig: sig.clone() },
        StrongBaMsg::DecideCert { value: true, qc: qc.clone() },
        StrongBaMsg::Fallback { decision: None },
        StrongBaMsg::Fallback { decision: Some((v % 2 == 1, qc.clone())) },
    ];
    out.extend(sba.iter().map(|m| m.to_wire_bytes()));

    let rec: Vec<RecM> = vec![
        RecBaMsg::GaInput { inst, value: v, sig: sig.clone() },
        RecBaMsg::GaEcho { inst, value: v, c1: qc.clone() },
        RecBaMsg::GaVote { inst, value: v, sig: sig.clone(), c1: qc.clone() },
        RecBaMsg::GaConflict {
            inst,
            v1: v,
            c1a: qc.clone(),
            v2: v.wrapping_add(1),
            c1b: qc.clone(),
        },
        RecBaMsg::GaCert2 { inst, value: v, c2: qc },
        RecBaMsg::DsForward { inst, ds_sender: keys[1].id(), value: v, agg },
        RecBaMsg::GcSend { inst, value: v, sig: sig.clone() },
        RecBaMsg::CertShare { inst, value: v, sig },
    ];
    out.extend(rec.iter().map(|m| m.to_wire_bytes()));

    out.push(
        Hello {
            version: 1,
            id: keys[2].id(),
            config_digest: meba_wire::config_digest(&cfg),
            domain: session,
        }
        .to_wire_bytes(),
    );
    out
}

/// Decodes `bytes` with the family that produced index `i` of the
/// corpus, returning the re-encoding if decoding succeeded.
fn redecode(i: usize, bytes: &[u8]) -> Option<Vec<u8>> {
    fn via<M: WireCodec>(bytes: &[u8]) -> Option<Vec<u8>> {
        M::from_wire_bytes(bytes).ok().map(|m| m.to_wire_bytes())
    }
    match i {
        0..=10 => via::<WbaM>(bytes),
        11..=21 => via::<SessionEnvelope<WbaM>>(bytes),
        22..=27 => via::<BbM>(bytes),
        28..=33 => via::<SbaM>(bytes),
        34..=41 => via::<RecM>(bytes),
        42 => via::<Hello>(bytes),
        _ => unreachable!("corpus has 43 entries"),
    }
}

/// Decodes `bytes` with the family that produced index `i` two ways —
/// standalone from an owned buffer (`from_wire_bytes`, the pre-refactor
/// shape) and embedded at an offset inside a larger frame via a shared
/// [`Decoder`] (the reactor's borrowed zero-copy path: `get_u64` round
/// header, `decode_wire`, `finish`) — returning `(owned, borrowed)`
/// results so properties can assert they are identical, errors included.
#[allow(clippy::type_complexity)]
fn redecode_both(
    i: usize,
    bytes: &[u8],
) -> (Result<Vec<u8>, DecodeError>, Result<Vec<u8>, DecodeError>) {
    fn standalone<M: WireCodec>(bytes: &[u8]) -> Result<Vec<u8>, DecodeError> {
        M::from_wire_bytes(bytes).map(|m| m.to_wire_bytes())
    }
    fn framed<M: WireCodec>(bytes: &[u8]) -> Result<Vec<u8>, DecodeError> {
        let mut enc = Encoder::new();
        enc.put_u64(0x0dd_ba11);
        let mut frame = enc.into_bytes();
        frame.extend_from_slice(bytes);
        let mut dec = Decoder::new(&frame);
        dec.get_u64().expect("frame header decodes");
        let m = M::decode_wire(&mut dec)?;
        dec.finish()?;
        Ok(m.to_wire_bytes())
    }
    fn both<M: WireCodec>(
        bytes: &[u8],
    ) -> (Result<Vec<u8>, DecodeError>, Result<Vec<u8>, DecodeError>) {
        (standalone::<M>(bytes), framed::<M>(bytes))
    }
    match i {
        0..=10 => both::<WbaM>(bytes),
        11..=21 => both::<SessionEnvelope<WbaM>>(bytes),
        22..=27 => both::<BbM>(bytes),
        28..=33 => both::<SbaM>(bytes),
        34..=41 => both::<RecM>(bytes),
        42 => both::<Hello>(bytes),
        _ => unreachable!("corpus has 43 entries"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_message_round_trips_canonically(
        v in any::<u64>(),
        phase in 1u32..64,
        session in any::<u64>(),
    ) {
        let corpus = corpus(v, phase, session);
        prop_assert_eq!(corpus.len(), 43);
        for (i, bytes) in corpus.iter().enumerate() {
            let re = redecode(i, bytes);
            prop_assert_eq!(
                re.as_deref(),
                Some(&bytes[..]),
                "family {} must decode and re-encode to identical bytes",
                i
            );
        }
    }

    #[test]
    fn truncated_encodings_error_and_never_panic(
        v in any::<u64>(),
        phase in 1u32..64,
        session in any::<u64>(),
    ) {
        let corpus = corpus(v, phase, session);
        for (i, bytes) in corpus.iter().enumerate() {
            for cut in 0..bytes.len() {
                prop_assert!(
                    redecode(i, &bytes[..cut]).is_none(),
                    "family {}: prefix of {} / {} bytes must not decode",
                    i, cut, bytes.len()
                );
            }
        }
    }

    #[test]
    fn bit_flips_error_or_stay_canonical(
        v in any::<u64>(),
        phase in 1u32..64,
        session in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let corpus = corpus(v, phase, session);
        for (i, bytes) in corpus.iter().enumerate() {
            let mut mutated = bytes.clone();
            let bit = (flip as usize) % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            if let Some(re) = redecode(i, &mutated) {
                prop_assert_eq!(
                    &re,
                    &mutated,
                    "family {}: an accepted mutation must still be canonical",
                    i
                );
            }
        }
    }

    #[test]
    fn borrowed_frame_decode_equals_owned_standalone_decode(
        v in any::<u64>(),
        phase in 1u32..64,
        session in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let corpus = corpus(v, phase, session);
        for (i, bytes) in corpus.iter().enumerate() {
            // Exact encodings: both paths accept with byte-identical
            // re-encodes.
            let (owned, borrowed) = redecode_both(i, bytes);
            prop_assert_eq!(
                owned.as_deref().ok(),
                Some(&bytes[..]),
                "family {}: owned decode of canonical bytes must round-trip",
                i
            );
            prop_assert_eq!(
                owned, borrowed,
                "family {}: borrowed decode diverged on canonical bytes",
                i
            );

            // Every truncation: both paths reject with the same error.
            for cut in 0..bytes.len() {
                let (o, b) = redecode_both(i, &bytes[..cut]);
                prop_assert!(o.is_err(), "family {}: prefix {} must not decode", i, cut);
                prop_assert_eq!(
                    o, b,
                    "family {}: divergent result at truncation {}",
                    i, cut
                );
            }

            // One bit flip: identical accept/reject decision, identical
            // error or identical re-encode.
            let mut mutated = bytes.clone();
            let bit = (flip as usize) % (mutated.len() * 8);
            mutated[bit / 8] ^= 1 << (bit % 8);
            let (o, b) = redecode_both(i, &mutated);
            prop_assert_eq!(
                o, b,
                "family {}: divergent result on bit-flip {}",
                i, bit
            );
        }
    }
}

/// Truncation totality at the raw decoder level too: every prefix of a
/// multi-field encoding errors cleanly.
#[test]
fn decoder_prefixes_are_total() {
    let cfg = SystemConfig::new(7, 1).unwrap();
    let hello = Hello {
        version: 1,
        id: meba_crypto::ProcessId(3),
        config_digest: meba_wire::config_digest(&cfg),
        domain: 7,
    };
    let bytes = hello.to_wire_bytes();
    for cut in 0..bytes.len() {
        let mut dec = Decoder::new(&bytes[..cut]);
        assert!(Hello::decode_wire(&mut dec).is_err());
    }
}
