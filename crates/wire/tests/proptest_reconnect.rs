//! Property tests for the reactor's reconnect schedule.
//!
//! Two properties over the whole input space:
//!
//! 1. **Bounded**: the delay before any re-dial attempt never exceeds
//!    `reconnect_backoff_cap + reconnect_jitter` (with a sub-millisecond
//!    cap treated as 1 ms) — a mesh can never invent a longer outage
//!    than its configuration allows, no matter how many attempts failed.
//! 2. **Deterministic**: the jitter component is a pure function of
//!    `(peer, attempt, jitter)`, so two runs of the same scenario
//!    produce the same redial schedule — reproducibility is part of the
//!    test-harness contract, jitter only decorrelates *different* peers.

use meba_crypto::ProcessId;
use meba_wire::{dial_jitter, reconnect_delay};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #[test]
    fn per_attempt_delay_never_exceeds_cap_plus_jitter(
        peer in 0u32..1024,
        attempt in 0u64..10_000,
        cap_ms in 0u64..10_000,
        jitter_ns in 0u64..2_000_000_000,
    ) {
        let cap = Duration::from_millis(cap_ms);
        let jitter = Duration::from_nanos(jitter_ns);
        let d = reconnect_delay(ProcessId(peer), attempt, cap, jitter);
        let bound = cap.max(Duration::from_millis(1)) + jitter;
        prop_assert!(
            d <= bound,
            "attempt {attempt} to p{peer}: delay {d:?} exceeds cap+jitter bound {bound:?}"
        );
        // The backoff component alone is also monotone up to the cap:
        // attempt 0 starts at 1 ms.
        prop_assert!(d >= Duration::from_millis(1).min(bound));
    }

    #[test]
    fn dial_jitter_is_deterministic_and_strictly_below_the_bound(
        peer in 0u32..1024,
        attempt in 0u64..10_000,
        jitter_ns in 1u64..2_000_000_000,
    ) {
        let jitter = Duration::from_nanos(jitter_ns);
        let a = dial_jitter(ProcessId(peer), attempt, jitter);
        let b = dial_jitter(ProcessId(peer), attempt, jitter);
        prop_assert_eq!(a, b, "jitter must be a pure function of (peer, attempt, jitter)");
        prop_assert!(a < jitter, "jitter {a:?} must stay strictly inside [0, {jitter:?})");
    }

    #[test]
    fn zero_jitter_disables_the_jitter_term(
        peer in 0u32..1024,
        attempt in 0u64..10_000,
    ) {
        prop_assert_eq!(
            dial_jitter(ProcessId(peer), attempt, Duration::ZERO),
            Duration::ZERO
        );
    }
}

/// The schedule decorrelates peers: with a non-trivial jitter window, at
/// least two of the first few peers get different jitters for the same
/// attempt (the whole point of per-peer jitter — no thundering herd when
/// everyone redials a restarted process at once).
#[test]
fn jitter_spreads_across_peers() {
    let jitter = Duration::from_millis(50);
    let js: Vec<Duration> = (0..8).map(|p| dial_jitter(ProcessId(p), 1, jitter)).collect();
    assert!(js.windows(2).any(|w| w[0] != w[1]), "all peers got identical jitter: {js:?}");
}
