//! E16 — the readiness-driven mesh's scale profile: rounds/sec and peak
//! OS threads for failure-free BB over *real loopback sockets*, against
//! the analytic thread cost of the retired thread-per-link design
//! (`n × (2(n−1) + 1)` I/O threads + n engine threads).
//!
//! The sweep stays at small n so the full bench suite remains fast; the
//! n = 65/101 coverage lives in `meba-testkit`'s `tcp_scale` integration
//! tests, which `scripts/check.sh` runs in release. Results are also
//! published as `BENCH_E16_mesh.json` at the repo root for the paper's
//! figure pipeline.

use meba_bench::runs::{run_mesh_scale_bb, MeshScaleStats};
use meba_bench::table::{flt, num, Table};
use std::time::Duration;

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E16_mesh.json");

fn json_entry(s: &MeshScaleStats) -> String {
    format!(
        "  {{\"n\": {}, \"words\": {}, \"des_words\": {}, \"rounds\": {}, \
         \"rounds_per_sec\": {:.2}, \"peak_threads\": {}, \"old_design_threads\": {}, \
         \"agreement\": {}}}",
        s.n,
        s.words,
        s.des_words,
        s.rounds,
        s.rounds_per_sec,
        s.peak_threads,
        s.old_design_threads,
        s.agreement
    )
}

fn main() {
    println!("=== E16: reactor-mesh scale profile (failure-free BB, real loopback sockets) ===");
    println!("old mesh = retired thread-per-link design: n(2(n-1)+1) I/O + n engine threads\n");

    let mut tab = Table::new(&[
        "n",
        "words",
        "des words",
        "rounds",
        "rounds/sec",
        "peak threads",
        "old mesh threads",
    ]);
    let mut entries = Vec::new();
    for (i, &n) in [9usize, 17, 33].iter().enumerate() {
        let s = run_mesh_scale_bb(n, Duration::from_millis(10), 0xe16 + i as u64);
        assert!(s.agreement, "E16 n={n}: all correct processes decide the sender's value");
        assert_eq!(s.words, s.des_words, "E16 n={n}: word totals must not depend on the transport");
        if s.peak_threads > 0 {
            let budget = 4 * n + 64;
            assert!(
                s.peak_threads <= budget,
                "E16 n={n}: peak {} OS threads exceeds O(n) budget {budget}",
                s.peak_threads
            );
        }
        tab.row(&[
            num(s.n as u64),
            num(s.words),
            num(s.des_words),
            num(s.rounds),
            flt(s.rounds_per_sec),
            num(s.peak_threads as u64),
            num(s.old_design_threads as u64),
        ]);
        entries.push(json_entry(&s));
    }
    tab.print();

    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write(JSON_PATH, &json).expect("write BENCH_E16_mesh.json");
    println!("\nwrote {} entries to BENCH_E16_mesh.json", entries.len());
}
