//! E5 — Figure 1: the composition of the solutions. "Each box uses the
//! primitives within it": BB runs vetting phases around a weak BA, which
//! runs leader phases and a help round around `A_fallback`.
//!
//! We reproduce the figure as a per-component word breakdown of adaptive
//! BB runs at increasing fault levels: the inner boxes light up one by
//! one (dissemination → vetting → weak-BA phases → help → fallback).

use meba_bench::runs::{run_bb, BbAdversary};
use meba_bench::table::{num, Table};

fn main() {
    println!("=== E5: Figure 1 — word breakdown per component (n = 17) ===\n");
    let n = 17usize;
    let scenarios = [
        ("f=0 (failure-free)", BbAdversary::FailureFree),
        ("f=2 wasteful leaders", BbAdversary::WastefulLeaders(2)),
        ("f=t crashed", BbAdversary::CrashFollowers((n - 1) / 2)),
        ("silent sender", BbAdversary::SilentSender),
    ];
    let components =
        ["bb/dissemination", "bb/vetting", "weak-ba/phases", "weak-ba/help", "fallback"];
    let mut header = vec!["component"];
    for (name, _) in &scenarios {
        header.push(name);
    }
    let mut tab = Table::new(&header);

    let stats: Vec<_> = scenarios.iter().map(|(_, adv)| run_bb(n, *adv)).collect();
    for s in &stats {
        assert!(s.agreement);
    }
    for comp in components {
        let mut row = vec![comp.to_string()];
        for s in &stats {
            row.push(num(s.by_component.get(comp).copied().unwrap_or(0)));
        }
        tab.row(&row);
    }
    let mut total = vec!["TOTAL".to_string()];
    for s in &stats {
        total.push(num(s.words));
    }
    tab.row(&total);
    tab.print();

    // Figure-1 structure checks: the failure-free run exercises only the
    // outer boxes; fallback words appear only once f reaches the bound.
    assert_eq!(stats[0].by_component.get("fallback"), None, "f=0 never reaches A_fallback");
    assert!(
        stats[2].by_component.get("fallback").copied().unwrap_or(0) > 0,
        "f=t must reach A_fallback"
    );
    println!("\nThe composition matches Figure 1: the adaptive BB uses the weak BA,");
    println!("which only uses the quadratic fallback when the run is already bad.");
}
