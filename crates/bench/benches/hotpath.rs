//! E20 — the zero-copy hot path: what the borrowed codec, pooled frame
//! buffers, primed-MAC batch verification, and calendar-queue DES buy.
//!
//! Four measurements, published as `BENCH_E20_hotpath.json`:
//!
//! 1. **Codec pipeline msgs/sec** — one message's full wire trip
//!    (encode → frame → read back → decode) under the *pre-refactor
//!    allocation pattern* (fresh `Vec` per encoder, per frame, per read,
//!    owned copies for decoded byte strings — reconstructed here
//!    faithfully from the retired implementations) against the zero-copy
//!    path (reused scratch encoder, reused frame/read buffers, borrowed
//!    decode). The acceptance bar is ≥ 2×.
//! 2. **Signature verification** — per-share `verify` vs `verify_batch`
//!    at certificate sizes k ∈ {5, 9, 17}, plus threshold-certificate
//!    verifications/sec. (Both sides ride the primed-MAC states; the
//!    pre-refactor per-verify key derivation measured ≈ 340k sigs/sec on
//!    this hardware — see EXPERIMENTS.md E20.)
//! 3. **DES n-sweep** — failure-free BB wall clock at n ∈ {257, 1025,
//!    4097} (and n = 10⁴ when `MEBA_E20_STRETCH=1`), with events/sec
//!    (process-steps per wall-clock second, n × rounds / elapsed). The
//!    acceptance bar is ≥ 1.5× events/sec against the pre-refactor
//!    BinaryHeap DES, whose committed n = 1025 baseline is 1.99 s.
//! 4. **Regression gate** — before overwriting the JSON, the committed
//!    `gate` floors are parsed back and each fresh measurement must stay
//!    above its floor (floors are committed at (1 − 0.15) × the baseline
//!    measurement, so a > 15% regression fails `cargo bench`).

use meba_bench::runs::run_des_bb;
use meba_bench::table::{flt, num, Table};
use meba_core::{signing::VoteSig, CommitProof, SystemConfig};
use meba_crypto::{
    trusted_setup, Decoder, Digest, Encoder, ProcessId, Signable, Signature, WireCodec,
};
use meba_wire::frame::{read_frame, write_frame};
use std::time::Instant;

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E20_hotpath.json");

/// Pre-refactor DES wall clock for the n = 1025 failure-free sweep point
/// (BinaryHeap event queue, per-delivery message clones), measured at
/// this PR's base commit on the same hardware as the committed JSON.
const BEFORE_DES_N1025_SECS: f64 = 1.99;

/// A round's certificate-bearing vote — the heaviest message shape on
/// the BB hot path (commit proof + signature share).
#[derive(Clone, Debug)]
struct HotMsg {
    round: u64,
    from: ProcessId,
    value: u64,
    proof: CommitProof,
    share: Signature,
}

impl WireCodec for HotMsg {
    fn encode_wire(&self, enc: &mut Encoder) {
        enc.put_u64(self.round);
        enc.put_id(self.from);
        enc.put_u64(self.value);
        self.proof.encode_wire(enc);
        self.share.encode_wire(enc);
    }
    fn decode_wire(dec: &mut Decoder<'_>) -> Result<Self, meba_crypto::DecodeError> {
        Ok(HotMsg {
            round: dec.get_u64()?,
            from: dec.get_id()?,
            value: dec.get_u64()?,
            proof: CommitProof::decode_wire(dec)?,
            share: Signature::decode_wire(dec)?,
        })
    }
}

/// The decoded fields of [`HotMsg`] under the *pre-refactor* byte-string
/// semantics: every length-prefixed field becomes an owned `Vec<u8>`
/// (the retired `get_bytes` copied; `Signature`/`ThresholdSignature`
/// decoding then converted the copy into its fixed array). Field-for-
/// field the same wire layout, so the two decoders read identical bytes.
#[allow(dead_code)]
struct OldHotMsg {
    round: u64,
    from: ProcessId,
    value: u64,
    level: u32,
    threshold: u64,
    digest: Digest,
    qc_tag: Vec<u8>,
    signer: ProcessId,
    sig_tag: Vec<u8>,
}

fn decode_old_style(bytes: &[u8]) -> OldHotMsg {
    let mut dec = Decoder::new(bytes);
    let out = OldHotMsg {
        round: dec.get_u64().unwrap(),
        from: dec.get_id().unwrap(),
        value: dec.get_u64().unwrap(),
        level: dec.get_u32().unwrap(),
        threshold: dec.get_u64().unwrap(),
        digest: dec.get_digest().unwrap(),
        qc_tag: dec.get_bytes().unwrap(),
        signer: dec.get_id().unwrap(),
        sig_tag: dec.get_bytes().unwrap(),
    };
    dec.finish().unwrap();
    out
}

fn per_sec(iters: u64, started: Instant) -> f64 {
    iters as f64 / started.elapsed().as_secs_f64()
}

/// Extracts `"key": <number>` from a flat JSON string (the bench JSONs
/// are written by this file, so the shape is known; no serde needed).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

fn main() {
    println!("=== E20: zero-copy hot path (codec, batch verify, calendar-queue DES) ===\n");
    let committed = std::fs::read_to_string(JSON_PATH).ok();

    let cfg = SystemConfig::new(33, 7).unwrap();
    let (pki, keys) = trusted_setup(33, 0xbeef);
    let value = 42u64;
    let payload = VoteSig { session: cfg.session(), value: &value, level: 3 };
    let shares: Vec<_> =
        keys.iter().take(cfg.quorum()).map(|k| k.sign(&payload.signing_bytes())).collect();
    let qc = pki.combine(cfg.quorum(), &payload.signing_bytes(), &shares).unwrap();
    let msg = HotMsg {
        round: 9,
        from: ProcessId(3),
        value,
        proof: CommitProof { level: 3, qc },
        share: shares[0].clone(),
    };
    let msg_bytes = msg.to_wire_bytes().len();

    // 1) Codec pipeline: encode → frame → read → decode, before vs after.
    let iters = 1_000_000u64;
    let mut sink = 0u64;
    let started = Instant::now();
    for _ in 0..iters {
        // Pre-refactor shape: every stage allocates.
        let payload = msg.to_wire_bytes();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        let len = u32::from_be_bytes(wire[..4].try_into().unwrap()) as usize;
        r = &r[4..];
        let frame = r[..len].to_vec(); // old read_frame: fresh Vec per frame
        sink ^= decode_old_style(&frame).round;
    }
    let before_codec = per_sec(iters, started);

    let mut enc = Encoder::new();
    let mut wire = Vec::new();
    let mut scratch = Vec::new();
    let started = Instant::now();
    for _ in 0..iters {
        // Zero-copy shape: reused encoder, reused frame + read buffers,
        // borrowed decode.
        msg.encode_wire_into(&mut enc);
        wire.clear();
        write_frame(&mut wire, enc.as_bytes()).unwrap();
        let mut r = &wire[..];
        read_frame(&mut r, &mut scratch).unwrap();
        let mut dec = Decoder::new(&scratch);
        sink ^= HotMsg::decode_wire(&mut dec).unwrap().round;
        dec.finish().unwrap();
    }
    let after_codec = per_sec(iters, started);
    let codec_speedup = after_codec / before_codec;

    let mut tab = Table::new(&["codec pipeline", "msgs/sec", "ns/msg"]);
    tab.row(&["before (alloc per stage)".into(), flt(before_codec), flt(1e9 / before_codec)]);
    tab.row(&["after (zero-copy)".into(), flt(after_codec), flt(1e9 / after_codec)]);
    tab.print();
    println!(
        "{msg_bytes}-byte certificate message; speedup {codec_speedup:.2}x (sink {})\n",
        sink & 1
    );
    assert!(
        codec_speedup >= 2.0,
        "E20 acceptance: zero-copy codec must be >= 2x the pre-refactor \
         pipeline (got {codec_speedup:.2}x)"
    );

    // 2) Verification: single vs batch at k ∈ {5, 9, 17}.
    let pre = payload.signing_bytes();
    let mut tab = Table::new(&["k", "single sigs/sec", "batch sigs/sec"]);
    let mut verify_rows = Vec::new();
    let mut batch_at_9 = 0.0f64;
    for k in [5usize, 9, 17] {
        let ks: Vec<_> = shares.iter().take(k).cloned().collect();
        let reps = 400_000u64 / k as u64;
        let started = Instant::now();
        for _ in 0..reps {
            for s in &ks {
                pki.verify(&pre, s).unwrap();
            }
        }
        let single = per_sec(reps * k as u64, started);
        let started = Instant::now();
        for _ in 0..reps {
            pki.verify_batch(&pre, &ks).unwrap();
        }
        let batch = per_sec(reps * k as u64, started);
        if k == 9 {
            batch_at_9 = batch;
        }
        tab.row(&[num(k as u64), flt(single), flt(batch)]);
        verify_rows.push(format!(
            "    {{\"k\": {k}, \"single_sigs_per_sec\": {single:.0}, \
             \"batch_sigs_per_sec\": {batch:.0}}}"
        ));
    }
    tab.print();

    let reps = 400_000u64;
    let started = Instant::now();
    for _ in 0..reps {
        pki.verify_threshold(&pre, &msg.proof.qc).unwrap();
    }
    let certs = per_sec(reps, started);
    println!("threshold certificates: {certs:.0} verifies/sec\n");

    // 3) DES n-sweep (failure-free BB, seed 0xe20).
    let stretch = std::env::var("MEBA_E20_STRETCH").is_ok_and(|v| v == "1");
    let mut ns = vec![257usize, 1025, 4097];
    if stretch {
        ns.push(10_000);
    }
    let mut tab = Table::new(&["n", "seconds", "words", "words/n", "rounds", "events/sec"]);
    let mut sweep_rows = Vec::new();
    let mut events_1025 = 0.0f64;
    let mut speedup_1025 = 0.0f64;
    for n in ns {
        let started = Instant::now();
        let s = run_des_bb(n, 0, 0xe20);
        let secs = started.elapsed().as_secs_f64();
        assert!(s.agreement, "E20 n={n}: agreement");
        let events = (n as u64 * s.rounds) as f64;
        let events_per_sec = events / secs;
        if n == 1025 {
            events_1025 = events_per_sec;
            speedup_1025 = BEFORE_DES_N1025_SECS / secs;
        }
        tab.row(&[
            num(n as u64),
            flt(secs),
            num(s.words),
            flt(s.words as f64 / n as f64),
            num(s.rounds),
            flt(events_per_sec),
        ]);
        sweep_rows.push(format!(
            "    {{\"n\": {n}, \"seconds\": {secs:.3}, \"words\": {}, \"rounds\": {}, \
             \"events_per_sec\": {events_per_sec:.0}}}",
            s.words, s.rounds
        ));
    }
    tab.print();
    println!(
        "n=1025 speedup vs pre-refactor BinaryHeap DES ({BEFORE_DES_N1025_SECS} s): \
         {speedup_1025:.2}x\n"
    );
    assert!(
        speedup_1025 >= 1.5,
        "E20 acceptance: calendar-queue DES must be >= 1.5x the pre-refactor \
         events/sec at n=1025 (got {speedup_1025:.2}x)"
    );

    // 4) Regression gate against the committed floors.
    if let Some(json) = &committed {
        let checks = [
            ("gate_codec_msgs_per_sec", after_codec),
            ("gate_verify_sigs_per_sec", batch_at_9),
            ("gate_des_events_per_sec", events_1025),
        ];
        for (key, fresh) in checks {
            let floor = json_number(json, key)
                .unwrap_or_else(|| panic!("committed BENCH_E20_hotpath.json lacks {key}"));
            assert!(
                fresh >= floor,
                "E20 regression gate: {key} fell below the committed floor \
                 ({fresh:.0} < {floor:.0}; floors are 0.85x the committed baseline, \
                 so this is a > 15% regression)"
            );
            println!("gate ok: {key} {fresh:.0} >= floor {floor:.0}");
        }
    } else {
        println!("gate skipped: no committed BENCH_E20_hotpath.json yet");
    }

    // Floors at (1 - 0.15) x this run's measurements; committed once and
    // then stable, so later runs are compared against the PR's baseline.
    let (floor_codec, floor_verify, floor_events) = match &committed {
        Some(json) => (
            json_number(json, "gate_codec_msgs_per_sec").unwrap(),
            json_number(json, "gate_verify_sigs_per_sec").unwrap(),
            json_number(json, "gate_des_events_per_sec").unwrap(),
        ),
        None => (after_codec * 0.85, batch_at_9 * 0.85, events_1025 * 0.85),
    };
    let json = format!(
        "{{\n  \"experiment\": \"E20\",\n  \"msg_bytes\": {msg_bytes},\n  \
         \"codec\": {{\"before_msgs_per_sec\": {before_codec:.0}, \
         \"after_msgs_per_sec\": {after_codec:.0}, \"speedup\": {codec_speedup:.2}}},\n  \
         \"verify\": [\n{}\n  ],\n  \
         \"verify_threshold_certs_per_sec\": {certs:.0},\n  \
         \"des_sweep\": [\n{}\n  ],\n  \
         \"des_speedup_n1025_vs_binaryheap\": {speedup_1025:.2},\n  \
         \"gate_tolerance\": 0.15,\n  \
         \"gate_codec_msgs_per_sec\": {floor_codec:.0},\n  \
         \"gate_verify_sigs_per_sec\": {floor_verify:.0},\n  \
         \"gate_des_events_per_sec\": {floor_events:.0}\n}}\n",
        verify_rows.join(",\n"),
        sweep_rows.join(",\n"),
    );
    std::fs::write(JSON_PATH, &json).expect("write BENCH_E20_hotpath.json");
    println!("\nwrote BENCH_E20_hotpath.json");
}
