//! E19 — certified state transfer: catch-up cost scales with the
//! outage, not the log.
//!
//! One replica of an n = 9 service deployment crash-restarts across
//! `1, 2, 4, 6` consecutive slot openings of an 18-slot log, and then
//! across a fixed 2-opening outage of logs of growing length, catching
//! back up by certified state transfer each time. Transfer traffic is
//! metered under its own `service/transfer` component tag, so the two
//! sweeps separate the claims:
//!
//! * transfer bytes grow with the **outage length** (more slept-through
//!   slots → more certified entries shipped), and
//! * at a fixed outage they stay **flat in the log length** — anti-
//!   entropy asks for the missing suffix, it never replays history.
//!
//! Every cell asserts convergence: identical applied prefixes, zero
//! `⊥`-retired slots, zero transferred-versus-local conflicts, the
//! journal double-bind audit, and a victim that actually adopted the
//! slept-through slots by transfer.
//!
//! Results are published as `BENCH_E19_statetransfer.json` at the repo
//! root.

use meba_bench::runs::{run_state_transfer, StateTransferStats};
use meba_bench::table::{flt, num, Table};

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E19_statetransfer.json");

fn json_entry(s: &StateTransferStats) -> String {
    format!(
        "  {{\"n\": {}, \"slots\": {}, \"outage_slots\": {}, \"slots_transferred\": {}, \
         \"certs_verified\": {}, \"vouches_accepted\": {}, \"transfer_words\": {}, \
         \"transfer_bytes\": {}, \"transfer_messages\": {}, \"total_bytes\": {}, \
         \"recovery_rounds\": {}, \"rounds\": {}, \"agreement\": {}, \"bot_slots\": {}}}",
        s.n,
        s.slots,
        s.outage_slots,
        s.slots_transferred,
        s.certs_verified,
        s.vouches_accepted,
        s.transfer_words,
        s.transfer_bytes,
        s.transfer_messages,
        s.total_bytes,
        s.recovery_rounds,
        s.rounds,
        s.agreement,
        s.bot_slots
    )
}

fn main() {
    let n = 9usize;
    println!("=== E19: certified state transfer (n = {n}, one restarted replica) ===\n");

    let mut tab = Table::new(&[
        "slots",
        "outage",
        "transferred",
        "certs",
        "vouched",
        "xfer words",
        "xfer bytes",
        "xfer share",
        "recovery rounds",
    ]);
    let mut entries = Vec::new();

    // Axis 1: outage length at a fixed 18-slot log.
    let mut outage_cells: Vec<StateTransferStats> = Vec::new();
    for &outage in &[1u64, 2, 4, 6] {
        let s = run_state_transfer(n, 18, outage);
        tab.row(&[
            num(s.slots),
            num(s.outage_slots),
            num(s.slots_transferred),
            num(s.certs_verified),
            num(s.vouches_accepted),
            num(s.transfer_words),
            num(s.transfer_bytes),
            flt(s.transfer_bytes as f64 / s.total_bytes.max(1) as f64),
            num(s.recovery_rounds),
        ]);
        entries.push(json_entry(&s));
        outage_cells.push(s);
    }

    // Axis 2: log length at a fixed 2-opening outage.
    let mut log_cells: Vec<StateTransferStats> = Vec::new();
    for &slots in &[18u64, 27, 36] {
        let s = run_state_transfer(n, slots, 2);
        tab.row(&[
            num(s.slots),
            num(s.outage_slots),
            num(s.slots_transferred),
            num(s.certs_verified),
            num(s.vouches_accepted),
            num(s.transfer_words),
            num(s.transfer_bytes),
            flt(s.transfer_bytes as f64 / s.total_bytes.max(1) as f64),
            num(s.recovery_rounds),
        ]);
        entries.push(json_entry(&s));
        log_cells.push(s);
    }
    tab.print();

    // Acceptance: transfer bytes grow with the outage…
    let short = &outage_cells[0];
    let long = outage_cells.last().unwrap();
    let outage_growth = long.transfer_bytes as f64 / short.transfer_bytes.max(1) as f64;
    println!(
        "\noutage 1 → {} openings: transfer bytes {} → {} ({outage_growth:.1}x)",
        long.outage_slots, short.transfer_bytes, long.transfer_bytes
    );
    assert!(
        long.transfer_bytes > short.transfer_bytes,
        "E19: a longer outage must ship more transfer bytes"
    );

    // …and stay flat in the log length at a fixed outage. "Flat" allows
    // the periodic-refetch overhead of a longer run, bounded well under
    // proportional growth (2× log must stay under 1.5× bytes).
    let base = &log_cells[0];
    let longest = log_cells.last().unwrap();
    let log_growth = longest.transfer_bytes as f64 / base.transfer_bytes.max(1) as f64;
    println!(
        "log {} → {} slots at outage 2: transfer bytes {} → {} ({log_growth:.2}x)",
        base.slots, longest.slots, base.transfer_bytes, longest.transfer_bytes
    );
    assert!(
        log_growth < 1.5,
        "E19: transfer bytes must not scale with log length (got {log_growth:.2}x over a 2x log)"
    );

    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write(JSON_PATH, &json).expect("write BENCH_E19_statetransfer.json");
    println!("\nwrote {} entries to BENCH_E19_statetransfer.json", entries.len());
}
