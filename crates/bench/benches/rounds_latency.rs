//! E7 — decision latency in rounds vs the actual number of failures.
//!
//! The protocols' *word* cost is the headline, but their round structure
//! is adaptive too: with `f` wasteful leaders the first correct leader
//! (phase `f + 1`) decides everyone, so latency grows by 5 rounds per
//! fault until the fallback regime adds the doubled-round `A_fallback`.

use meba_bench::runs::{run_bb, run_weak_ba, BbAdversary, WbaAdversary};
use meba_bench::table::{num, Table};

fn main() {
    let n = 33usize;
    let t = (n - 1) / 2;
    let bound = (n - t - 1) / 2;
    println!("=== E7: weak BA decision latency vs f (n = {n}) ===\n");
    let mut tab =
        Table::new(&["f", "first decision", "last decision", "total rounds", "fallback?"]);
    let mut prev_first = 0;
    for f in 0..=(bound + 2) {
        let adv = if f == 0 { WbaAdversary::FailureFree } else { WbaAdversary::WastefulLeaders(f) };
        let s = run_weak_ba(n, adv);
        assert!(s.agreement);
        tab.row(&[
            num(f as u64),
            num(s.decided_first),
            num(s.decided_last),
            num(s.rounds),
            s.fallback_used.to_string(),
        ]);
        if f > 0 && f <= bound && prev_first > 0 {
            assert!(s.decided_first >= prev_first, "each wasted phase delays the first decision");
        }
        prev_first = s.decided_first;
    }
    tab.print();
    println!("\nBelow the bound the first decision moves 5 rounds (one phase) per");
    println!("extra Byzantine leader; past it the doubled-round fallback dominates.");

    println!("\n=== E7: BB latency at f = 0 vs n (constant phase-1 decision) ===\n");
    let mut t2 = Table::new(&["n", "weak-BA decides at", "schedule ends at"]);
    for n in [9usize, 17, 33, 65] {
        let s = run_bb(n, BbAdversary::FailureFree);
        assert!(s.agreement);
        t2.row(&[num(n as u64), num(s.decided_first), num(s.rounds)]);
    }
    t2.print();
    println!("\nThe embedded weak BA settles in its first phase regardless of n (the");
    println!("decision round grows only because the vetting prologue is n phases");
    println!("long on the fixed schedule; all of them are silent and free).");
}
