//! E17 — the δ-estimate sweep: how the quorum-or-timeout round driver
//! degrades as the local timer drifts from 0.25× to 4× the nominal δ,
//! against a fixed network truth (link delay < δ/2, clock skew ≤ δ/8).
//!
//! The paper's synchrony precondition (delay + skew < round length,
//! Lemma 18) holds for every timer above 0.625 δ and breaks below it.
//! Each factor runs under both advance quorums: the full inbox
//! (quorum = n, advance early only when nothing can be stranded) and the
//! protocol quorum (n − t, which advances past straggler traffic and
//! pays for it in help words). Results are published as
//! `BENCH_E17_timing.json` at the repo root for the figure pipeline.

use meba_bench::runs::{run_timing_sweep, TimingSweepStats};
use meba_bench::table::{flt, num, Table};

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E17_timing.json");

const FACTORS: [f64; 6] = [0.25, 0.5, 0.75, 1.0, 2.0, 4.0];

fn json_entry(s: &TimingSweepStats) -> String {
    format!(
        "  {{\"timeout_factor\": {}, \"full_inbox_quorum\": {}, \"completed\": {}, \
         \"agreement\": {}, \"decided_input\": {}, \"rounds\": {}, \"words\": {}, \"baseline_words\": {}, \
         \"quorum_advances\": {}, \"timeout_advances\": {}}}",
        s.timeout_factor,
        s.full_inbox_quorum,
        s.completed,
        s.agreement,
        s.decided_input,
        s.rounds,
        s.words,
        s.baseline_words,
        s.quorum_advances,
        s.timeout_advances
    )
}

fn main() {
    println!("=== E17: δ-estimate sweep (failure-free BB, DES, delay < δ/2, skew ≤ δ/8) ===");
    println!("precondition delay + skew < timer holds above 0.625 δ, breaks below\n");

    let mut tab = Table::new(&[
        "timer (×δ)",
        "quorum",
        "completed",
        "rounds",
        "words",
        "baseline",
        "quorum adv",
        "timeout adv",
    ]);
    let mut entries = Vec::new();
    for (i, &tf) in FACTORS.iter().enumerate() {
        for full_inbox in [true, false] {
            let s = run_timing_sweep(tf, full_inbox, 0xe17 + i as u64);
            assert!(s.agreement, "E17 tf={tf}: agreement must survive any δ-estimate");
            if tf >= 0.75 && full_inbox {
                // Precondition honored + nothing stranded: the driver
                // must not cost a single extra word over lockstep.
                assert!(s.completed, "E17 tf={tf}: in-precondition run must decide");
                assert!(s.decided_input, "E17 tf={tf}: validity inside the precondition");
                assert_eq!(
                    s.words, s.baseline_words,
                    "E17 tf={tf}: full-inbox quorum must match the lockstep word bill"
                );
            }
            tab.row(&[
                flt(s.timeout_factor),
                (if s.full_inbox_quorum { "n" } else { "n-t" }).to_string(),
                (if s.completed { "yes" } else { "NO" }).to_string(),
                num(s.rounds),
                num(s.words),
                num(s.baseline_words),
                num(s.quorum_advances),
                num(s.timeout_advances),
            ]);
            entries.push(json_entry(&s));
        }
    }
    tab.print();

    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write(JSON_PATH, &json).expect("write BENCH_E17_timing.json");
    println!("\nwrote {} entries to BENCH_E17_timing.json", entries.len());
}
