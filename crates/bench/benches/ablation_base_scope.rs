//! E10 — ablation of the recursion base-case size in the fallback BA.
//!
//! DESIGN.md's recursive `A_fallback` bottoms out in Dolev–Strong
//! interactive consistency once a scope has at most `B` members. Small `B`
//! means more recursion levels (more GAs and certificate exchanges);
//! large `B` means IC's all-pairs forwarding (`O(B³)`-ish words) dominates.
//! This bench sweeps `B` and shows the cost valley — and that correctness
//! is independent of `B` (it is a performance knob only).

use meba_bench::table::{flt, num, Table};
use meba_core::{LockstepAdapter, SubProtocol, SystemConfig};
use meba_crypto::{trusted_setup, ProcessId};
use meba_fallback::{recursive_ba_steps_with_base, RecBaMsg, RecursiveBa};
use meba_sim::{AnyActor, IdleActor, SimBuilder};

fn run(n: usize, base: usize, crashes: usize) -> (u64, u64, bool) {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0x10);
    let crashed: Vec<u32> = (0..crashes as u32).map(|i| 2 * i + 1).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = RecBaMsg<u64>>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if crashed.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let rb = RecursiveBa::with_base(cfg, id, key, pki.clone(), 5u64, base);
            actors.push(Box::new(LockstepAdapter::new(id, rb)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &crashed {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(100 * n as u64 + 1_000).expect("terminates");
    let mut agree = true;
    let mut last = None;
    for i in (0..n as u32).filter(|i| !crashed.contains(i)) {
        let a: &LockstepAdapter<RecursiveBa<u64>> =
            sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        let out = a.inner().output().expect("decided");
        if let Some(prev) = last {
            agree &= prev == out;
        }
        last = Some(out);
    }
    agree &= last == Some(5);
    (sim.metrics().correct_words(), sim.metrics().rounds, agree)
}

fn main() {
    let n = 33usize;
    println!("=== E10: fallback base-case size ablation (n = {n}) ===\n");
    let mut tab =
        Table::new(&["base B", "words f=0", "words/n^2", "rounds", "words f=t", "correct?"]);
    let t = (n - 1) / 2;
    let mut best: Option<(usize, u64)> = None;
    for base in [2usize, 4, 8, 16] {
        let (w0, rounds, ok0) = run(n, base, 0);
        let (wt, _, okt) = run(n, base, t);
        assert!(ok0 && okt, "correctness must be independent of B (B = {base})");
        if best.is_none_or(|(_, bw)| w0 < bw) {
            best = Some((base, w0));
        }
        tab.row(&[
            num(base as u64),
            num(w0),
            flt(w0 as f64 / (n * n) as f64),
            num(rounds),
            num(wt),
            "yes".to_string(),
        ]);
        // Sanity: the planner agrees on the round count order.
        assert!(rounds >= recursive_ba_steps_with_base(n, base));
    }
    tab.print();
    let (b, _) = best.unwrap();
    println!("\ncheapest base at n = {n}: B = {b}");
    println!("Correctness held for every B — the base size is purely a constant-");
    println!("factor knob (the valley is shallow, within ~10% across 2..16), while");
    println!("larger B cuts the round count sharply (fewer recursion levels).");
}
