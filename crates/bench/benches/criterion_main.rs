//! T1 — wall-clock microbenchmarks (criterion): crypto primitives and
//! whole-protocol simulation runs. These complement the word-count
//! experiments with CPU-time sanity numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meba_bench::runs::{run_bb, run_strong_ba, run_weak_ba, BbAdversary, WbaAdversary};
use meba_crypto::{trusted_setup, Signable};

fn bench_crypto(c: &mut Criterion) {
    let (pki, keys) = trusted_setup(33, 1);
    let msg = b"benchmark message";
    c.bench_function("crypto/sign", |b| b.iter(|| keys[0].sign(msg)));
    let sig = keys[0].sign(msg);
    c.bench_function("crypto/verify", |b| b.iter(|| pki.verify(msg, &sig).unwrap()));
    let shares: Vec<_> = keys.iter().take(25).map(|k| k.sign(msg)).collect();
    c.bench_function("crypto/combine_25_of_33", |b| {
        b.iter(|| pki.combine(25, msg, &shares).unwrap())
    });
    let qc = pki.combine(25, msg, &shares).unwrap();
    c.bench_function("crypto/verify_threshold", |b| {
        b.iter(|| pki.verify_threshold(msg, &qc).unwrap())
    });
    let payload = meba_core::signing::HelpReqSig { session: 0 };
    c.bench_function("crypto/payload_encoding", |b| b.iter(|| payload.signing_bytes()));
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol-sim");
    g.sample_size(10);
    for n in [9usize, 17, 33] {
        g.bench_with_input(BenchmarkId::new("bb_failure_free", n), &n, |b, &n| {
            b.iter(|| run_bb(n, BbAdversary::FailureFree))
        });
        g.bench_with_input(BenchmarkId::new("weak_ba_failure_free", n), &n, |b, &n| {
            b.iter(|| run_weak_ba(n, WbaAdversary::FailureFree))
        });
        g.bench_with_input(BenchmarkId::new("strong_ba_failure_free", n), &n, |b, &n| {
            b.iter(|| run_strong_ba(n, 0, false))
        });
    }
    g.bench_with_input(BenchmarkId::new("weak_ba_fallback_f_eq_t", 17), &17usize, |b, &n| {
        b.iter(|| run_weak_ba(n, WbaAdversary::CrashFollowers((n - 1) / 2)))
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_protocols);
criterion_main!(benches);
