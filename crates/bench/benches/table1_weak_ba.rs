//! E2 — Table 1, row "Weak BA": upper bound `O(n(f+1))` multi-valued,
//! lower bound `Ω(n)`.
//!
//! Sweeps `f` under wasteful Byzantine leaders (cost-maximizing) and `n`
//! at `f = 0`, and shows the quadratic regime once `f ≥ (n-t-1)/2` forces
//! the fallback.

use meba_bench::fit::{fit_affine, growth_order};
use meba_bench::runs::{run_weak_ba, WbaAdversary};
use meba_bench::table::{flt, num, Table};

fn main() {
    let n = 33usize;
    let t = (n - 1) / 2;
    let bound = (n - t - 1) / 2;
    println!("=== E2: weak BA — words vs f (n = {n}, t = {t}, adaptive bound = {bound}) ===\n");
    let mut tab = Table::new(&["f", "words", "words/(n(f+1))", "fallback?", "non-silent leaders"]);
    let mut staircase = Vec::new();
    for f in 0..=t {
        // Stop the sweep shortly after the fallback regime begins.
        if f > bound + 2 {
            break;
        }
        let adv = if f == 0 { WbaAdversary::FailureFree } else { WbaAdversary::WastefulLeaders(f) };
        let s = run_weak_ba(n, adv);
        assert!(s.agreement, "agreement at f={f}");
        if !s.fallback_used {
            staircase.push((f as f64, s.words as f64));
        }
        tab.row(&[
            num(f as u64),
            num(s.words),
            flt(s.words as f64 / (n as f64 * (f + 1) as f64)),
            s.fallback_used.to_string(),
            num(s.nonsilent_leaders as u64),
        ]);
    }
    tab.print();
    let (a, b) = fit_affine(&staircase);
    println!(
        "\nadaptive regime fit: words ≈ {a:.0} + {b:.1}·f = n·({:.2} + {:.2}·f)",
        a / n as f64,
        b / n as f64
    );
    println!("both coefficients Θ(n) ⇒ words = O(n·(f+1)).");
    assert!(b > 0.5 * n as f64 && a < 20.0 * n as f64);

    println!("\n=== E2: words vs n at f = 0 ===\n");
    let mut t2 = Table::new(&["n", "words", "words/n"]);
    let mut lin = Vec::new();
    for n in [9usize, 17, 33, 65, 97] {
        let s = run_weak_ba(n, WbaAdversary::FailureFree);
        assert!(s.agreement && !s.fallback_used);
        lin.push((n as f64, s.words as f64));
        t2.row(&[num(n as u64), num(s.words), flt(s.words as f64 / n as f64)]);
    }
    t2.print();
    let o = growth_order(&lin);
    println!("\ngrowth order at f = 0: n^{o:.2} (Table 1 lower bound is Ω(n))");
    assert!(o < 1.3, "failure-free weak BA must be ~linear");

    println!("\n=== E2: the fallback regime is quadratic, not worse ===\n");
    let mut t3 = Table::new(&["n", "f=t words", "words/n^2"]);
    let mut quad = Vec::new();
    for n in [9usize, 17, 33] {
        let t = (n - 1) / 2;
        let s = run_weak_ba(n, WbaAdversary::CrashFollowers(t));
        assert!(s.agreement);
        assert!(s.fallback_used, "f = t must fall back");
        quad.push((n as f64, s.words as f64));
        t3.row(&[num(n as u64), num(s.words), flt(s.words as f64 / (n * n) as f64)]);
    }
    t3.print();
    let o = growth_order(&quad);
    println!("\ngrowth order at f = t: n^{o:.2} (worst case O(n²), never cubic)");
    assert!(o < 2.6, "fallback regime must stay quadratic-order");
}
