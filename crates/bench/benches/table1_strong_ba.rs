//! E3 — Table 1, row "Strong BA":
//!
//! * our Algorithm 5: `O(n)` words binary, failure-free (Section 7);
//! * any failure: `O(n²)` via the fallback;
//! * the multi-valued `O(n²)` fallback itself (Momose–Ren's role),
//!   measured standalone.

use meba_bench::fit::growth_order;
use meba_bench::runs::{run_recursive_ba, run_strong_ba};
use meba_bench::table::{flt, num, Table};

fn main() {
    println!("=== E3: strong BA (Alg 5) — failure-free case is linear ===\n");
    let mut t1 = Table::new(&["n", "words", "words/n", "rounds to decide"]);
    let mut lin = Vec::new();
    for n in [9usize, 17, 33, 65, 97] {
        let s = run_strong_ba(n, 0, false);
        assert!(s.agreement && !s.fallback_used, "Lemma 8 at n={n}");
        lin.push((n as f64, s.words as f64));
        t1.row(&[num(n as u64), num(s.words), flt(s.words as f64 / n as f64), num(s.decided_last)]);
    }
    t1.print();
    let o = growth_order(&lin);
    println!("\ngrowth order at f = 0: n^{o:.2} — the paper's O(n) failure-free bound");
    assert!(o < 1.2);

    println!("\n=== E3: one crashed follower forces the quadratic path ===\n");
    let mut t2 = Table::new(&["n", "f", "words", "words/n^2", "fallback?"]);
    let mut quad = Vec::new();
    for n in [9usize, 17, 33] {
        let s = run_strong_ba(n, 1, false);
        assert!(s.agreement);
        assert!(s.fallback_used, "a missing decide share breaks the (n,n) certificate");
        quad.push((n as f64, s.words as f64));
        t2.row(&[
            num(n as u64),
            num(1),
            num(s.words),
            flt(s.words as f64 / (n * n) as f64),
            s.fallback_used.to_string(),
        ]);
    }
    t2.print();
    let o = growth_order(&quad);
    println!("\ngrowth order at f = 1: n^{o:.2} — O(n²) otherwise, as Table 1 states");

    println!("\n=== E3: the multi-valued fallback (Momose–Ren's role) standalone ===\n");
    let mut t3 = Table::new(&["n", "words", "words/n^2", "rounds"]);
    let mut fb = Vec::new();
    for n in [9usize, 17, 33, 65] {
        let s = run_recursive_ba(n, 0);
        fb.push((n as f64, s.words as f64));
        t3.row(&[num(n as u64), num(s.words), flt(s.words as f64 / (n * n) as f64), num(s.rounds)]);
    }
    t3.print();
    let o = growth_order(&fb);
    println!("\ngrowth order: n^{o:.2} (quadratic-shaped; see DESIGN.md §6 on the");
    println!("log-factor of the certificate relays — it shows up as order slightly");
    println!("above 2, never approaching 3).");
    assert!(o > 1.5 && o < 2.7, "fallback must be quadratic-shaped, got n^{o:.2}");
}
