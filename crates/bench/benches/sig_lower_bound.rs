//! E4 — the Dolev–Reischuk tension the paper's title is about (§1, §4):
//! `Ω(nt)` *signatures* are unavoidable even failure-free, yet threshold
//! compression keeps the *words* at `O(n)`.
//!
//! We count both quantities in failure-free weak BA runs: every commit /
//! finalize certificate is one word but carries `⌈(n+t+1)/2⌉` constituent
//! signatures, so signatures grow ~n² while words grow ~n — "make every
//! word count".

use meba_bench::fit::growth_order;
use meba_bench::runs::{run_weak_ba, WbaAdversary};
use meba_bench::table::{flt, num, Table};

fn main() {
    println!("=== E4: failure-free weak BA — words vs constituent signatures ===\n");
    let mut t = Table::new(&["n", "t", "words", "constituent sigs", "sigs/(n*t)", "sigs per word"]);
    let mut words_pts = Vec::new();
    let mut sig_pts = Vec::new();
    for n in [9usize, 17, 33, 65, 97] {
        let tt = (n - 1) / 2;
        let s = run_weak_ba(n, WbaAdversary::FailureFree);
        assert!(s.agreement && !s.fallback_used);
        words_pts.push((n as f64, s.words as f64));
        sig_pts.push((n as f64, s.constituent_sigs as f64));
        t.row(&[
            num(n as u64),
            num(tt as u64),
            num(s.words),
            num(s.constituent_sigs),
            flt(s.constituent_sigs as f64 / (n * tt) as f64),
            flt(s.constituent_sigs as f64 / s.words as f64),
        ]);
    }
    t.print();
    let o_words = growth_order(&words_pts);
    let o_sigs = growth_order(&sig_pts);
    println!("\ngrowth orders: words ≈ n^{o_words:.2}, signatures ≈ n^{o_sigs:.2}");
    println!("\nDolev–Reischuk says Ω(nt) signatures are necessary even when f = 0;");
    println!("the measurement shows the protocol indeed pays Θ(nt) signatures —");
    println!("but compressed into Θ(n) words by (k,n)-threshold batching. This is");
    println!("precisely the gap the paper exploits.");
    assert!(o_words < 1.3, "words must stay ~linear");
    assert!(o_sigs > 1.6, "constituent signatures must be ~quadratic");
}
