//! E9 — ablation of the 2δ safety window before `A_fallback` (§6,
//! Lemma 19).
//!
//! A Byzantine leader finalizes a value secretly and help-answers exactly
//! one process after the phases. With the window, the lone decision is
//! re-broadcast with its certificate and adopted by every fallback
//! participant; without it, the fallback's strong unanimity works from
//! stale inputs and contradicts the lone decider.

use meba_bench::runs::run_late_help_attack;
use meba_bench::table::Table;

fn main() {
    println!("=== E9: 2δ safety-window ablation (n = 7, late-helper leader) ===\n");
    let mut tab = Table::new(&["safety window", "agreement", "decisions of correct processes"]);
    let (ok_off, ds_off) = run_late_help_attack(false);
    tab.row(&[
        "disabled".to_string(),
        if ok_off { "held".into() } else { "VIOLATED".to_string() },
        format!("{ds_off:?}"),
    ]);
    let (ok_on, ds_on) = run_late_help_attack(true);
    tab.row(&[
        "enabled (paper)".to_string(),
        if ok_on { "held".into() } else { "VIOLATED".to_string() },
        format!("{ds_on:?}"),
    ]);
    tab.print();
    assert!(!ok_off, "without the window the attack must split decisions");
    assert!(ok_on, "with the window agreement must hold");
    println!("\nThe window is exactly what makes Lemma 19 true: decisions reached");
    println!("before (or while) the fallback is being coordinated are certified and");
    println!("re-broadcast, so every participant enters A_fallback already holding");
    println!("the decided value and strong unanimity pins the outcome.");
}
