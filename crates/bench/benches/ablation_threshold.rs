//! E8 — ablation of the quorum threshold `⌈(n+t+1)/2⌉` (§6).
//!
//! The same vote-splitting Byzantine leader attacks two configurations:
//! the naive `t + 1` quorum (no intersection guarantee) and the paper's
//! threshold. The attack splits decisions in the former and is harmless
//! in the latter.

use meba_bench::runs::run_split_vote_attack;
use meba_bench::table::Table;

fn main() {
    println!("=== E8: quorum-threshold ablation (n = 7, t = 3, split-vote leader) ===\n");
    let mut tab = Table::new(&["quorum", "agreement", "decisions of correct processes"]);
    let (ok_naive, ds_naive) = run_split_vote_attack(true);
    tab.row(&[
        "t+1 = 4 (naive)".to_string(),
        if ok_naive { "held".into() } else { "VIOLATED".to_string() },
        format!("{ds_naive:?}"),
    ]);
    let (ok_paper, ds_paper) = run_split_vote_attack(false);
    tab.row(&[
        "⌈(n+t+1)/2⌉ = 6 (paper)".to_string(),
        if ok_paper { "held".into() } else { "VIOLATED".to_string() },
        format!("{ds_paper:?}"),
    ]);
    tab.print();
    assert!(!ok_naive, "the naive threshold must exhibit the violation");
    assert!(ok_paper, "the paper's threshold must resist the attack");
    println!("\nWith quorum t+1 the adversary finalizes both values (its own t");
    println!("signatures plus one honest vote per side). With ⌈(n+t+1)/2⌉ any two");
    println!("quorums intersect in a correct process, so at most one certificate");
    println!("can ever form — the paper's key observation.");
}
