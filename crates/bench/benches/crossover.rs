//! E6 — §6.1's complexity analysis as a measurement: sweep `f` across the
//! whole tolerated range and locate the crossover between the adaptive
//! staircase (`c₁·n(f+1)`) and the quadratic fallback regime (`c₂·n²`),
//! which the analysis places at `f ≥ (n−t−1)/2`.

use meba_bench::runs::{run_weak_ba, WbaAdversary};
use meba_bench::table::{flt, num, Table};

fn main() {
    let n = 33usize;
    let t = (n - 1) / 2;
    let bound = (n - t - 1) / 2;
    println!("=== E6: weak BA crossover sweep (n = {n}, t = {t}) ===");
    println!("predicted fallback threshold: f ≥ (n-t-1)/2 = {bound}\n");

    let mut tab = Table::new(&["f", "adversary", "words", "f/bound", "fallback?", "regime"]);
    let mut first_fallback_f: Option<usize> = None;
    for f in 0..=t {
        let adv = if f == 0 { WbaAdversary::FailureFree } else { WbaAdversary::WastefulLeaders(f) };
        let s = run_weak_ba(n, adv);
        assert!(s.agreement, "agreement at f={f}");
        if s.fallback_used && first_fallback_f.is_none() {
            first_fallback_f = Some(f);
        }
        let regime = if s.fallback_used { "quadratic (fallback)" } else { "adaptive O(n(f+1))" };
        tab.row(&[
            num(f as u64),
            (if f == 0 { "none" } else { "wasteful leaders" }).to_string(),
            num(s.words),
            flt(f as f64 / bound as f64),
            s.fallback_used.to_string(),
            regime.to_string(),
        ]);
        // Keep the sweep bounded once well inside the quadratic regime.
        if f > bound + 3 {
            break;
        }
    }
    tab.print();

    let crossover = first_fallback_f.expect("the sweep must reach the fallback regime");
    println!("\nmeasured crossover: first fallback at f = {crossover} (analysis bound: {bound})");
    assert!(
        crossover >= bound,
        "Lemma 6: no fallback strictly below the bound (measured {crossover} < {bound})"
    );
    assert!(
        crossover <= bound + 1,
        "fallback should engage shortly after the bound (measured {crossover})"
    );
    println!("The crossover falls where §6.1 places it: below the bound the run is");
    println!("linear in f; at the bound the quorum becomes unreachable, f = Θ(n),");
    println!("and the quadratic fallback is within the O(n(f+1)) budget.");
}
