//! E18 — client-service throughput: what batching buys when the
//! replicated log serves a real workload.
//!
//! Sweeps the batch close bound × pipeline window `W` at n = 9, f = 0,
//! with 256 client ops spread over all replicas' admission ports, and
//! measures committed ops per round (deterministic), ops per wall-clock
//! second, and p50/p99 commit latency in rounds. One extra cell
//! oversubscribes tiny ports to show backpressure is *typed rejection*,
//! never silent queue growth. Every cell asserts agreement, exact
//! accepted-equals-committed accounting, zero session collisions, and a
//! journal audit that no proposer bound a slot to two values.
//!
//! Results are published as `BENCH_E18_service.json` at the repo root.

use meba_bench::runs::{run_service_throughput, ServiceRunStats};
use meba_bench::table::{flt, num, Table};

const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E18_service.json");

fn json_entry(s: &ServiceRunStats) -> String {
    format!(
        "  {{\"n\": {}, \"batch_ops\": {}, \"window\": {}, \"slots\": {}, \"offered\": {}, \
         \"accepted\": {}, \"rejected\": {}, \"committed_ops\": {}, \"rounds\": {}, \
         \"ops_per_round\": {:.4}, \"ops_per_sec\": {:.1}, \"latency_p50_rounds\": {}, \
         \"latency_p99_rounds\": {}, \"mean_occupancy\": {:.2}, \"words\": {}, \
         \"words_per_op\": {:.1}, \"agreement\": {}, \"session_collisions\": {}}}",
        s.n,
        s.batch_ops,
        s.window,
        s.slots,
        s.offered,
        s.accepted,
        s.rejected,
        s.committed_ops,
        s.rounds,
        s.ops_per_round,
        s.ops_per_sec,
        s.latency_p50_rounds,
        s.latency_p99_rounds,
        s.mean_occupancy,
        s.words,
        s.words_per_op,
        s.agreement,
        s.session_collisions
    )
}

fn audit(s: &ServiceRunStats, cell: &str) {
    assert!(s.agreement, "E18 {cell}: all replicas hold identical logs");
    assert_eq!(s.session_collisions, 0, "E18 {cell}: dynamic sessions never collide");
    assert_eq!(s.accepted + s.rejected, s.offered, "E18 {cell}: no silent drop");
    assert_eq!(s.committed_ops, s.accepted, "E18 {cell}: accepted ⇒ committed exactly once");
}

fn main() {
    let (n, total_ops) = (9usize, 256u64);
    println!("=== E18: client-service throughput (n = {n}, f = 0, {total_ops} ops) ===\n");

    let mut tab = Table::new(&[
        "batch",
        "W",
        "slots",
        "rounds",
        "ops/round",
        "ops/sec",
        "p50 rounds",
        "p99 rounds",
        "occupancy",
        "words/op",
    ]);
    let mut entries = Vec::new();
    let mut cells: Vec<ServiceRunStats> = Vec::new();
    for &batch in &[1usize, 16, 64, 256] {
        for &w in &[1u64, 4] {
            let s = run_service_throughput(n, total_ops, batch, w, total_ops as usize);
            audit(&s, &format!("batch={batch} W={w}"));
            assert_eq!(s.rejected, 0, "sized ports reject nothing");
            tab.row(&[
                num(batch as u64),
                num(w),
                num(s.slots),
                num(s.rounds),
                flt(s.ops_per_round),
                flt(s.ops_per_sec),
                num(s.latency_p50_rounds),
                num(s.latency_p99_rounds),
                flt(s.mean_occupancy),
                flt(s.words_per_op),
            ]);
            entries.push(json_entry(&s));
            cells.push(s);
        }
    }
    tab.print();

    // The acceptance claim: batching amortizes the per-slot agreement
    // cost ≥ 10× from batch = 1 to batch = 256 at the same window.
    for &w in &[1u64, 4] {
        let single = cells.iter().find(|s| s.batch_ops == 1 && s.window == w).unwrap();
        let full = cells.iter().find(|s| s.batch_ops == 256 && s.window == w).unwrap();
        let round_gain = full.ops_per_round / single.ops_per_round;
        let sec_gain = full.ops_per_sec / single.ops_per_sec;
        println!(
            "\nW={w}: batch 1→256 gains {round_gain:.1}x ops/round, {sec_gain:.1}x ops/sec, \
             words/op {:.1} → {:.1}",
            single.words_per_op, full.words_per_op
        );
        assert!(round_gain >= 10.0, "E18 W={w}: ops/round gain {round_gain:.1}x < 10x");
        assert!(sec_gain >= 10.0, "E18 W={w}: ops/sec gain {sec_gain:.1}x < 10x");
    }

    // Overload cell: ports bounded at 8 against the same offered load —
    // the overflow is rejected *typed*, everything accepted commits.
    let over = run_service_throughput(n, total_ops, 64, 4, 8);
    audit(&over, "overload");
    assert!(over.rejected > 0, "oversubscribed ports must reject");
    println!(
        "\noverload (capacity 8/port): offered {} accepted {} rejected {} — typed, no drop",
        over.offered, over.accepted, over.rejected
    );
    entries.push(json_entry(&over));

    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    std::fs::write(JSON_PATH, &json).expect("write BENCH_E18_service.json");
    println!("\nwrote {} entries to BENCH_E18_service.json", entries.len());
}
