//! E12 — replicated-log throughput: sessions multiplexed over one wire.
//!
//! Measures what pipelining buys end-to-end:
//!  * rounds per committed slot, sequential (`W = 1`) vs pipelined
//!    (`W ≥ 2`) — the stride `⌈slot_rounds / W⌉` amortizes each slot's
//!    silent tail under the next slot's active phases;
//!  * words per committed slot at `f = 0` vs `f = t` — adaptivity
//!    survives multiplexing: clean slots stay `O(n)` words even while
//!    faulty slots run their fallback concurrently.

use meba_bench::runs::run_smr;
use meba_bench::table::{flt, num, Table};

fn main() {
    println!("=== E12: pipelined replicated log — rounds per slot (n = 9, 6 slots, f = 0) ===\n");
    let (n, slots) = (9usize, 6u64);
    let mut t1 = Table::new(&["W", "rounds", "rounds/slot", "words/slot", "speedup"]);
    let seq = run_smr(n, slots, 1, 0);
    assert!(seq.agreement && seq.committed == slots);
    for w in [1u64, 2, 3] {
        let s = if w == 1 { seq.clone() } else { run_smr(n, slots, w, 0) };
        assert!(s.agreement, "agreement at W={w}");
        assert_eq!(s.committed, slots, "all slots commit at W={w}");
        if w > 1 {
            assert!(
                s.rounds < seq.rounds,
                "W={w} must finish in strictly fewer rounds ({} vs {})",
                s.rounds,
                seq.rounds
            );
        }
        t1.row(&[
            num(w),
            num(s.rounds),
            flt(s.rounds_per_slot),
            flt(s.words_per_slot),
            flt(seq.rounds as f64 / s.rounds as f64),
        ]);
    }
    t1.print();
    println!("\npipelining is a latency optimization only: identical logs, same words,");
    println!("strictly fewer rounds once W ≥ 2.");

    println!("\n=== E12: adaptivity under multiplexing (n = 9, 6 slots, W = 3) ===\n");
    let t = (n - 1) / 2;
    let mut t2 = Table::new(&["f", "committed", "rounds", "words/slot", "agreement"]);
    let clean = run_smr(n, slots, 3, 0);
    for f in [0usize, t] {
        let s = if f == 0 { clean.clone() } else { run_smr(n, slots, 3, f) };
        assert!(s.agreement, "agreement at f={f}");
        t2.row(&[
            num(f as u64),
            num(s.committed),
            num(s.rounds),
            flt(s.words_per_slot),
            s.agreement.to_string(),
        ]);
    }
    t2.print();
    assert!(
        clean.words_per_slot <= 30.0 * n as f64,
        "failure-free slots must stay O(n) words each"
    );
    assert_eq!(clean.session_words.len(), slots as usize, "one metrics session per slot");
    println!("\nfailure-free slots cost O(n) words each even with {t} crashed followers'");
    println!("slots running their full fallback in the same window — per-session metrics");
    println!("keep each slot's bill separate.");
}
