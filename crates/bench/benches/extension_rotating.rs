//! E11 — extension measurement: Algorithm 5 vs the rotating-leader
//! strong BA under crashed *leaders*.
//!
//! Algorithm 5's fixed leader and (n, n) certificate make any fault —
//! even a single crashed leader — quadratic. The extension (rotating
//! leaders + the §6 quorum) stays linear while `f < (n−t−1)/2` and
//! inputs are unanimous, paying ~4 extra rounds per crashed leader.

use meba_bench::runs::{run_rotating_strong, run_strong_ba};
use meba_bench::table::{num, Table};

fn main() {
    let n = 33usize;
    let bound = {
        let t = (n - 1) / 2;
        (n - t - 1) / 2
    };
    println!("=== E11: strong BA — fixed leader (Alg 5) vs rotating extension (n = {n}) ===\n");
    let mut tab = Table::new(&[
        "crashed leaders f",
        "Alg 5 words",
        "Alg5 fb?",
        "rotating words",
        "rot fb?",
        "rot decides at",
    ]);
    for f in 0..=bound.min(6) {
        let fixed = run_strong_ba(n, f, true);
        let rot = run_rotating_strong(n, f);
        assert!(fixed.agreement && rot.agreement);
        tab.row(&[
            num(f as u64),
            num(fixed.words),
            fixed.fallback_used.to_string(),
            num(rot.words),
            rot.fallback_used.to_string(),
            num(rot.decided_last),
        ]);
        if f > 0 && f < bound {
            assert!(!rot.fallback_used, "rotation must stay adaptive at f={f}");
            assert!(fixed.fallback_used, "Alg 5 must fall back at f={f}");
            assert!(rot.words * 4 < fixed.words, "rotation should be far cheaper");
        }
    }
    tab.print();
    println!("\nWith any crashed leader Algorithm 5 goes quadratic; the rotating");
    println!("extension decides in attempt f+1 with O(n(f+1)) words — the paper's");
    println!("open question answered in the unanimous-input, low-f regime (the");
    println!("general case was later closed by Elsheimy et al., SODA 2024).");
}
