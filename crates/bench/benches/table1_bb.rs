//! E1 — Table 1, row "Byzantine Broadcast": upper bound `O(n(f+1))`.
//!
//! Regenerates the row empirically:
//!  * words vs `f` at fixed `n` under cost-maximizing wasteful leaders —
//!    the `(f+1)·Θ(n)` staircase;
//!  * words vs `n` at `f = 0` — linear;
//!  * the Dolev–Strong baseline, which stays quadratic regardless of `f`.

use meba_bench::fit::{fit_affine, growth_order};
use meba_bench::runs::{run_bb, run_dolev_strong, BbAdversary};
use meba_bench::table::{flt, num, Table};

fn main() {
    println!("=== E1: Byzantine Broadcast — words vs f (n = 33, wasteful leaders) ===\n");
    let n = 33;
    let bound = {
        let t = (n - 1) / 2;
        (n - t - 1) / 2
    };
    let mut t1 =
        Table::new(&["f", "adaptive BB words", "Δ vs f-1", "fallback?", "Dolev-Strong words"]);
    let mut staircase = Vec::new();
    let mut prev = None;
    for f in 0..=bound.min(6) {
        let adv = if f == 0 { BbAdversary::FailureFree } else { BbAdversary::WastefulLeaders(f) };
        let s = run_bb(n, adv);
        assert!(s.agreement, "agreement at f={f}");
        let ds = run_dolev_strong(n, f);
        staircase.push((f as f64, s.words as f64));
        let delta = prev.map_or("-".to_string(), |p: u64| num(s.words - p));
        prev = Some(s.words);
        t1.row(&[num(f as u64), num(s.words), delta, s.fallback_used.to_string(), num(ds.words)]);
    }
    t1.print();
    let (a, b) = fit_affine(&staircase);
    println!(
        "\nfit: words ≈ {a:.0} + {b:.1}·f  =  n·({:.2} + {:.2}·f) — both coefficients Θ(n),",
        a / n as f64,
        b / n as f64
    );
    println!("so words = O(n·(f+1)), the Table 1 upper bound.");
    assert!(b > n as f64, "each fault must cost Θ(n) extra words");
    assert!(a < 30.0 * n as f64, "the f=0 intercept must be O(n)");

    println!("\n=== E1: words vs n at f = 0 (failure-free common case) ===\n");
    let mut t2 =
        Table::new(&["n", "adaptive BB", "words/n", "Dolev-Strong", "DS words/n^2", "speedup"]);
    let mut lin = Vec::new();
    let mut ds_quad = Vec::new();
    for n in [9usize, 17, 33, 65] {
        let s = run_bb(n, BbAdversary::FailureFree);
        assert!(s.agreement && !s.fallback_used);
        let ds = run_dolev_strong(n, 0);
        lin.push((n as f64, s.words as f64));
        ds_quad.push((n as f64, ds.words as f64));
        t2.row(&[
            num(n as u64),
            num(s.words),
            flt(s.words as f64 / n as f64),
            num(ds.words),
            flt(ds.words as f64 / (n * n) as f64),
            flt(ds.words as f64 / s.words as f64),
        ]);
    }
    t2.print();
    let o_adaptive = growth_order(&lin);
    let o_ds = growth_order(&ds_quad);
    println!("\ngrowth order: adaptive BB ≈ n^{o_adaptive:.2}, Dolev–Strong ≈ n^{o_ds:.2}");
    assert!(o_adaptive < 1.3, "failure-free adaptive BB must be ~linear");
    assert!(o_ds > 1.6, "Dolev–Strong must be ~quadratic");
    println!("\nShape reproduced: adaptive O(n(f+1)) vs non-adaptive Ω(n²); the");
    println!("adaptive protocol wins everywhere f is small, exactly as Table 1 claims.");
}
