//! Regenerates the complete experiment dataset behind `EXPERIMENTS.md` as
//! one markdown report on stdout.
//!
//! ```text
//! cargo run --release -p meba-bench --bin report > report.md
//! ```
//!
//! Unlike the per-experiment bench binaries (which assert shapes), this
//! binary only measures and prints — it is the "give me all the numbers"
//! entry point.

use meba_bench::fit::growth_order;
use meba_bench::runs::*;

fn section(title: &str) {
    println!("\n## {title}\n");
}

fn main() {
    println!("# meba experiment report");
    println!("\nDeterministic lockstep-simulator measurements; see EXPERIMENTS.md");
    println!("for interpretation against the paper's claims.");

    section("E1 — adaptive BB vs f (n = 33, wasteful leaders) and vs n (f = 0)");
    println!("| f | BB words | fallback | Dolev-Strong |");
    println!("|---|---|---|---|");
    for f in 0..=6usize {
        let adv = if f == 0 { BbAdversary::FailureFree } else { BbAdversary::WastefulLeaders(f) };
        let s = run_bb(33, adv);
        let ds = run_dolev_strong(33, f);
        println!("| {f} | {} | {} | {} |", s.words, s.fallback_used, ds.words);
    }
    println!();
    println!("| n | BB f=0 | Dolev-Strong | speedup |");
    println!("|---|---|---|---|");
    let mut bb_pts = Vec::new();
    for n in [9usize, 17, 33, 65] {
        let s = run_bb(n, BbAdversary::FailureFree);
        let ds = run_dolev_strong(n, 0);
        bb_pts.push((n as f64, s.words as f64));
        println!("| {n} | {} | {} | {:.2}x |", s.words, ds.words, ds.words as f64 / s.words as f64);
    }
    println!("\nBB failure-free growth order: n^{:.2}", growth_order(&bb_pts));

    section("E2 — weak BA vs f and vs n");
    println!("| f | words | fallback |");
    println!("|---|---|---|");
    for f in [0usize, 2, 4, 6, 8, 9, 10] {
        let adv = if f == 0 { WbaAdversary::FailureFree } else { WbaAdversary::WastefulLeaders(f) };
        let s = run_weak_ba(33, adv);
        println!("| {f} | {} | {} |", s.words, s.fallback_used);
    }

    section("E3 — strong BA and the fallback standalone");
    println!("| n | Alg5 f=0 | Alg5 f=1 | recursive BA (f=0) |");
    println!("|---|---|---|---|");
    for n in [9usize, 17, 33] {
        let a = run_strong_ba(n, 0, false);
        let b = run_strong_ba(n, 1, false);
        let r = run_recursive_ba(n, 0);
        println!("| {n} | {} | {} | {} |", a.words, b.words, r.words);
    }

    section("E4 — words vs constituent signatures (failure-free weak BA)");
    println!("| n | words | constituent sigs |");
    println!("|---|---|---|");
    for n in [9usize, 17, 33, 65, 97] {
        let s = run_weak_ba(n, WbaAdversary::FailureFree);
        println!("| {n} | {} | {} |", s.words, s.constituent_sigs);
    }

    section("E5 — component breakdown of BB (n = 17)");
    let scenarios = [
        ("f=0", BbAdversary::FailureFree),
        ("f=2 wasteful", BbAdversary::WastefulLeaders(2)),
        ("f=t crashed", BbAdversary::CrashFollowers(8)),
    ];
    println!("| component | f=0 | f=2 wasteful | f=t crashed |");
    println!("|---|---|---|---|");
    let stats: Vec<_> = scenarios.iter().map(|(_, a)| run_bb(17, *a)).collect();
    for comp in ["bb/dissemination", "bb/vetting", "weak-ba/phases", "weak-ba/help", "fallback"] {
        print!("| {comp} ");
        for s in &stats {
            print!("| {} ", s.by_component.get(comp).copied().unwrap_or(0));
        }
        println!("|");
    }

    section("E6/E7 — crossover and latency (n = 33)");
    println!("| f | words | first decision | fallback |");
    println!("|---|---|---|---|");
    for f in 0..=10usize {
        let adv = if f == 0 { WbaAdversary::FailureFree } else { WbaAdversary::WastefulLeaders(f) };
        let s = run_weak_ba(33, adv);
        println!("| {f} | {} | {} | {} |", s.words, s.decided_first, s.fallback_used);
    }

    section("E8/E9 — ablations (deterministic attack outcomes)");
    let (a8n, _) = run_split_vote_attack(true);
    let (a8p, _) = run_split_vote_attack(false);
    let (a9off, _) = run_late_help_attack(false);
    let (a9on, _) = run_late_help_attack(true);
    println!("| ablation | weakened config | paper config |");
    println!("|---|---|---|");
    println!(
        "| E8 quorum threshold | agreement {} | agreement {} |",
        if a8n { "held" } else { "VIOLATED" },
        if a8p { "held" } else { "VIOLATED" }
    );
    println!(
        "| E9 safety window | agreement {} | agreement {} |",
        if a9off { "held" } else { "VIOLATED" },
        if a9on { "held" } else { "VIOLATED" }
    );

    section("E11 — rotating-leader strong BA extension (n = 33, crashed leaders)");
    println!("| f | Alg 5 | rotating | rotating fallback |");
    println!("|---|---|---|---|");
    for f in 0..=4usize {
        let a = run_strong_ba(33, f, true);
        let r = run_rotating_strong(33, f);
        println!("| {f} | {} | {} | {} |", a.words, r.words, r.fallback_used);
    }

    section("E12 — pipelined replicated log (n = 9, 6 slots)");
    println!("| W | f | committed | rounds | rounds/slot | words/slot |");
    println!("|---|---|---|---|---|---|");
    let t9 = (9 - 1) / 2;
    for (w, f) in [(1u64, 0usize), (2, 0), (3, 0), (1, t9), (3, t9)] {
        let s = run_smr(9, 6, w, f);
        println!(
            "| {w} | {f} | {} | {} | {:.1} | {:.1} |",
            s.committed, s.rounds, s.rounds_per_slot, s.words_per_slot
        );
    }
    section("E13 — byte-level cost over loopback TCP (n = 9, canonical codec)");
    println!("| f | words | codec bytes | bytes/word | frames | frames/round | socket bytes |");
    println!("|---|---|---|---|---|---|---|");
    let t = (9 - 1) / 2;
    for f in [0usize, t] {
        let s = run_wire_bb(9, f, std::time::Duration::from_millis(5));
        assert!(s.agreement, "E13 f={f}: correct processes must agree over TCP");
        assert!(
            s.bytes <= s.words * meba_wire::BYTES_PER_WORD,
            "E13 f={f}: bytes/word exceeds the {} budget",
            meba_wire::BYTES_PER_WORD
        );
        println!(
            "| {f} | {} | {} | {:.1} | {} | {:.1} | {} |",
            s.words,
            s.bytes,
            s.bytes_per_word(),
            s.frames,
            s.frames_per_round(),
            s.socket_bytes
        );
    }
    println!(
        "\nEvery word fits the {}-byte wire budget at f = 0 and f = t alike: the",
        meba_wire::BYTES_PER_WORD
    );
    println!("adaptive word bound is also an adaptive byte bound on real sockets.");

    section("E14 — recovery: latency and word overhead vs crash-restart count (n = 9)");
    println!(
        "| crashes | words | overhead | recovery rounds | replayed records | fsyncs | refused |"
    );
    println!("|---|---|---|---|---|---|---|");
    let delta = std::time::Duration::from_millis(3);
    let baseline = run_recovery_weak_ba(9, 0, delta);
    for c in 0..=3usize {
        let s = if c == 0 { baseline.clone() } else { run_recovery_weak_ba(9, c, delta) };
        assert!(s.agreement, "E14 crashes={c}: all processes (incl. recovered) must agree");
        assert_eq!(s.refused_equivocations, 0, "E14 crashes={c}: honest recovery never conflicts");
        println!(
            "| {c} | {} | {:.2}x | {} | {} | {} | {} |",
            s.words,
            s.words as f64 / baseline.words.max(1) as f64,
            s.recovery_rounds,
            s.replayed_records,
            s.journal_fsyncs,
            s.refused_equivocations
        );
    }
    println!("\nEach crash-restart is one fault in the word budget: the overhead column");
    println!("stays within the O(n(f+1)) envelope, and the journal keeps every restart");
    println!("from re-signing a conflicting slot (refused = 0 means the guard never had");
    println!("to intervene — deterministic replay re-derives identical signatures).");

    section("E15 — asymptotics on the discrete-event backend (large n)");
    println!("The virtual-clock backend removes the per-round wall-clock δ, so the");
    println!("word-complexity claims can be measured where they bite. The calendar-");
    println!("queue engine (E20) pushes the failure-free sweep to n = 4097 (and");
    println!("n = 10000 with MEBA_E15_STRETCH=1); the faulty columns stop at 257");
    println!("to keep the report's runtime bounded.");
    println!();
    println!("| n | f=0 words | f=1 | f=t | f=0 words/round | Dolev-Strong f=0 |");
    println!("|---|---|---|---|---|---|");
    let mut free_pts = Vec::new();
    let mut worst_pts = Vec::new();
    let mut crossover: Option<(usize, u64, u64)> = None;
    let mut ns = vec![17usize, 33, 65, 129, 257, 1025, 4097];
    if std::env::var("MEBA_E15_STRETCH").is_ok_and(|v| v == "1") {
        ns.push(10_000);
    }
    for n in ns {
        let t = (n - 1) / 2;
        let s0 = run_des_bb(n, 0, 0xe15);
        assert!(s0.agreement, "E15 n={n}: agreement");
        free_pts.push((n as f64, s0.words as f64));
        let (w1, wt, ds) = if n <= 257 {
            let s1 = run_des_bb(n, 1, 0xe15);
            let st = run_des_bb(n, t, 0xe15);
            assert!(s1.agreement && st.agreement, "E15 n={n}: agreement under faults");
            worst_pts.push((n as f64, st.words as f64));
            // The quadratic reference only needs measuring where the
            // lockstep simulator is still fast; the growth orders carry
            // the comparison.
            let ds = if n <= 65 {
                let w = run_dolev_strong(n, 0).words;
                if crossover.is_none() && st.words >= w {
                    crossover = Some((n, st.words, w));
                }
                w.to_string()
            } else {
                "-".into()
            };
            (s1.words.to_string(), st.words.to_string(), ds)
        } else {
            ("-".into(), "-".into(), "-".into())
        };
        println!("| {n} | {} | {w1} | {wt} | {:.1} | {ds} |", s0.words, s0.words_per_round());
    }
    println!();
    println!(
        "Growth orders: failure-free n^{:.2} (adaptive, linear); f=t n^{:.2}",
        growth_order(&free_pts),
        growth_order(&worst_pts)
    );
    match crossover {
        Some((n, adaptive, ds)) => println!(
            "(worst case meets the quadratic regime: at n={n}, f=t costs {adaptive} vs \
             Dolev-Strong's {ds} — the adaptive protocol only pays quadratic when f does)."
        ),
        None => println!(
            "(even at f=t the adaptive run stays below the Dolev-Strong baseline at \
             every measured n — the fallback crossover lies beyond f=t here)."
        ),
    }

    section("E16 — reactor-mesh scale profile (real loopback sockets)");
    println!("One readiness-driven I/O thread per process replaces the retired");
    println!("thread-per-link design (a reader + writer per directed link plus an");
    println!("acceptor: n(2(n-1)+1) I/O threads in-host). Word totals must equal");
    println!("the DES reference — the transport never changes what the protocol pays.");
    println!();
    println!("| n | words | DES words | rounds | rounds/sec | peak threads | old mesh threads |");
    println!("|---|---|---|---|---|---|---|");
    for (i, n) in [9usize, 17, 33].into_iter().enumerate() {
        let s = run_mesh_scale_bb(n, std::time::Duration::from_millis(10), 0xe16 + i as u64);
        assert!(s.agreement, "E16 n={n}: agreement");
        println!(
            "| {n} | {} | {} | {} | {:.1} | {} | {} |",
            s.words, s.des_words, s.rounds, s.rounds_per_sec, s.peak_threads, s.old_design_threads
        );
    }
    println!();
    println!("(peak threads is this process's live OS thread count from procfs — 0");
    println!("when unavailable; the n = 65/101 acceptance runs live in the");
    println!("`tcp_scale` integration tests.)");

    section("E17 — δ-estimate sweep (quorum-or-timeout round driver, DES)");
    println!("Network truth fixed at link delay < δ/2 with clock skew ≤ δ/8; local");
    println!("timers sweep 0.25×–4× δ. The paper's synchrony precondition");
    println!("(delay + skew < round length, Lemma 18) holds above 0.625 δ. Advancing");
    println!("only on a full inbox (quorum = n) matches the lockstep word bill");
    println!("exactly inside the precondition; the protocol quorum (n − t) advances");
    println!("past straggler traffic and pays for it in help words.");
    println!();
    println!("| timer (×δ) | quorum | completed | rounds | words | baseline | quorum adv | timeout adv |");
    println!("|---|---|---|---|---|---|---|---|");
    for (i, tf) in [0.25f64, 0.5, 0.75, 1.0, 2.0, 4.0].into_iter().enumerate() {
        for full_inbox in [true, false] {
            let s = run_timing_sweep(tf, full_inbox, 0xe17 + i as u64);
            assert!(s.agreement, "E17 tf={tf}: agreement must survive any δ-estimate");
            println!(
                "| {tf} | {} | {} | {} | {} | {} | {} | {} |",
                if s.full_inbox_quorum { "n" } else { "n-t" },
                if s.completed { "yes" } else { "NO" },
                s.rounds,
                s.words,
                s.baseline_words,
                s.quorum_advances,
                s.timeout_advances
            );
        }
    }
    println!();
    println!("(incomplete cells hit the round budget without every process deciding —");
    println!("agreement still holds; `timing_sweep` publishes this table as");
    println!("BENCH_E17_timing.json.)");

    section("E18 — client-service throughput (n = 9, f = 0, 256 ops)");
    println!("Client ops spread round-robin over all replicas' admission ports;");
    println!("batching amortizes each slot's O(n(f+1))-word agreement across whole");
    println!("batches. The last row oversubscribes ports bounded at 8 ops: the");
    println!("overflow is rejected *typed* (`Overloaded`), never silently dropped");
    println!("or buffered unboundedly.");
    println!();
    println!("| batch | W | slots | rounds | ops/round | p50 rounds | p99 rounds | words/op | accepted | rejected |");
    println!("|---|---|---|---|---|---|---|---|---|---|");
    let mut e18 = Vec::new();
    for batch in [1usize, 16, 64, 256] {
        for w in [1u64, 4] {
            let s = run_service_throughput(9, 256, batch, w, 256);
            assert!(s.agreement, "E18 batch={batch} W={w}: replicas agree");
            e18.push(s.clone());
            println!(
                "| {batch} | {w} | {} | {} | {:.3} | {} | {} | {:.1} | {} | {} |",
                s.slots,
                s.rounds,
                s.ops_per_round,
                s.latency_p50_rounds,
                s.latency_p99_rounds,
                s.words_per_op,
                s.accepted,
                s.rejected
            );
        }
    }
    let over = run_service_throughput(9, 256, 64, 4, 8);
    assert!(over.agreement && over.rejected > 0, "E18 overload: typed rejections");
    println!(
        "| 64 | 4 | {} | {} | {:.3} | {} | {} | {:.1} | {} | {} |",
        over.slots,
        over.rounds,
        over.ops_per_round,
        over.latency_p50_rounds,
        over.latency_p99_rounds,
        over.words_per_op,
        over.accepted,
        over.rejected
    );
    println!();
    println!("(`service_throughput` publishes this table as BENCH_E18_service.json");
    println!("and asserts the ≥10× ops/round and ops/sec gains from batch 1 → 256.)");

    section("E19 — certified state transfer (n = 9, one restarted replica)");
    println!("One replica sleeps through consecutive slot openings and catches up");
    println!("by certified state transfer, metered under the `service/transfer`");
    println!("component tag. Transfer bytes grow with the outage and stay flat in");
    println!("the log length — anti-entropy ships the missing suffix, not history.");
    println!();
    println!("| slots | outage | transferred | certs | vouched | xfer words | xfer bytes | recovery rounds |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut e19 = Vec::new();
    for (slots, outage) in [(18u64, 1u64), (18, 2), (18, 4), (18, 6), (27, 2), (36, 2)] {
        let s = run_state_transfer(9, slots, outage);
        println!(
            "| {slots} | {outage} | {} | {} | {} | {} | {} | {} |",
            s.slots_transferred,
            s.certs_verified,
            s.vouches_accepted,
            s.transfer_words,
            s.transfer_bytes,
            s.recovery_rounds
        );
        e19.push(s);
    }
    let grow = e19[3].transfer_bytes as f64 / e19[0].transfer_bytes.max(1) as f64;
    let flat = e19[5].transfer_bytes as f64 / e19[1].transfer_bytes.max(1) as f64;
    println!();
    println!("(outage 1 → 6 openings scales transfer bytes {grow:.1}x; doubling the");
    println!("log at a fixed outage moves them {flat:.2}x — `state_transfer`");
    println!("publishes this table as BENCH_E19_statetransfer.json.)");

    section("E20 — zero-copy hot path (codec, batch verify, calendar-queue DES)");
    println!("The `hotpath` bench measures the zero-copy refactor end to end: the");
    println!("encode→frame→read→decode pipeline against the pre-refactor allocation");
    println!("pattern, single vs batch verification over primed MAC states, and the");
    println!("calendar-queue DES n-sweep. It publishes BENCH_E20_hotpath.json and");
    println!("enforces the regression gate (> 15% below the committed floors fails).");
    println!();
    let e20_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_E20_hotpath.json");
    match std::fs::read_to_string(e20_path) {
        Ok(json) => {
            let get = |key: &str| -> String {
                let pat = format!("\"{key}\":");
                json.find(&pat)
                    .map(|at| {
                        let rest = json[at + pat.len()..].trim_start();
                        let end = rest
                            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                            .unwrap_or(rest.len());
                        rest[..end].to_string()
                    })
                    .unwrap_or_else(|| "?".into())
            };
            println!("| metric | value |");
            println!("|---|---|");
            println!("| codec pipeline, pre-refactor | {} msgs/sec |", get("before_msgs_per_sec"));
            println!("| codec pipeline, zero-copy | {} msgs/sec |", get("after_msgs_per_sec"));
            println!("| codec speedup | {}x |", get("speedup"));
            println!(
                "| threshold certificates | {} verifies/sec |",
                get("verify_threshold_certs_per_sec")
            );
            println!(
                "| DES speedup at n = 1025 (vs BinaryHeap engine) | {}x |",
                get("des_speedup_n1025_vs_binaryheap")
            );
            println!();
            println!("(Full tables — batch-vs-single verify at k ∈ {{5, 9, 17}} and the");
            println!("n-sweep wall clocks up to n = 4097 — live in the JSON; re-measure");
            println!("with `cargo bench -p meba-bench --bench hotpath`.)");
        }
        Err(_) => println!("BENCH_E20_hotpath.json not found — run the `hotpath` bench first."),
    }

    println!("\n_Report complete._");
}
