//! Single-configuration protocol runs under named adversaries.

use meba_adversary::{
    EquivocatingSender, LateHelperLeader, SplitVoteLeader, WastefulBbLeader, WastefulWeakLeader,
};
use meba_core::{
    AlwaysValid, Bb, Decision, LockstepAdapter, RotatingStrongBa, StrongBa, SubProtocol,
    SystemConfig, WeakBa,
};
use meba_crypto::{trusted_setup, ProcessId, SecretKey};
use meba_fallback::{DolevStrongBb, RecursiveBa, RecursiveBaFactory};
use meba_sim::{Actor, AnyActor, IdleActor, Metrics, SimBuilder};
use meba_smr::{LogEntry, ReplicatedLog};
use std::collections::BTreeMap;

type BbProc = Bb<u64, RecursiveBaFactory>;
type BbM = <BbProc as SubProtocol>::Msg;
type WbaProc = WeakBa<u64, AlwaysValid, RecursiveBaFactory>;
type WbaM = <WbaProc as SubProtocol>::Msg;
type SbaProc = StrongBa<RecursiveBaFactory>;
type SbaM = <SbaProc as SubProtocol>::Msg;

/// Outcome of one run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// System size.
    pub n: usize,
    /// Actual failures injected.
    pub f: usize,
    /// Words sent by correct processes (the paper's metric).
    pub words: u64,
    /// Messages sent by correct processes.
    pub messages: u64,
    /// Constituent signatures sent by correct processes.
    pub constituent_sigs: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Earliest/latest decision steps among correct processes.
    pub decided_first: u64,
    /// Latest decision step among correct processes.
    pub decided_last: u64,
    /// Whether any correct process ran the fallback.
    pub fallback_used: bool,
    /// Whether all correct decisions were equal.
    pub agreement: bool,
    /// Per-component correct words (experiment E5).
    pub by_component: BTreeMap<String, u64>,
    /// Count of correct processes that led a non-silent phase.
    pub nonsilent_leaders: usize,
}

fn stats_from(metrics: &Metrics, n: usize, f: usize) -> RunStats {
    RunStats {
        n,
        f,
        words: metrics.correct.words,
        messages: metrics.correct.messages,
        constituent_sigs: metrics.correct.constituent_sigs,
        rounds: metrics.rounds,
        decided_first: 0,
        decided_last: 0,
        fallback_used: false,
        agreement: true,
        by_component: metrics.by_component.iter().map(|(k, v)| (k.clone(), v.words)).collect(),
        nonsilent_leaders: 0,
    }
}

/// Adversary menu for BB runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BbAdversary {
    /// No failures.
    FailureFree,
    /// `f` crashed followers (silent from the start).
    CrashFollowers(usize),
    /// `f` cost-maximizing Byzantine leaders (`p1..pf`) that waste their
    /// vetting and BA phases — realizes the `O(n(f+1))` staircase.
    WastefulLeaders(usize),
    /// The designated sender never sends.
    SilentSender,
    /// The sender signs two values and splits the system.
    EquivocatingSender,
}

impl BbAdversary {
    /// Number of corrupted processes.
    pub fn f(&self) -> usize {
        match self {
            BbAdversary::FailureFree => 0,
            BbAdversary::CrashFollowers(f) | BbAdversary::WastefulLeaders(f) => *f,
            BbAdversary::SilentSender | BbAdversary::EquivocatingSender => 1,
        }
    }
}

/// Runs adaptive BB (sender `p0`, value 7) under the given adversary.
pub fn run_bb(n: usize, adversary: BbAdversary) -> RunStats {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xb0b);
    let sender = ProcessId(0);
    let value = 7u64;
    let f = adversary.f();
    assert!(f <= cfg.t(), "f={f} exceeds t={}", cfg.t());

    let mut byz: Vec<u32> = Vec::new();
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        let actor: Box<dyn AnyActor<Msg = BbM>> = match adversary {
            BbAdversary::CrashFollowers(f) if i >= 1 && i <= f => {
                byz.push(i as u32);
                Box::new(IdleActor::new(id))
            }
            BbAdversary::WastefulLeaders(f) if i >= 1 && i <= f => {
                byz.push(i as u32);
                Box::new(WastefulBbLeader::<u64, _>::new(cfg, id, i as u32))
            }
            BbAdversary::SilentSender if i == 0 => {
                byz.push(0);
                Box::new(IdleActor::new(id))
            }
            BbAdversary::EquivocatingSender if i == 0 => {
                byz.push(0);
                let half = (n - 1) / 2 + 1;
                Box::new(EquivocatingSender::new(
                    cfg,
                    key,
                    1u64,
                    2u64,
                    (1..half as u32).map(ProcessId).collect(),
                    (half as u32..n as u32).map(ProcessId).collect(),
                ))
            }
            _ => {
                let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
                let bb = if id == sender {
                    Bb::new_sender(cfg, id, key, pki.clone(), factory, value)
                } else {
                    Bb::new(cfg, id, key, pki.clone(), factory, sender)
                };
                Box::new(LockstepAdapter::new(id, bb))
            }
        };
        actors.push(actor);
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(60 * n as u64 + 4_000).expect("bb run terminated");

    let mut stats = stats_from(sim.metrics(), n, f);
    let mut decisions: Vec<Decision<u64>> = Vec::new();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for i in (0..n as u32).filter(|i| !byz.contains(i)) {
        let a: &LockstepAdapter<BbProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        decisions.push(a.inner().output().expect("decided"));
        let d = a.inner().decided_at().expect("decided step");
        first = first.min(d);
        last = last.max(d);
        stats.fallback_used |= a.inner().used_fallback();
        stats.nonsilent_leaders += a.inner().led_nonsilent_phase() as usize;
    }
    stats.agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    stats.decided_first = first;
    stats.decided_last = last;
    stats
}

/// Adversary menu for weak BA runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WbaAdversary {
    /// No failures.
    FailureFree,
    /// `f` crashed processes `p1..pf`.
    CrashFollowers(usize),
    /// `f` wasteful Byzantine leaders `p1..pf`.
    WastefulLeaders(usize),
}

impl WbaAdversary {
    /// Number of corrupted processes.
    pub fn f(&self) -> usize {
        match self {
            WbaAdversary::FailureFree => 0,
            WbaAdversary::CrashFollowers(f) | WbaAdversary::WastefulLeaders(f) => *f,
        }
    }
}

/// Runs adaptive weak BA (all inputs 5) under the given adversary.
pub fn run_weak_ba(n: usize, adversary: WbaAdversary) -> RunStats {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0x3a3a);
    let f = adversary.f();
    assert!(f <= cfg.t());

    let mut byz: Vec<u32> = Vec::new();
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        let actor: Box<dyn AnyActor<Msg = WbaM>> = match adversary {
            WbaAdversary::CrashFollowers(f) if i >= 1 && i <= f => {
                byz.push(i as u32);
                Box::new(IdleActor::new(id))
            }
            WbaAdversary::WastefulLeaders(f) if i >= 1 && i <= f => {
                byz.push(i as u32);
                Box::new(WastefulWeakLeader::new(cfg, id, i as u32, 99u64))
            }
            _ => {
                let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
                let wba = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 5u64);
                Box::new(LockstepAdapter::new(id, wba))
            }
        };
        actors.push(actor);
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(60 * n as u64 + 4_000).expect("weak ba run terminated");

    let mut stats = stats_from(sim.metrics(), n, f);
    let mut decisions = Vec::new();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for i in (0..n as u32).filter(|i| !byz.contains(i)) {
        let a: &LockstepAdapter<WbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        decisions.push(a.inner().output().expect("decided"));
        let d = a.inner().decided_at().expect("decided step");
        first = first.min(d);
        last = last.max(d);
        stats.fallback_used |= a.inner().used_fallback();
        stats.nonsilent_leaders += a.inner().led_nonsilent_phase() as usize;
    }
    stats.agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    stats.decided_first = first;
    stats.decided_last = last;
    stats
}

/// Runs binary strong BA (all inputs `true`) with `f` crashed followers
/// (crash the leader instead by passing `crash_leader`).
pub fn run_strong_ba(n: usize, f: usize, crash_leader: bool) -> RunStats {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0x5ba);
    assert!(f <= cfg.t());
    let byz: Vec<u32> =
        if crash_leader { (0..f as u32).collect() } else { (1..=f as u32).collect() };
    let mut actors: Vec<Box<dyn AnyActor<Msg = SbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let sba = StrongBa::new(cfg, id, key, pki.clone(), factory, true);
            actors.push(Box::new(LockstepAdapter::new(id, sba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(60 * n as u64 + 4_000).expect("strong ba run terminated");

    let mut stats = stats_from(sim.metrics(), n, f);
    let mut decisions = Vec::new();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for i in (0..n as u32).filter(|i| !byz.contains(i)) {
        let a: &LockstepAdapter<SbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        decisions.push(a.inner().output().expect("decided"));
        let d = a.inner().decided_at().expect("decided step");
        first = first.min(d);
        last = last.max(d);
        stats.fallback_used |= a.inner().used_fallback();
    }
    stats.agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    stats.decided_first = first;
    stats.decided_last = last;
    stats
}

/// Runs the rotating-leader strong BA extension (all inputs `true`) with
/// the first `f` processes crashed (the leaders of the first `f`
/// attempts — the hardest placement for the rotation).
pub fn run_rotating_strong(n: usize, f: usize) -> RunStats {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0x40);
    assert!(f <= cfg.t());
    let byz: Vec<u32> = (0..f as u32).collect();
    type RbaProc = RotatingStrongBa<RecursiveBaFactory>;
    type RbaM = <RbaProc as SubProtocol>::Msg;
    let mut actors: Vec<Box<dyn AnyActor<Msg = RbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let rba = RotatingStrongBa::new(cfg, id, key, pki.clone(), factory, true);
            actors.push(Box::new(LockstepAdapter::new(id, rba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(60 * n as u64 + 4_000).expect("rotating strong ba terminated");
    let mut stats = stats_from(sim.metrics(), n, f);
    let mut decisions = Vec::new();
    let (mut first, mut last) = (u64::MAX, 0u64);
    for i in (0..n as u32).filter(|i| !byz.contains(i)) {
        let a: &LockstepAdapter<RbaProc> = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
        decisions.push(a.inner().output().expect("decided"));
        let d = a.inner().decided_at().expect("decided step");
        first = first.min(d);
        last = last.max(d);
        stats.fallback_used |= a.inner().used_fallback();
    }
    stats.agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    stats.decided_first = first;
    stats.decided_last = last;
    stats
}

type LogProc = ReplicatedLog<u64, RecursiveBaFactory>;
type LogM = <LogProc as Actor>::Msg;

/// Outcome of one replicated-log run (experiment E12).
#[derive(Clone, Debug)]
pub struct SmrRunStats {
    /// System size.
    pub n: usize,
    /// Crashed followers.
    pub f: usize,
    /// Pipeline window `W` (`1` = sequential).
    pub window: u64,
    /// Slots attempted.
    pub slots: u64,
    /// Slots that committed a value (`≠ ⊥`).
    pub committed: u64,
    /// Total rounds until every replica finished the log.
    pub rounds: u64,
    /// Words sent by correct processes across all sessions.
    pub words: u64,
    /// Rounds per *committed* slot — the pipelining win.
    pub rounds_per_slot: f64,
    /// Correct words per committed slot — must stay adaptive.
    pub words_per_slot: f64,
    /// Per-session correct words, in slot order (from
    /// [`meba_sim::Metrics::per_session`]).
    pub session_words: Vec<u64>,
    /// Whether all correct replicas hold identical logs.
    pub agreement: bool,
}

/// Runs the session-multiplexed replicated log: `slots` BB instances,
/// pipeline window `window`, and `f` crashed followers (`p1..pf` — their
/// proposer slots commit `⊥`). Replica `i` proposes `100·(i+1) + k`.
pub fn run_smr(n: usize, slots: u64, window: u64, f: usize) -> SmrRunStats {
    let cfg = SystemConfig::new(n, 0x512).unwrap();
    let (pki, keys) = trusted_setup(n, 0x109);
    assert!(f <= cfg.t());
    let byz: Vec<u32> = (1..=f as u32).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = LogM>>> = Vec::new();
    let mut budget = 0;
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let commands: Vec<u64> = (0..slots).map(|k| 100 * (i as u64 + 1) + k).collect();
            let log = ReplicatedLog::new(cfg, id, key, pki.clone(), factory, slots, commands, 0)
                .with_window(window);
            budget = log.total_rounds() + 16;
            actors.push(Box::new(log));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(budget).expect("smr run terminated");

    let logs: Vec<Vec<LogEntry<u64>>> = (0..n as u32)
        .filter(|i| !byz.contains(i))
        .map(|i| {
            let a: &LogProc = sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.log().to_vec()
        })
        .collect();
    let agreement = logs.windows(2).all(|w| w[0] == w[1]);
    let committed = logs[0].iter().filter(|e| e.entry.value().is_some()).count() as u64;
    let m = sim.metrics();
    let session_words: Vec<u64> = m.per_session.values().map(|s| s.counters.words).collect();
    SmrRunStats {
        n,
        f,
        window,
        slots,
        committed,
        rounds: m.rounds,
        words: m.correct.words,
        rounds_per_slot: m.rounds as f64 / committed.max(1) as f64,
        words_per_slot: m.correct.words as f64 / committed.max(1) as f64,
        session_words,
        agreement,
    }
}

/// Runs the Dolev–Strong BB baseline with `f` crashed followers.
pub fn run_dolev_strong(n: usize, f: usize) -> RunStats {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xd5);
    let sender = ProcessId(0);
    let byz: Vec<u32> = (1..=f as u32).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = meba_fallback::DsBbMsg<u64>>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let input = (id == sender).then_some(7u64);
            let ds = DolevStrongBb::new(&cfg, sender, id, key, pki.clone(), input);
            actors.push(Box::new(LockstepAdapter::new(id, ds)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(10 * n as u64 + 100).expect("dolev-strong run terminated");
    let mut stats = stats_from(sim.metrics(), n, f);
    stats.decided_first = cfg.t() as u64 + 1;
    stats.decided_last = cfg.t() as u64 + 1;
    stats
}

/// Runs the recursive fallback BA standalone with `f` crashed processes
/// (unanimous input 1).
pub fn run_recursive_ba(n: usize, f: usize) -> RunStats {
    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0x4ec);
    let byz: Vec<u32> = (0..f as u32).map(|i| 2 * i + 1).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = meba_fallback::RecBaMsg<u64>>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let rb = RecursiveBa::new(cfg, id, key, pki.clone(), 1u64);
            actors.push(Box::new(LockstepAdapter::new(id, rb)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(40 * n as u64 + 200).expect("recursive ba run terminated");
    stats_from(sim.metrics(), n, f)
}

/// Runs the E8 split-vote attack and reports whether agreement held.
/// Returns `(agreement, decisions_of_correct)`.
pub fn run_split_vote_attack(naive_quorum: bool) -> (bool, Vec<Decision<u64>>) {
    let n = 7usize;
    let mut cfg = SystemConfig::new(n, 0xe8).unwrap();
    if naive_quorum {
        cfg = cfg.unsafe_with_quorum(cfg.idk_threshold());
    }
    let (pki, keys) = trusted_setup(n, 0xe8);
    let byz = [1u32, 3, 5];
    let cohort: Vec<SecretKey> = byz.iter().map(|&i| keys[i as usize].clone()).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i as u32 == 1 {
            actors.push(Box::new(SplitVoteLeader::new(
                cfg,
                id,
                pki.clone(),
                cohort.clone(),
                1,
                100u64,
                200u64,
                vec![ProcessId(0), ProcessId(2)],
                vec![ProcessId(4), ProcessId(6)],
            )));
        } else if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let wba = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 7u64);
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(4_000).expect("attack run terminated");
    let decisions: Vec<Decision<u64>> = [0u32, 2, 4, 6]
        .iter()
        .map(|&i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.inner().output().expect("decided")
        })
        .collect();
    let agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    (agreement, decisions)
}

/// Runs the E9 late-help attack; `window` controls whether the paper's
/// 2δ safety window is active. Returns `(agreement, decisions)`.
pub fn run_late_help_attack(window: bool) -> (bool, Vec<Decision<u64>>) {
    let n = 7usize;
    let cfg = SystemConfig::new(n, 0xe9).unwrap();
    let (pki, keys) = trusted_setup(n, 0xe9);
    let byz = [1u32, 3, 5];
    let cohort: Vec<SecretKey> = byz.iter().map(|&i| keys[i as usize].clone()).collect();
    let mut actors: Vec<Box<dyn AnyActor<Msg = WbaM>>> = Vec::new();
    for (i, key) in keys.iter().cloned().enumerate() {
        let id = ProcessId(i as u32);
        if i as u32 == 1 {
            actors.push(Box::new(LateHelperLeader::new(
                cfg,
                id,
                pki.clone(),
                cohort.clone(),
                1,
                20u64,
                ProcessId(0),
            )));
        } else if byz.contains(&(i as u32)) {
            actors.push(Box::new(IdleActor::new(id)));
        } else {
            let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
            let mut wba = WeakBa::new(cfg, id, key, pki.clone(), AlwaysValid, factory, 10u64);
            if !window {
                wba.disable_safety_window();
            }
            actors.push(Box::new(LockstepAdapter::new(id, wba)));
        }
    }
    let mut b = SimBuilder::new(actors);
    for &c in &byz {
        b = b.corrupt(ProcessId(c));
    }
    let mut sim = b.build();
    sim.run_until_done(4_000).expect("attack run terminated");
    let decisions: Vec<Decision<u64>> = [0u32, 2, 4, 6]
        .iter()
        .map(|&i| {
            let a: &LockstepAdapter<WbaProc> =
                sim.actor(ProcessId(i)).as_any().downcast_ref().unwrap();
            a.inner().output().expect("decided")
        })
        .collect();
    let agreement = decisions.windows(2).all(|w| w[0] == w[1]);
    (agreement, decisions)
}

/// Outcome of one loopback-TCP run (experiment E13).
#[derive(Clone, Debug)]
pub struct WireRunStats {
    /// System size.
    pub n: usize,
    /// Crashed processes.
    pub f: usize,
    /// Words sent by correct processes.
    pub words: u64,
    /// Canonical-codec bytes those words encoded to.
    pub bytes: u64,
    /// Frames that actually crossed sockets (self-delivery excluded).
    pub frames: u64,
    /// Bytes written to sockets, length prefixes included.
    pub socket_bytes: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether all correct decisions were equal.
    pub agreement: bool,
}

impl WireRunStats {
    /// Codec bytes per correct word.
    pub fn bytes_per_word(&self) -> f64 {
        self.bytes as f64 / self.words.max(1) as f64
    }

    /// Socket frames per executed round.
    pub fn frames_per_round(&self) -> f64 {
        self.frames as f64 / self.rounds.max(1) as f64
    }
}

/// Runs adaptive BB (sender `p0`, value 7) over real loopback TCP
/// sockets with `f` crashed followers, measuring the byte-level cost of
/// the word-level protocol (experiment E13).
pub fn run_wire_bb(n: usize, f: usize, delta: std::time::Duration) -> WireRunStats {
    use meba_net::{ClusterConfig, OverrunAction};
    use meba_wire::{run_tcp_cluster, TcpClusterConfig};

    let cfg = SystemConfig::new(n, 0).unwrap();
    let (pki, keys) = trusted_setup(n, 0xb0b);
    let sender = ProcessId(0);
    assert!(f <= cfg.t(), "f={f} exceeds t={}", cfg.t());

    let mut byz: Vec<ProcessId> = Vec::new();
    let mut actors: Vec<Box<dyn AnyActor<Msg = BbM>>> = Vec::new();
    for (i, key) in keys.into_iter().enumerate() {
        let id = ProcessId(i as u32);
        if i >= 1 && i <= f {
            byz.push(id);
            actors.push(Box::new(IdleActor::new(id)));
            continue;
        }
        let factory = RecursiveBaFactory::new(cfg, key.clone(), pki.clone());
        let bb = if id == sender {
            Bb::new_sender(cfg, id, key, pki.clone(), factory, 7u64)
        } else {
            Bb::new(cfg, id, key, pki.clone(), factory, sender)
        };
        actors.push(Box::new(LockstepAdapter::new(id, bb)));
    }

    let config = TcpClusterConfig {
        cluster: ClusterConfig {
            delta,
            max_rounds: 60 * n as u64 + 4_000,
            corrupt: byz.clone(),
            overrun_action: OverrunAction::Escalate {
                multiplier: 2,
                max_delta: std::time::Duration::from_millis(250),
            },
            ..ClusterConfig::default()
        },
        ..TcpClusterConfig::default()
    };
    let tcp = run_tcp_cluster(actors, &cfg, config).expect("loopback TCP cluster established");
    let report = &tcp.report;
    assert!(report.completed, "wire run terminated");

    let decisions: Vec<Decision<u64>> = report
        .actors
        .iter()
        .filter(|a| !byz.contains(&a.id()))
        .map(|a| {
            let l: &LockstepAdapter<BbProc> = a.as_any().downcast_ref().unwrap();
            l.inner().output().expect("decided")
        })
        .collect();
    WireRunStats {
        n,
        f,
        words: report.metrics.correct.words,
        bytes: report.metrics.correct.bytes,
        frames: tcp.frames_sent,
        socket_bytes: tcp.socket_bytes,
        rounds: report.rounds,
        agreement: decisions.windows(2).all(|w| w[0] == w[1]),
    }
}

/// Outcome of one crash-recovery run (experiment E14).
#[derive(Clone, Debug)]
pub struct RecoveryRunStats {
    /// System size.
    pub n: usize,
    /// Processes that crash-restarted mid-run.
    pub crashes: usize,
    /// Words sent by correct processes (each crash-restart counts as one
    /// fault toward the `O(n(f+1))` budget).
    pub words: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Journal records replayed across all rejoins.
    pub replayed_records: u64,
    /// Journal fsyncs issued by the recovered handles.
    pub journal_fsyncs: u64,
    /// Rounds between rejoin and the recovered process's decision,
    /// summed over all recoveries — the recovery latency.
    pub recovery_rounds: u64,
    /// Conflicting-signature attempts refused (must be 0 for honest
    /// journal-backed recovery).
    pub refused_equivocations: u64,
    /// Whether every process — including the recovered ones — decided
    /// the same value.
    pub agreement: bool,
}

/// Runs journal-backed weak BA on the threaded cluster runtime with
/// `crashes` processes crash-restarting at staggered rounds (experiment
/// E14: recovery latency and word overhead vs. crash count).
///
/// # Panics
///
/// Panics if `crashes > t` or the run does not terminate.
pub fn run_recovery_weak_ba(
    n: usize,
    crashes: usize,
    delta: std::time::Duration,
) -> RecoveryRunStats {
    use meba_net::{run_cluster_with_recovery, ClusterConfig, OverrunAction, ProcessFate};
    use meba_testkit::{recoverable_decision, WeakBaRecoveryHarness};
    use std::sync::Arc;

    let h = Arc::new(WeakBaRecoveryHarness::new(&vec![7u64; n]));
    assert!(crashes <= h.config().t(), "crashes={crashes} exceeds t={}", h.config().t());
    let config = ClusterConfig {
        delta,
        max_rounds: 60 * n as u64 + 4_000,
        process_fate: Some(Arc::new(move |p: ProcessId| {
            let i = p.index();
            if (1..=crashes).contains(&i) {
                // Stagger the crashes across phase 1 so each exercises a
                // different point of the schedule.
                ProcessFate::CrashRestart { at_round: i as u64, rejoin_after: 3 }
            } else {
                ProcessFate::Run
            }
        })),
        overrun_action: OverrunAction::Escalate {
            multiplier: 2,
            max_delta: std::time::Duration::from_millis(250),
        },
        ..ClusterConfig::default()
    };
    let report = run_cluster_with_recovery(h.actors(), Some(h.rebuilder()), config);
    assert!(report.completed, "E14 n={n} crashes={crashes}: run must terminate");
    let decisions: Vec<Decision<u64>> =
        report.actors.iter().map(|a| recoverable_decision(a.as_ref()).expect("decided")).collect();
    let rec = &report.metrics.recovery;
    RecoveryRunStats {
        n,
        crashes,
        words: report.metrics.correct.words,
        rounds: report.rounds,
        replayed_records: rec.replayed_records,
        journal_fsyncs: rec.journal_fsyncs,
        recovery_rounds: rec.recovery_rounds,
        refused_equivocations: rec.refused_equivocations,
        agreement: decisions.windows(2).all(|w| w[0] == w[1]),
    }
}

/// Outcome of one large-n run on the discrete-event backend (experiment
/// E15: asymptotics at system sizes the paced runtimes cannot reach).
#[derive(Clone, Debug)]
pub struct DesRunStats {
    /// System size.
    pub n: usize,
    /// Crashed (silent) leaders injected.
    pub f: usize,
    /// Words sent by correct processes.
    pub words: u64,
    /// Virtual rounds to global termination.
    pub rounds: u64,
    /// Whether all correct decisions were equal.
    pub agreement: bool,
}

impl DesRunStats {
    /// Average correct words per virtual round.
    pub fn words_per_round(&self) -> f64 {
        self.words as f64 / self.rounds.max(1) as f64
    }
}

/// Runs adaptive BB (sender `p0`, value 7) on the discrete-event backend
/// with `f` crashed leaders (`p1..pf` silent from round 0 — each costs a
/// help phase, realizing the `O(n(f+1))` staircase without the per-round
/// wall-clock δ of the paced runtimes).
///
/// # Panics
///
/// Panics if the run does not terminate within the standard round budget.
pub fn run_des_bb(n: usize, f: usize, seed: u64) -> DesRunStats {
    use meba_testkit::{bb_des, bb_report_decisions, Fault};
    let mut faults = vec![Fault::None; n];
    for slot in faults.iter_mut().skip(1).take(f) {
        *slot = Fault::Idle;
    }
    let report = bb_des(0, 7, &faults, seed);
    assert!(report.completed, "E15 n={n} f={f}: DES run must terminate");
    let decisions = bb_report_decisions(&report, &faults);
    DesRunStats {
        n,
        f,
        words: report.metrics.correct.words,
        rounds: report.rounds,
        agreement: decisions.windows(2).all(|w| w[0] == w[1]),
    }
}

/// Outcome of one reactor-mesh scale run (experiment E16: the thread and
/// throughput profile of the readiness-driven mesh over real loopback
/// sockets, against the analytic cost of the retired thread-per-link
/// design).
#[derive(Clone, Debug)]
pub struct MeshScaleStats {
    /// System size.
    pub n: usize,
    /// Words sent by correct processes over TCP.
    pub words: u64,
    /// Words sent by correct processes on the DES reference run (must
    /// equal `words` — same protocol, different transport).
    pub des_words: u64,
    /// Rounds executed by the TCP run.
    pub rounds: u64,
    /// Protocol rounds per wall-clock second of the TCP run.
    pub rounds_per_sec: f64,
    /// Peak OS threads observed in this process while the cluster was
    /// live (0 when procfs is unavailable).
    pub peak_threads: usize,
    /// Threads the retired thread-per-link mesh would have needed for the
    /// same in-host cluster: per process, a reader + writer per remote
    /// peer plus an acceptor, plus the engine thread.
    pub old_design_threads: usize,
    /// Whether every process decided the sender's value.
    pub agreement: bool,
}

/// Current OS thread count of this process (Linux procfs; 0 elsewhere).
fn current_threads() -> usize {
    if cfg!(target_os = "linux") {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find_map(|l| l.strip_prefix("Threads:").map(|v| v.trim().parse().ok()))
                    .flatten()
            })
            .unwrap_or(0)
    } else {
        0
    }
}

/// Runs failure-free adaptive BB (sender `p0`, value 7) over real
/// loopback TCP sockets on the readiness-driven mesh, sampling the
/// process's peak OS thread count while the cluster is live (experiment
/// E16). The DES reference run with the same scenario provides the word
/// total the socket run must reproduce.
///
/// Wall-clock runs retry with a widening δ until one completes
/// overrun-free, since word equality is only promised while the synchrony
/// assumption held.
///
/// # Panics
///
/// Panics if the mesh cannot establish or no overrun-free run completes
/// within the attempt budget.
pub fn run_mesh_scale_bb(n: usize, delta: std::time::Duration, seed: u64) -> MeshScaleStats {
    use meba_net::ClusterConfig;
    use meba_testkit::{bb_actors, bb_des, bb_report_decisions, round_budget, Fault};
    use meba_wire::{raise_nofile_limit, run_tcp_cluster, TcpClusterConfig};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    // Every directed link is a socket on both ends, plus a listener and
    // a wake pipe per process and harness slack.
    raise_nofile_limit((2 * n * (n - 1) + 4 * n + 512) as u64);

    let faults = vec![Fault::None; n];
    let (sender, input) = (0u32, 7u64);
    let des = bb_des(sender, input, &faults, seed);
    assert!(des.completed, "E16 n={n}: DES reference run must terminate");

    let system = SystemConfig::new(n, 0xe16).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let peak = Arc::new(AtomicUsize::new(current_threads()));
    let monitor = {
        let (stop, peak) = (stop.clone(), peak.clone());
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                peak.fetch_max(current_threads(), Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let mut delta = delta;
    let mut outcome = None;
    for _ in 0..5 {
        let config = TcpClusterConfig {
            cluster: ClusterConfig {
                delta,
                max_rounds: round_budget(n),
                ..ClusterConfig::default()
            },
            dial_timeout: Duration::from_secs(120),
            ..TcpClusterConfig::default()
        };
        let started = Instant::now();
        let tcp = run_tcp_cluster(bb_actors(sender, input, &faults), &system, config)
            .expect("loopback mesh establishes");
        let elapsed = started.elapsed();
        if tcp.report.completed && tcp.report.overruns == 0 {
            outcome = Some((tcp, elapsed));
            break;
        }
        delta *= 4;
    }
    stop.store(true, Ordering::Relaxed);
    monitor.join().expect("thread monitor");
    let (tcp, elapsed) =
        outcome.unwrap_or_else(|| panic!("E16 n={n}: no overrun-free run in the attempt budget"));

    let decisions = bb_report_decisions(&tcp.report, &faults);
    MeshScaleStats {
        n,
        words: tcp.report.metrics.correct.words,
        des_words: des.metrics.correct.words,
        rounds: tcp.report.rounds,
        rounds_per_sec: tcp.report.rounds as f64 / elapsed.as_secs_f64().max(1e-9),
        peak_threads: peak.load(Ordering::Relaxed),
        old_design_threads: n * (2 * (n - 1) + 1) + n,
        agreement: decisions.iter().all(|d| *d == Decision::Value(input)),
    }
}

/// Outcome of one δ-estimate cell of the timing sweep (experiment E17:
/// how the quorum-or-timeout round driver degrades as the δ-estimate
/// drifts away from the network's true bound).
#[derive(Clone, Debug)]
pub struct TimingSweepStats {
    /// Local timer as a multiple of the nominal δ.
    pub timeout_factor: f64,
    /// `true` = advance early only on a complete inbox (quorum = n);
    /// `false` = the protocol quorum `n − t`, which can strand straggler
    /// traffic.
    pub full_inbox_quorum: bool,
    /// Whether every correct process decided within the round budget.
    pub completed: bool,
    /// Whether all correct processes decided the *same* value
    /// (vacuously true for incomplete runs). Safety: must never be
    /// false, no matter how wrong the δ-estimate is.
    pub agreement: bool,
    /// Whether that common decision was the sender's input. Validity
    /// holds whenever the synchrony precondition does; under a broken
    /// precondition ⊥ is a legitimate outcome.
    pub decided_input: bool,
    /// Rounds executed (the budget itself for incomplete runs).
    pub rounds: u64,
    /// Words sent by correct processes.
    pub words: u64,
    /// Words of the lockstep baseline with the same seed.
    pub baseline_words: u64,
    /// Round advances fired by quorum readiness.
    pub quorum_advances: u64,
    /// Round advances fired by the local timer.
    pub timeout_advances: u64,
}

/// Runs one E17 cell: failure-free BB (n = 5, sender `p0`, value 7) on
/// the DES backend under the quorum-or-timeout driver with a local timer
/// of `timeout_factor · δ`, against a *fixed* network truth — real link
/// delay capped at δ/2, per-process clock skew up to δ/8. The paper's
/// synchrony precondition (delay + skew < round length, Lemma 18) holds
/// for every timer above 0.625 δ and breaks below it, so sweeping the
/// factor from 0.25 to 4 traces the degradation curve of a mis-estimated
/// δ while the lockstep baseline pins the reference word bill.
pub fn run_timing_sweep(
    timeout_factor: f64,
    full_inbox_quorum: bool,
    seed: u64,
) -> TimingSweepStats {
    use meba_testkit::{bb_des, bb_des_timed, bb_report_decisions, Fault, Timing};

    let n = 5;
    let faults = vec![Fault::None; n];
    let (sender, input) = (0u32, 7u64);
    let delta = Timing::DELTA_NS;

    let baseline = bb_des(sender, input, &faults, seed);
    assert!(baseline.completed, "E17: lockstep baseline must terminate");

    let mut timing =
        Timing::quorum_or_timeout(timeout_factor).with_link_cap(delta / 2).with_skew(delta / 8);
    if full_inbox_quorum {
        timing = timing.with_quorum(n);
    }
    let report = bb_des_timed(sender, input, &faults, seed, &timing);
    // Undecided actors make `bb_report_decisions` panic, so only read
    // decisions out of completed runs.
    let (agreement, decided_input) = if report.completed {
        let decisions = bb_report_decisions(&report, &faults);
        (
            decisions.windows(2).all(|w| w[0] == w[1]),
            decisions.iter().all(|d| *d == Decision::Value(input)),
        )
    } else {
        (true, false)
    };
    TimingSweepStats {
        timeout_factor,
        full_inbox_quorum,
        completed: report.completed,
        agreement,
        decided_input,
        rounds: report.rounds,
        words: report.metrics.correct.words,
        baseline_words: baseline.metrics.correct.words,
        quorum_advances: report.metrics.advance.quorum,
        timeout_advances: report.metrics.advance.timeout,
    }
}

/// Outcome of one client-service throughput run (experiment E18).
#[derive(Clone, Debug)]
pub struct ServiceRunStats {
    /// System size.
    pub n: usize,
    /// Batch close bound (`max_batch_ops`).
    pub batch_ops: usize,
    /// Pipeline window `W`.
    pub window: u64,
    /// Slots the deployment ran.
    pub slots: u64,
    /// Ops offered across all replica ports.
    pub offered: u64,
    /// Ops the bounded ports accepted.
    pub accepted: u64,
    /// Ops rejected with the typed `Overloaded` error.
    pub rejected: u64,
    /// Distinct ops committed (identical on every replica).
    pub committed_ops: u64,
    /// Rounds until every replica finished the log.
    pub rounds: u64,
    /// Committed ops per round — the deterministic throughput metric.
    pub ops_per_round: f64,
    /// Committed ops per wall-clock second of the lockstep run.
    pub ops_per_sec: f64,
    /// Median commit latency in rounds (admission → apply), bucketed.
    pub latency_p50_rounds: u64,
    /// 99th-percentile commit latency in rounds, bucketed.
    pub latency_p99_rounds: u64,
    /// Mean ops per proposed batch.
    pub mean_occupancy: f64,
    /// Words sent by correct processes.
    pub words: u64,
    /// Words per committed op — what batching amortizes.
    pub words_per_op: f64,
    /// Whether all replicas hold identical logs.
    pub agreement: bool,
    /// Session-id collisions surfaced by the dynamic spawn path
    /// (must be 0).
    pub session_collisions: u64,
}

/// Runs one E18 cell: `total_ops` client ops spread round-robin over the
/// replicas' admission ports, batched under `max_batch_ops` and
/// pipelined with window `window`, on the lockstep simulator. The slot
/// count is sized so every accepted op fits the proposers' slots.
/// Every replica journals; the run is audited for per-slot double
/// binding before returning.
///
/// # Panics
///
/// Panics if the run violates agreement, commits an op twice, or binds
/// a slot to two different values — the audits ARE the experiment's
/// safety claim.
pub fn run_service_throughput(
    n: usize,
    total_ops: u64,
    max_batch_ops: usize,
    window: u64,
    queue_capacity: usize,
) -> ServiceRunStats {
    use meba_service::{Batch, BatchPolicy, Op, ServiceConfig};
    use meba_testkit::service::{audit_proposals, service_replica, ServiceHarness};
    use std::sync::Arc;

    // Round-robin op assignment: port `i` serves client `i + 1`.
    let ops_per_port = total_ops.div_ceil(n as u64);
    let accepted_per_port = ops_per_port.min(queue_capacity as u64);
    let slots_per_replica = accepted_per_port.div_ceil(max_batch_ops as u64).max(1);
    let service = ServiceConfig {
        total_slots: n as u64 * slots_per_replica,
        window,
        queue_capacity,
        batch: BatchPolicy { max_batch_ops, ..BatchPolicy::default() },
    };
    let h = Arc::new(ServiceHarness::new(n, service));

    let mut offered = 0u64;
    let mut rejected = 0u64;
    for j in 0..total_ops {
        let i = (j % n as u64) as usize;
        let op = Op { client: i as u64 + 1, seq: j / n as u64, key: j, value: 3 * j + 1 };
        offered += 1;
        if h.port(i).submit(op).is_err() {
            rejected += 1;
        }
    }
    let accepted = offered - rejected;

    let probe = h.actor(0);
    let budget = service_replica(probe.as_ref()).log().total_rounds() + 64;
    drop(probe);
    let mut sim = SimBuilder::new(h.actors()).build();
    let started = std::time::Instant::now();
    sim.run_until_done(budget).expect("service run terminated");
    let elapsed = started.elapsed().as_secs_f64();

    let logs: Vec<Vec<LogEntry<Batch>>> = (0..n as u32)
        .map(|i| service_replica(sim.actor(ProcessId(i))).log().log().to_vec())
        .collect();
    let agreement = logs.windows(2).all(|w| w[0] == w[1]);

    let mut committed_ops = 0u64;
    let mut latency = meba_sim::metrics::LatencyHistogram::default();
    let mut occupancy = (0u64, 0u64);
    let mut session_collisions = 0u64;
    for i in 0..n {
        let r = service_replica(sim.actor(ProcessId(i as u32)));
        let s = r.stats();
        if i == 0 {
            committed_ops = s.ops_committed;
        }
        assert_eq!(s.ops_committed, committed_ops, "replica {i}: same distinct commits");
        latency.merge(&s.commit_latency_rounds);
        occupancy.0 += s.batched_ops;
        occupancy.1 += s.batches_proposed;
        session_collisions += s.session_collisions;
        // The service-level double-sign audit: no slot bound twice.
        audit_proposals(h.journal_buffer(i));
    }
    assert_eq!(committed_ops, accepted, "every accepted op commits exactly once");

    let m = sim.metrics();
    ServiceRunStats {
        n,
        batch_ops: max_batch_ops,
        window,
        slots: service.total_slots,
        offered,
        accepted,
        rejected,
        committed_ops,
        rounds: m.rounds,
        ops_per_round: committed_ops as f64 / m.rounds.max(1) as f64,
        ops_per_sec: committed_ops as f64 / elapsed.max(f64::EPSILON),
        latency_p50_rounds: latency.quantile(0.5),
        latency_p99_rounds: latency.quantile(0.99),
        mean_occupancy: occupancy.0 as f64 / occupancy.1.max(1) as f64,
        words: m.correct.words,
        words_per_op: m.correct.words as f64 / committed_ops.max(1) as f64,
        agreement,
        session_collisions,
    }
}

/// Outcome of one certified-state-transfer catch-up run (experiment
/// E19).
#[derive(Clone, Debug)]
pub struct StateTransferStats {
    /// System size.
    pub n: usize,
    /// Total log length in slots.
    pub slots: u64,
    /// Consecutive slot openings the victim slept through.
    pub outage_slots: u64,
    /// Slots the victim adopted by transfer rather than local agreement.
    pub slots_transferred: u64,
    /// Transferred entries adopted against a verifying certificate.
    pub certs_verified: u64,
    /// Transferred entries adopted via `t + 1` matching donor claims.
    pub vouches_accepted: u64,
    /// Words on the `service/transfer` component, cluster-wide.
    pub transfer_words: u64,
    /// Canonical bytes on the `service/transfer` component.
    pub transfer_bytes: u64,
    /// Point-to-point messages on the `service/transfer` component.
    pub transfer_messages: u64,
    /// Bytes sent by correct processes across *all* components.
    pub total_bytes: u64,
    /// Rounds from the victim's rejoin until it finished the log — the
    /// catch-up latency.
    pub recovery_rounds: u64,
    /// Rounds the whole run took.
    pub rounds: u64,
    /// Whether every replica holds the identical applied prefix.
    pub agreement: bool,
    /// `⊥`-retired slots across all replicas (0: the outage spends the
    /// fault budget, it never burns a slot).
    pub bot_slots: u64,
}

/// Runs one E19 cell: an `n`-replica service drives a `total_slots` log
/// on the threaded runtime while one replica (the last, whose own
/// proposer slots stay clear of the window) crash-restarts across
/// `outage_slots` consecutive slot openings and catches back up by
/// certified state transfer. Transfer traffic is read off the
/// `service/transfer` component tag, so the cell isolates exactly the
/// words/bytes that anti-entropy added to the run.
///
/// # Panics
///
/// Panics if the run fails to terminate, any prefix diverges, any slot
/// `⊥`-retires, any transferred slot conflicts with local agreement, or
/// the victim fails to recover — the audits are the experiment's claim.
pub fn run_state_transfer(n: usize, total_slots: u64, outage_slots: u64) -> StateTransferStats {
    use meba_net::{
        run_cluster_with_recovery, ClusterConfig, OverrunAction, ProcessFate, ProcessFateFactory,
    };
    use meba_service::{BatchPolicy, Op, ServiceConfig};
    use meba_testkit::log_round_budget;
    use meba_testkit::service::{audit_proposals, service_replica, ServiceHarness};
    use std::sync::Arc;
    use std::time::Duration;

    let victim = n - 1;
    assert!(
        1 + outage_slots < victim as u64,
        "outage window [slot 1, slot {}] must stay clear of the victim's proposer slot {victim}",
        outage_slots
    );
    let service = ServiceConfig {
        total_slots,
        window: 2,
        queue_capacity: 64,
        // Batches close when a proposer slot opens, so the pre-submitted
        // ops bind deterministically and every slot carries a real value.
        batch: BatchPolicy { max_batch_delay: u64::MAX, ..BatchPolicy::default() },
    };
    let h = Arc::new(ServiceHarness::new(n, service));
    for i in 0..n {
        for seq in 0..2u64 {
            let client = i as u64 + 1;
            h.port(i)
                .submit(Op { client, seq, key: client * 1000 + seq, value: seq + 7 })
                .expect("capacity sized for the script");
        }
    }
    let stride = {
        let probe = h.actor(0);
        service_replica(probe.as_ref()).log().stride()
    };
    // Down from 0.7 strides after slot 1 would normally open its
    // predecessor, through `outage_slots` further openings: openings
    // `1..=outage_slots` fall inside the window, opening
    // `outage_slots + 1` falls after it.
    let fate: ProcessFateFactory = Arc::new(move |p: ProcessId| {
        if p.index() == victim {
            ProcessFate::CrashRestart {
                at_round: stride * 7 / 10,
                rejoin_after: stride * outage_slots,
            }
        } else {
            ProcessFate::Run
        }
    });
    let config = ClusterConfig {
        delta: Duration::from_millis(2),
        max_rounds: log_round_budget(n, total_slots),
        process_fate: Some(fate),
        overrun_action: OverrunAction::Escalate {
            multiplier: 2,
            max_delta: Duration::from_millis(250),
        },
        ..ClusterConfig::default()
    };
    let report = run_cluster_with_recovery(h.actors(), Some(h.rebuilder()), config);
    assert!(report.completed, "E19 cluster must terminate");
    assert_eq!(report.metrics.recovery.crash_restarts, 1, "exactly one restart");

    let replicas: Vec<_> = report.actors.iter().map(|a| service_replica(a.as_ref())).collect();
    let reference: Vec<Option<Vec<u8>>> =
        (0..total_slots).map(|s| replicas[0].applied_value(s).map(<[u8]>::to_vec)).collect();
    let mut agreement = true;
    let mut bot_slots = 0u64;
    for (i, r) in replicas.iter().enumerate() {
        assert_eq!(r.applied_slots(), total_slots, "E19 replica {i}: applied the whole log");
        assert!(!r.recovering(), "E19 replica {i}: recovery must complete");
        let st = r.stats();
        assert_eq!(st.applied_conflicts, 0, "E19 replica {i}: no certified/local conflicts");
        bot_slots += st.skipped_slots;
        agreement &= (0..total_slots)
            .all(|s| r.applied_value(s).map(<[u8]>::to_vec) == reference[s as usize]);
        audit_proposals(h.journal_buffer(i));
    }
    assert!(agreement, "E19: applied prefixes diverged");
    assert_eq!(bot_slots, 0, "E19: the outage spends the fault budget, never a slot");

    let vs = replicas[victim].stats();
    assert!(vs.slots_transferred >= outage_slots, "E19: the slept-through slots transferred");

    let m = &report.metrics;
    let transfer = m.by_component.get("service/transfer").cloned().unwrap_or_default();
    StateTransferStats {
        n,
        slots: total_slots,
        outage_slots,
        slots_transferred: vs.slots_transferred,
        certs_verified: vs.transfer_certs_verified,
        vouches_accepted: vs.transfer_vouches_accepted,
        transfer_words: transfer.words,
        transfer_bytes: transfer.bytes,
        transfer_messages: transfer.messages,
        total_bytes: m.correct.bytes,
        recovery_rounds: m.recovery.recovery_rounds,
        rounds: report.rounds,
        agreement,
        bot_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bb_failure_free_linear() {
        let s = run_bb(9, BbAdversary::FailureFree);
        assert!(s.agreement);
        assert!(!s.fallback_used);
        assert!(s.words <= 25 * 9);
    }

    #[test]
    fn wasteful_leaders_stay_adaptive_below_bound() {
        // n = 17, bound = 4: f = 2 wasteful leaders must not trigger the
        // fallback.
        let s = run_weak_ba(17, WbaAdversary::WastefulLeaders(2));
        assert!(s.agreement);
        assert!(!s.fallback_used, "f below the bound must stay adaptive");
    }

    #[test]
    fn dolev_strong_flat_in_f() {
        let a = run_dolev_strong(9, 0);
        let b = run_dolev_strong(9, 2);
        assert!(b.words <= a.words, "crashes cannot increase DS cost");
        assert!(a.words >= (9 * 9) as u64 / 4, "DS is quadratic-order even at f=0");
    }

    #[test]
    fn attack_runners_reproduce_ablations() {
        assert!(!run_split_vote_attack(true).0);
        assert!(run_split_vote_attack(false).0);
        assert!(!run_late_help_attack(false).0);
        assert!(run_late_help_attack(true).0);
    }

    #[test]
    fn des_run_matches_the_lockstep_failure_free_envelope() {
        let s = run_des_bb(33, 0, 0xe15);
        assert!(s.agreement);
        assert!(s.words <= 25 * 33, "failure-free DES words stay linear: {}", s.words);
        // Same scenario, same accounting: the lockstep runner's words.
        assert_eq!(s.words, run_bb(33, BbAdversary::FailureFree).words);
    }

    #[test]
    fn recovery_run_recovers_and_stays_adaptive() {
        let delta = std::time::Duration::from_millis(2);
        let base = run_recovery_weak_ba(5, 0, delta);
        let s = run_recovery_weak_ba(5, 1, delta);
        assert!(base.agreement && s.agreement);
        assert_eq!(s.refused_equivocations, 0);
        assert!(s.replayed_records > 0, "the crashed process had journaled state");
        // One crash-restart is one fault: the overhead stays within the
        // f = 1 envelope relative to the failure-free run.
        assert!(s.words <= base.words * 3, "{} vs baseline {}", s.words, base.words);
    }
}
