//! Benchmark harness for the `meba` workspace.
//!
//! One module per concern:
//!
//! * [`runs`] — builds and executes a single protocol configuration under
//!   a named adversary and returns its [`runs::RunStats`];
//! * [`table`] — plain-text table rendering for the bench binaries;
//! * [`fit`] — tiny least-squares helpers used to report complexity
//!   shapes (`c·n·(f+1)`, `c·n²`).
//!
//! The `benches/` directory contains one binary per experiment in
//! `DESIGN.md` §2 (E1–E11 plus wall-clock criterion benches). Each prints
//! the table/figure series the paper's Table 1 implies and asserts the
//! qualitative shape (who wins, by what order, where crossovers fall).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fit;
pub mod runs;
pub mod table;
