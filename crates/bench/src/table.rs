//! Minimal aligned plain-text tables for the bench binaries.

/// A column-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a `u64` cell.
pub fn num(v: u64) -> String {
    v.to_string()
}

/// Formats a float cell with two decimals.
pub fn flt(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "words"]);
        t.row(&[num(7), num(120)]);
        t.row(&[num(33), num(1234)]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("1234"));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&[num(1)]);
    }
}
