//! Least-squares helpers for reporting complexity shapes.

/// Fits `y ≈ c · x` through the origin; returns `c`.
pub fn fit_linear(points: &[(f64, f64)]) -> f64 {
    let num: f64 = points.iter().map(|(x, y)| x * y).sum();
    let den: f64 = points.iter().map(|(x, _)| x * x).sum();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Coefficient of determination for the through-origin fit `y = c·x`.
pub fn r_squared(points: &[(f64, f64)], c: f64) -> f64 {
    let mean_y: f64 = points.iter().map(|(_, y)| y).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|(x, y)| (y - c * x).powi(2)).sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Estimates the polynomial order of growth from successive `(x, y)`
/// points: the mean of `log(y2/y1)/log(x2/x1)`.
pub fn growth_order(points: &[(f64, f64)]) -> f64 {
    let mut orders = Vec::new();
    for w in points.windows(2) {
        let (x1, y1) = w[0];
        let (x2, y2) = w[1];
        if x2 > x1 && y1 > 0.0 && y2 > 0.0 {
            orders.push((y2 / y1).ln() / (x2 / x1).ln());
        }
    }
    if orders.is_empty() {
        0.0
    } else {
        orders.iter().sum::<f64>() / orders.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact() {
        let pts = [(1.0, 3.0), (2.0, 6.0), (4.0, 12.0)];
        let c = fit_linear(&pts);
        assert!((c - 3.0).abs() < 1e-9);
        assert!(r_squared(&pts, c) > 0.9999);
    }

    #[test]
    fn growth_order_detects_quadratic() {
        let pts: Vec<(f64, f64)> = [4.0, 8.0, 16.0, 32.0].iter().map(|&x| (x, x * x)).collect();
        let o = growth_order(&pts);
        assert!((o - 2.0).abs() < 0.01, "order {o}");
    }

    #[test]
    fn growth_order_detects_linear() {
        let pts: Vec<(f64, f64)> = [4.0, 8.0, 16.0].iter().map(|&x| (x, 5.0 * x + 1.0)).collect();
        let o = growth_order(&pts);
        assert!(o > 0.9 && o < 1.1, "order {o}");
    }
}

/// Fits `y ≈ a + b·x` (ordinary least squares); returns `(a, b)`.
pub fn fit_affine(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let den = n * sxx - sx * sx;
    if den == 0.0 {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / den;
    let a = (sy - b * sx) / n;
    (a, b)
}

#[cfg(test)]
mod affine_tests {
    use super::*;

    #[test]
    fn affine_fit_exact() {
        let pts = [(0.0, 5.0), (1.0, 8.0), (2.0, 11.0), (3.0, 14.0)];
        let (a, b) = fit_affine(&pts);
        assert!((a - 5.0).abs() < 1e-9);
        assert!((b - 3.0).abs() < 1e-9);
    }
}
