//! Real-time threaded runtime for `meba` actors.
//!
//! The lockstep simulator (`meba-sim`) measures word complexity under a
//! normalized `δ = 1` round; this crate runs the *same* actor state
//! machines on one OS thread per process with bounded crossbeam channels
//! as links and a wall-clock `δ`, demonstrating the protocols under real
//! concurrency — including injected link faults
//! ([`ClusterConfig::link_policy`]), per-round latency observability, and
//! graceful degradation when δ turns out too small
//! ([`cluster::OverrunAction`]). See the `threaded_cluster` and
//! `fault_injection` examples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;

pub use cluster::{
    run_cluster, run_cluster_with_recovery, AbortReason, ActorRebuilder, ClusterConfig,
    ClusterDiagnostic, ClusterReport, Escalation, LinkPolicyFactory, OverrunAction, ProcessFate,
    ProcessFateFactory, RebuiltActor,
};
