//! Real-time threaded runtime for `meba` actors.
//!
//! The lockstep simulator (`meba-sim`) measures word complexity under a
//! normalized `δ = 1` round; this crate runs the *same* actor state
//! machines on one OS thread per process with crossbeam channels as
//! reliable links and a wall-clock `δ`, demonstrating the protocols under
//! real concurrency. See the `threaded_cluster` example.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;

pub use cluster::{run_cluster, ClusterConfig, ClusterReport};
